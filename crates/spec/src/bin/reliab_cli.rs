//! `reliab-cli` — solve declarative model specifications from the
//! command line.
//!
//! ```text
//! reliab-cli model.json [more.json ...]   # solve files, print JSON results
//! cat model.json | reliab-cli -           # read a spec from stdin
//! ```
//!
//! Exit status: 0 on success, 1 if any file fails to parse or solve,
//! 2 on usage errors.

use std::io::{Read, Write};

/// Writes a line to stdout, exiting quietly when the consumer (e.g.
/// `head`) has closed the pipe.
fn emit(line: &str) {
    let mut out = std::io::stdout();
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: reliab-cli <spec.json> [...] | reliab-cli -");
        eprintln!("solves reliab model specifications (rbd / fault_tree / ctmc)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut failed = false;
    for arg in &args {
        let (label, contents) = if arg == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("stdin: {e}");
                failed = true;
                continue;
            }
            ("<stdin>".to_owned(), buf)
        } else {
            match std::fs::read_to_string(arg) {
                Ok(c) => (arg.clone(), c),
                Err(e) => {
                    eprintln!("{arg}: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        match reliab_spec::solve_str(&contents) {
            Ok(result) => {
                if args.len() > 1 {
                    emit(&format!("// {label}"));
                }
                emit(
                    &serde_json::to_string_pretty(&result)
                        .expect("solved measures always serialize"),
                );
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
