//! Differential harness for the streaming large-model tier: on every
//! shipped CTMC-bearing specification the streaming solvers must match
//! the materialized CSR path to 1e-8, and the streamed result must be
//! identical at any shard count and any memory budget that admits the
//! model.

use reliab_markov::{Ctmc, CtmcBuilder, SteadyStateMethod, TransientOptions};
use reliab_spec::{solve_str_with, ModelSpec, SolveOptions, SolvedMeasures};
use reliab_stream::{steady_state, transient, CsrRowSource, StreamOptions};
use std::fs;

/// Shipped spec documents, smallest-first, excluding specs whose
/// declared marking cap exceeds the harness size budget (the large-net
/// exemplar is exercised by `bench-stream`, not per-test).
fn shipped_specs() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs"))
            .expect("specs directory ships with the repo")
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .map(|p| {
                (
                    p.file_stem().unwrap().to_string_lossy().into_owned(),
                    fs::read_to_string(&p).unwrap(),
                )
            })
            .filter(|(_, text)| match ModelSpec::from_json_str(text).unwrap() {
                ModelSpec::Spn(s) => s.max_markings.unwrap_or(0) <= 200_000,
                _ => true,
            })
            .collect();
    out.sort();
    assert!(!out.is_empty(), "no shipped specs found");
    out
}

/// One measure family, in declaration order: `(name, value)` pairs.
type Measures = Vec<(String, f64)>;

fn spn_measures(m: &SolvedMeasures) -> (usize, Measures, Measures) {
    match m {
        SolvedMeasures::Spn {
            num_markings,
            expected_tokens,
            throughput,
        } => (*num_markings, expected_tokens.clone(), throughput.clone()),
        other => panic!("expected SPN measures, got {other:?}"),
    }
}

fn assert_close(name: &str, what: &str, a: &[(String, f64)], b: &[(String, f64)]) {
    assert_eq!(a.len(), b.len(), "{name}: {what} arity");
    for ((na, va), (nb, vb)) in a.iter().zip(b) {
        assert_eq!(na, nb, "{name}: {what} order");
        assert!(
            (va - vb).abs() <= 1e-8 * va.abs().max(1.0),
            "{name}: {what} '{na}': materialized {va} vs streamed {vb}"
        );
    }
}

/// Every shipped SPN spec: the `--stream` tier must reproduce the
/// materialized path's measures to 1e-8.
#[test]
fn streamed_spn_specs_match_materialized_path() {
    let mut checked = 0;
    for (name, text) in shipped_specs() {
        if !matches!(ModelSpec::from_json_str(&text).unwrap(), ModelSpec::Spn(_)) {
            continue;
        }
        let mat = solve_str_with(&text, &SolveOptions::default()).unwrap();
        let streamed = solve_str_with(&text, &SolveOptions::default().with_stream(true)).unwrap();
        let (nm, te_m, th_m) = spn_measures(&mat.measures);
        let (ns, te_s, th_s) = spn_measures(&streamed.measures);
        assert_eq!(nm, ns, "{name}: marking count");
        assert_close(&name, "expected_tokens", &te_m, &te_s);
        assert_close(&name, "throughput", &th_m, &th_s);
        let method = streamed.stats.method.unwrap();
        assert!(method.starts_with("stream"), "{name}: ran {method}");
        checked += 1;
    }
    assert!(checked >= 1, "no SPN specs in specs/");
}

/// Any memory budget that admits the model must leave the streamed
/// measures identical (cached vs recomputed column slices are built
/// from the same row stream), and the result must not depend on the
/// reachability shard layout.
#[test]
fn streamed_specs_are_invariant_to_budget_and_shards() {
    for (name, text) in shipped_specs() {
        if !matches!(ModelSpec::from_json_str(&text).unwrap(), ModelSpec::Spn(_)) {
            continue;
        }
        let base = solve_str_with(&text, &SolveOptions::default().with_stream(true)).unwrap();
        let (n0, te0, th0) = spn_measures(&base.measures);
        // A generous budget and a tight-but-admitting one; the tight
        // budget forces multi-block sweeps with partial caching.
        let generous = 1usize << 30;
        let tight = base
            .stats
            .stream_peak_bytes
            .map_or(generous, |p| p as usize + (n0 * 16));
        for budget in [generous, tight] {
            let r = solve_str_with(
                &text,
                &SolveOptions::default()
                    .with_stream(true)
                    .with_mem_budget(budget),
            )
            .unwrap();
            let (n, te, th) = spn_measures(&r.measures);
            assert_eq!((n, &te, &th), (n0, &te0, &th0), "{name}: budget {budget}");
            assert_eq!(
                r.stats.stream_bounded,
                Some(false),
                "{name}: budget {budget}"
            );
        }
        for jobs in [2usize, 4] {
            let r = solve_str_with(
                &text,
                &SolveOptions::default()
                    .with_stream(true)
                    .with_reach_jobs(jobs),
            )
            .unwrap();
            let (n, te, th) = spn_measures(&r.measures);
            assert_eq!((n, &te, &th), (n0, &te0, &th0), "{name}: reach_jobs {jobs}");
        }
    }
}

/// Builds the plain CTMC of a shipped `ctmc` spec for the row-source
/// differential (the spec solver reports availability/MTTF, not π, so
/// the chain-level comparison runs against the markov crate directly).
fn ctmc_of(text: &str) -> Option<Ctmc> {
    let ModelSpec::Ctmc(spec) = ModelSpec::from_json_str(text).unwrap() else {
        return None;
    };
    let mut b = CtmcBuilder::new();
    let ids: Vec<_> = spec.states.iter().map(|s| b.state(s)).collect();
    let idx = |name: &str| ids[spec.states.iter().position(|s| s == name).unwrap()];
    for t in &spec.transitions {
        b.transition(idx(&t.from), idx(&t.to), t.rate).unwrap();
    }
    Some(b.build().unwrap())
}

/// Every shipped `ctmc` spec: streaming block-SOR over the CSR adapter
/// must match the in-core steady-state solver to 1e-8 (skipping
/// absorbing chains, where no steady state exists for either path).
#[test]
fn streamed_ctmc_specs_match_in_core_steady_state() {
    let mut checked = 0;
    for (name, text) in shipped_specs() {
        let Some(ctmc) = ctmc_of(&text) else { continue };
        let exact = match ctmc.steady_state_with(&SteadyStateMethod::Auto) {
            Ok(pi) => pi,
            Err(_) => continue, // absorbing spec: nothing to compare
        };
        let mut src = CsrRowSource::new(&ctmc);
        let streamed = steady_state(&mut src, &StreamOptions::default()).unwrap();
        for (i, (e, s)) in exact.iter().zip(&streamed.pi).enumerate() {
            assert!((e - s).abs() < 1e-8, "{name}, state {i}: {e} vs {s}");
        }
        checked += 1;
    }
    assert!(checked >= 1, "no non-absorbing ctmc specs in specs/");
}

/// Every shipped `ctmc` spec with time points: streaming uniformization
/// must match the in-core transient solver to 1e-8 at the spec's own
/// `at_times`.
#[test]
fn streamed_ctmc_specs_match_in_core_transient() {
    let mut checked = 0;
    for (name, text) in shipped_specs() {
        let ModelSpec::Ctmc(spec) = ModelSpec::from_json_str(&text).unwrap() else {
            continue;
        };
        let Some(times) = spec.at_times.clone() else {
            continue;
        };
        let ctmc = ctmc_of(&text).unwrap();
        let initial = spec.initial.as_deref().unwrap_or(&spec.states[0]);
        let i0 = spec.states.iter().position(|s| s == initial).unwrap();
        let mut p0 = vec![0.0; ctmc.num_states()];
        p0[i0] = 1.0;
        let mut src = CsrRowSource::new(&ctmc);
        for &t in &times {
            let exact = ctmc
                .transient_with(&p0, t, &TransientOptions::default())
                .unwrap();
            let streamed = transient(&mut src, &p0, t, &StreamOptions::default()).unwrap();
            for (i, (e, s)) in exact.iter().zip(&streamed.distribution).enumerate() {
                assert!((e - s).abs() < 1e-8, "{name}, t {t}, state {i}: {e} vs {s}");
            }
        }
        checked += 1;
    }
    assert!(checked >= 1, "no transient ctmc specs in specs/");
}

/// A budget below the exact floor must escalate to the aggregation
/// bounds path and say so in the telemetry, still reporting every
/// requested measure (as bracket midpoints).
#[test]
fn hopeless_budget_escalates_to_bounds_with_telemetry() {
    let text = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/tandem_queue.json"
    ))
    .unwrap();
    let exact = solve_str_with(&text, &SolveOptions::default()).unwrap();
    let (n_exact, te_exact, th_exact) = spn_measures(&exact.measures);
    let bounded = solve_str_with(
        &text,
        // Far below the iteration vectors for ~700 markings.
        &SolveOptions::default()
            .with_stream(true)
            .with_mem_budget(4096),
    )
    .unwrap();
    assert_eq!(bounded.stats.stream_bounded, Some(true));
    assert_eq!(bounded.stats.method, Some("stream-bounds"));
    assert!(bounded.stats.stream_bound_gap.is_some());
    let (n, te, th) = spn_measures(&bounded.measures);
    assert_eq!(n, n_exact);
    assert_eq!(te.len(), te_exact.len());
    assert_eq!(th.len(), th_exact.len());
    // Midpoints are estimates, not certificates — but on this small
    // net the bracket is narrow enough to land near the exact values.
    for ((name, v), (_, e)) in te.iter().zip(&te_exact) {
        assert!(v.is_finite(), "{name}: {v}");
        assert!((v - e).abs() < 1.0, "{name}: midpoint {v} far from {e}");
    }
    for ((name, v), (_, e)) in th.iter().zip(&th_exact) {
        assert!((v - e).abs() < 1.0, "{name}: midpoint {v} far from {e}");
    }
}

/// The spec's `"solver": "stream"` hint routes the solve through the
/// streaming tier without any option set, and a declared marking cap
/// whose projected materialized footprint exceeds `mem_budget`
/// auto-escalates even without the hint.
#[test]
fn spec_hint_and_budget_escalation_select_the_stream_tier() {
    let text = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/tandem_queue.json"
    ))
    .unwrap();
    let hinted = text.replace(
        "\"max_markings\": 100000",
        "\"solver\": \"stream\", \"max_markings\": 100000",
    );
    let r = solve_str_with(&hinted, &SolveOptions::default()).unwrap();
    assert!(
        r.stats.method.unwrap().starts_with("stream"),
        "hint ignored"
    );

    // max_markings 100000 projects ~7 MB of materialized state; a 1 MB
    // budget (far above the model's actual needs) escalates to the
    // streaming tier, which then solves exactly within it.
    let r = solve_str_with(&text, &SolveOptions::default().with_mem_budget(1 << 20)).unwrap();
    assert!(
        r.stats.method.unwrap().starts_with("stream"),
        "no escalation: ran {:?}",
        r.stats.method
    );
    assert_eq!(r.stats.stream_bounded, Some(false));
    let (_, te, _) = spn_measures(&r.measures);
    let (_, te_exact, _) = spn_measures(
        &solve_str_with(&text, &SolveOptions::default())
            .unwrap()
            .measures,
    );
    assert_close("tandem_queue", "expected_tokens", &te_exact, &te);
}
