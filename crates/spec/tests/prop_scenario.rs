//! Property-based tests for the scenario-layer model classes:
//! uncertainty propagation must be bitwise identical at any worker
//! count, and the bounds class must always bracket the exact BDD
//! probability on random fault trees.

use proptest::prelude::*;
use reliab_spec::{solve_str_with, SolveOptions, SolvedMeasures};

/// An uncertainty wrapper over a one-component RBD, with `jobs` worker
/// threads. Sampling is a pure function of `(seed, sample index)`, so
/// `jobs` must never change a digit of the output.
fn uncert_doc(samples: usize, seed: u64, jobs: usize, lhs: bool) -> String {
    format!(
        r#"{{"uncertainty": {{
            "model": {{"rbd": {{"components": [{{"name": "a", "availability": 0.5}}],
                               "structure": "a"}}}},
            "parameters": [
              {{"path": "rbd.components.0.availability",
                "prior": {{"uniform": {{"low": 0.1, "high": 0.9}}}}}}],
            "measure": "availability",
            "samples": {samples},
            "seed": {seed},
            "jobs": {jobs},
            "latin_hypercube": {lhs}}}}}"#
    )
}

/// A random and/or gate over events `e0..e{n}` as a JSON fragment.
fn gate_strategy(n: usize) -> impl Strategy<Value = String> {
    let leaf = (0..n).prop_map(|i| format!("\"e{i}\""));
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4)
                .prop_map(|g| format!(r#"{{"and": [{}]}}"#, g.join(","))),
            proptest::collection::vec(inner, 2..4)
                .prop_map(|g| format!(r#"{{"or": [{}]}}"#, g.join(","))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Uncertainty propagation is bitwise identical at 1/2/4/8 workers.
    #[test]
    fn uncertainty_is_bitwise_identical_across_worker_counts(
        samples in 4usize..24,
        seed in 0usize..1_000_000,
        lhs_bit in 0usize..2,
    ) {
        let seed = seed as u64;
        let lhs = lhs_bit == 1;
        let base = solve_str_with(&uncert_doc(samples, seed, 1, lhs), &SolveOptions::default())
            .unwrap()
            .measures
            .to_json()
            .to_json();
        for jobs in [2, 4, 8] {
            let other =
                solve_str_with(&uncert_doc(samples, seed, jobs, lhs), &SolveOptions::default())
                    .unwrap()
                    .measures
                    .to_json()
                    .to_json();
            prop_assert_eq!(&base, &other, "jobs = {} diverged", jobs);
        }
    }

    /// On a random fault tree, the Esary–Proschan and truncated-SDP
    /// brackets always contain the exact BDD top-event probability.
    #[test]
    fn bounds_bracket_exact_bdd_probability_on_random_trees(
        probs in proptest::collection::vec(0.01f64..=0.5, 4),
        top in gate_strategy(4),
    ) {
        let events: Vec<String> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| format!(r#"{{"name": "e{i}", "probability": {p}}}"#))
            .collect();
        let doc = format!(
            r#"{{"bounds": {{"fault_tree": {{"events": [{}], "top": {}}}}}}}"#,
            events.join(","),
            top
        );
        let report = solve_str_with(&doc, &SolveOptions::default()).unwrap();
        let SolvedMeasures::Bounds {
            exact,
            ep_lower,
            ep_upper,
            truncated_lower,
            truncated_upper,
            ..
        } = report.measures
        else {
            panic!("expected bounds measures");
        };
        let q = exact.unwrap();
        prop_assert!((0.0..=1.0).contains(&q), "exact out of range: {}", q);
        prop_assert!(
            truncated_lower <= q + 1e-12 && q <= truncated_upper + 1e-12,
            "truncated bounds [{}, {}] miss exact {}",
            truncated_lower, truncated_upper, q
        );
        let (lo, hi) = (ep_lower.unwrap(), ep_upper.unwrap());
        prop_assert!(
            lo <= q + 1e-12 && q <= hi + 1e-12,
            "EP bounds [{}, {}] miss exact {}",
            lo, hi, q
        );
    }
}
