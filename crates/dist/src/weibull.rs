//! Weibull distribution — increasing (wear-out) or decreasing (infant
//! mortality) hazard depending on the shape parameter.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{ensure_finite_positive, Result};
use reliab_numeric::special::ln_gamma;

/// Weibull lifetime with shape `k` and scale `η`:
/// `F(t) = 1 - exp(-(t/η)^k)`.
///
/// * `k < 1` — decreasing hazard (infant mortality / burn-in phase);
/// * `k = 1` — exponential;
/// * `k > 1` — increasing hazard (wear-out), the case that makes
///   preventive maintenance worthwhile (experiment E13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns [`reliab_core::Error::InvalidParameter`] unless both
    /// parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        ensure_finite_positive(shape, "weibull shape")?;
        ensure_finite_positive(scale, "weibull scale")?;
        Ok(Weibull { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `η`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Lifetime for Weibull {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(-(-(t / self.scale).powf(self.shape)).exp_m1())
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        if t == 0.0 {
            // Density at zero: 0 for k > 1, rate 1/scale for k == 1,
            // diverges for k < 1 (report INFINITY).
            return Ok(if self.shape > 1.0 {
                0.0
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                f64::INFINITY
            });
        }
        let z = t / self.scale;
        Ok(self.shape / self.scale * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp())
    }

    fn hazard(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        if t == 0.0 {
            return self.pdf(0.0);
        }
        let z = t / self.scale;
        Ok(self.shape / self.scale * z.powf(self.shape - 1.0))
    }

    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape))
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * (-u01(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};
    use crate::Exponential;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &t in &[0.0, 0.5, 1.0, 4.0] {
            assert!((w.cdf(t).unwrap() - e.cdf(t).unwrap()).abs() < 1e-12);
        }
        assert!((w.mean() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn hazard_monotonicity_by_shape() {
        let wear_out = Weibull::new(2.5, 1.0).unwrap();
        assert!(wear_out.hazard(2.0).unwrap() > wear_out.hazard(1.0).unwrap());
        let infant = Weibull::new(0.5, 1.0).unwrap();
        assert!(infant.hazard(2.0).unwrap() < infant.hazard(1.0).unwrap());
    }

    #[test]
    fn known_moments() {
        // shape 2, scale 1: mean = sqrt(pi)/2, var = 1 - pi/4.
        let w = Weibull::new(2.0, 1.0).unwrap();
        assert!((w.mean() - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-12);
        assert!((w.variance() - (1.0 - std::f64::consts::PI / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn quantile_round_trip() {
        check_quantile_roundtrip(&Weibull::new(1.7, 3.0).unwrap());
    }

    #[test]
    fn sampling_moments() {
        check_sampling_moments(&Weibull::new(2.0, 5.0).unwrap(), 200_000, 0.02);
    }

    #[test]
    fn pdf_at_zero_cases() {
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0).unwrap(), 0.0);
        assert_eq!(Weibull::new(1.0, 2.0).unwrap().pdf(0.0).unwrap(), 0.5);
        assert_eq!(
            Weibull::new(0.5, 1.0).unwrap().pdf(0.0).unwrap(),
            f64::INFINITY
        );
    }

    #[test]
    fn construction_validates() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::INFINITY, 1.0).is_err());
    }
}
