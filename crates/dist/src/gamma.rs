//! Gamma and Erlang distributions.

use crate::{ensure_open_prob, ensure_time, standard_normal, u01, Lifetime};
use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_numeric::special::{gamma_quantile, ln_gamma, reg_lower_gamma};

/// Gamma lifetime with shape `α` and rate `β` (mean `α/β`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        ensure_finite_positive(shape, "gamma shape")?;
        ensure_finite_positive(rate, "gamma rate")?;
        Ok(Gamma { shape, rate })
    }

    /// Shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `β`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Marsaglia–Tsang sampler for shape >= 1.
    fn sample_shape_ge1(shape: f64, rng: &mut dyn rand::RngCore) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = u01(rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Lifetime for Gamma {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        reg_lower_gamma(self.shape, self.rate * t).map_err(crate::num_err)
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        if t == 0.0 {
            return Ok(if self.shape > 1.0 {
                0.0
            } else if self.shape == 1.0 {
                self.rate
            } else {
                f64::INFINITY
            });
        }
        let x = self.rate * t;
        Ok(
            (self.shape * self.rate.ln() + (self.shape - 1.0) * t.ln() - x - ln_gamma(self.shape))
                .exp(),
        )
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(gamma_quantile(self.shape, p).map_err(crate::num_err)? / self.rate)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        if self.shape >= 1.0 {
            Gamma::sample_shape_ge1(self.shape, rng) / self.rate
        } else {
            // Boost: X_{a} = X_{a+1} * U^{1/a}.
            let g = Gamma::sample_shape_ge1(self.shape + 1.0, rng);
            g * u01(rng).powf(1.0 / self.shape) / self.rate
        }
    }
}

/// Erlang lifetime: sum of `k` i.i.d. exponentials with rate `β`.
///
/// A gamma with integer shape, kept as its own type because reliability
/// texts use it as the canonical "less variable than exponential"
/// (cv² = 1/k < 1) stage model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    stages: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with `stages >= 1` phases of rate
    /// `rate` each.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `stages == 0` or the rate
    /// is not finite and positive.
    pub fn new(stages: u32, rate: f64) -> Result<Self> {
        if stages == 0 {
            return Err(Error::invalid("erlang stage count must be >= 1"));
        }
        ensure_finite_positive(rate, "erlang rate")?;
        Ok(Erlang { stages, rate })
    }

    /// Number of stages `k`.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Per-stage rate `β`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn as_gamma(&self) -> Gamma {
        Gamma {
            shape: f64::from(self.stages),
            rate: self.rate,
        }
    }
}

impl Lifetime for Erlang {
    fn cdf(&self, t: f64) -> Result<f64> {
        self.as_gamma().cdf(t)
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        self.as_gamma().pdf(t)
    }

    fn mean(&self) -> f64 {
        f64::from(self.stages) / self.rate
    }

    fn variance(&self) -> f64 {
        f64::from(self.stages) / (self.rate * self.rate)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        self.as_gamma().quantile(p)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Direct sum of exponentials: exact and cheap for modest k.
        let mut acc = 0.0;
        for _ in 0..self.stages {
            acc += -u01(rng).ln();
        }
        acc / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};
    use crate::Exponential;

    #[test]
    fn gamma_shape_one_is_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = Exponential::new(2.0).unwrap();
        for &t in &[0.1, 1.0, 3.0] {
            assert!((g.cdf(t).unwrap() - e.cdf(t).unwrap()).abs() < 1e-12);
            assert!((g.pdf(t).unwrap() - e.pdf(t).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_matches_gamma_integer_shape() {
        let er = Erlang::new(3, 1.5).unwrap();
        let g = Gamma::new(3.0, 1.5).unwrap();
        for &t in &[0.5, 2.0, 5.0] {
            assert!((er.cdf(t).unwrap() - g.cdf(t).unwrap()).abs() < 1e-12);
        }
        assert_eq!(er.mean(), 2.0);
        assert!((er.cv_squared() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_quantile_round_trip() {
        check_quantile_roundtrip(&Gamma::new(2.5, 0.7).unwrap());
        check_quantile_roundtrip(&Erlang::new(4, 2.0).unwrap());
    }

    #[test]
    fn gamma_sampling_moments_all_shape_regimes() {
        check_sampling_moments(&Gamma::new(0.5, 1.0).unwrap(), 300_000, 0.03);
        check_sampling_moments(&Gamma::new(3.0, 2.0).unwrap(), 200_000, 0.02);
        check_sampling_moments(&Erlang::new(5, 1.0).unwrap(), 200_000, 0.02);
    }

    #[test]
    fn construction_validates() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Erlang::new(0, 1.0).is_err());
        assert!(Erlang::new(1, -1.0).is_err());
    }

    #[test]
    fn pdf_at_zero_regimes() {
        assert_eq!(Gamma::new(2.0, 1.0).unwrap().pdf(0.0).unwrap(), 0.0);
        assert_eq!(Gamma::new(1.0, 3.0).unwrap().pdf(0.0).unwrap(), 3.0);
        assert_eq!(
            Gamma::new(0.5, 1.0).unwrap().pdf(0.0).unwrap(),
            f64::INFINITY
        );
    }
}
