//! The exponential distribution — the memoryless workhorse of
//! availability modeling.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{ensure_finite_positive, Result};

/// Exponential lifetime with failure rate `λ` (mean `1/λ`).
///
/// ```
/// use reliab_dist::{Exponential, Lifetime};
/// # fn main() -> Result<(), reliab_core::Error> {
/// let d = Exponential::new(2.0)?;
/// assert!((d.hazard(17.0)? - 2.0).abs() < 1e-12); // constant hazard
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`reliab_core::Error::InvalidParameter`] unless
    /// `rate` is finite and positive.
    pub fn new(rate: f64) -> Result<Self> {
        ensure_finite_positive(rate, "exponential rate")?;
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution from its mean.
    ///
    /// # Errors
    ///
    /// Returns [`reliab_core::Error::InvalidParameter`] unless
    /// `mean` is finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self> {
        ensure_finite_positive(mean, "exponential mean")?;
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Lifetime for Exponential {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(-(-self.rate * t).exp_m1())
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(self.rate * (-self.rate * t).exp())
    }

    fn hazard(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(self.rate)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(-(1.0 - p).ln() / self.rate)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        -u01(rng).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};

    #[test]
    fn construction_validates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
        let d = Exponential::from_mean(4.0).unwrap();
        assert!((d.rate() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn memoryless_property() {
        // P(X > s + t | X > s) == P(X > t)
        let d = Exponential::new(0.7).unwrap();
        let s = 2.0;
        let t = 1.3;
        let lhs = d.survival(s + t).unwrap() / d.survival(s).unwrap();
        let rhs = d.survival(t).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn moments_and_cv() {
        let d = Exponential::new(0.5).unwrap();
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.variance(), 4.0);
        assert!((d.cv_squared() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn quantile_round_trip() {
        check_quantile_roundtrip(&Exponential::new(3.0).unwrap());
    }

    #[test]
    fn sampling_moments() {
        check_sampling_moments(&Exponential::new(2.0).unwrap(), 200_000, 0.02);
    }

    #[test]
    fn negative_time_rejected() {
        let d = Exponential::new(1.0).unwrap();
        assert!(d.cdf(-1.0).is_err());
        assert!(d.pdf(f64::NAN).is_err());
    }
}
