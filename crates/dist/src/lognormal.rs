//! Lognormal distribution — the classic model for repair times.

use crate::{ensure_open_prob, ensure_time, standard_normal, Lifetime};
use reliab_core::{Error, Result};
use reliab_numeric::special::{normal_cdf, normal_quantile};

/// Lognormal lifetime: `ln X ~ N(μ, σ²)`.
///
/// Repair-time data is famously right-skewed with a long tail of "hard"
/// repairs; the lognormal captures that and is the tutorial's go-to
/// non-exponential repair law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the location `μ` and scale `σ` of the
    /// underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `μ` is finite and
    /// `σ` is finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(Error::invalid(format!(
                "lognormal mu must be finite, got {mu}"
            )));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(Error::invalid(format!(
                "lognormal sigma must be finite and > 0, got {sigma}"
            )));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a lognormal matching a target mean and squared
    /// coefficient of variation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `mean > 0` and
    /// `cv2 > 0`.
    pub fn from_mean_cv2(mean: f64, cv2: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(Error::invalid(format!("mean must be > 0, got {mean}")));
        }
        if !(cv2.is_finite() && cv2 > 0.0) {
            return Err(Error::invalid(format!("cv² must be > 0, got {cv2}")));
        }
        let sigma2 = (1.0 + cv2).ln();
        LogNormal::new(mean.ln() - sigma2 / 2.0, sigma2.sqrt())
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Lifetime for LogNormal {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        if t == 0.0 {
            return Ok(0.0);
        }
        Ok(normal_cdf((t.ln() - self.mu) / self.sigma))
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        if t == 0.0 {
            return Ok(0.0);
        }
        let z = (t.ln() - self.mu) / self.sigma;
        Ok((-0.5 * z * z).exp() / (t * self.sigma * (2.0 * std::f64::consts::PI).sqrt()))
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        let z = normal_quantile(p).map_err(crate::num_err)?;
        Ok((self.mu + self.sigma * z).exp())
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};

    #[test]
    fn construction_validates() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_cv2(0.0, 1.0).is_err());
        assert!(LogNormal::from_mean_cv2(1.0, -1.0).is_err());
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.2, 0.8).unwrap();
        assert!((d.quantile(0.5).unwrap() - 1.2f64.exp()).abs() < 1e-7);
    }

    #[test]
    fn mean_cv2_fit_round_trips() {
        let d = LogNormal::from_mean_cv2(4.0, 2.5).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-10);
        assert!((d.cv_squared() - 2.5).abs() < 1e-10);
    }

    #[test]
    fn quantile_round_trip() {
        check_quantile_roundtrip(&LogNormal::new(0.5, 0.6).unwrap());
    }

    #[test]
    fn sampling_moments() {
        check_sampling_moments(&LogNormal::new(0.0, 0.5).unwrap(), 300_000, 0.02);
    }

    #[test]
    fn cdf_pdf_edges() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.cdf(0.0).unwrap(), 0.0);
        assert_eq!(d.pdf(0.0).unwrap(), 0.0);
        assert!((d.cdf(1.0).unwrap() - 0.5).abs() < 1e-12);
    }
}
