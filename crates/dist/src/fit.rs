//! Two-moment phase-type fitting: given an empirical mean and squared
//! coefficient of variation, produce a tractable distribution matching
//! both — the standard way tutorials fold non-exponential field data
//! into Markov-solvable models.

use crate::{Erlang, Exponential, HyperExponential, Lifetime, PhaseType};
use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_numeric::DenseMatrix;

/// Result of a two-moment fit; see [`fit_two_moments`].
#[derive(Debug)]
pub enum TwoMomentFit {
    /// `cv² == 1` (within tolerance): a plain exponential.
    Exponential(Exponential),
    /// `cv² == 1/k` exactly for integer `k`: an Erlang.
    Erlang(Erlang),
    /// `1/k < cv² < 1/(k-1)`: the Tijms mixture of Erlang(k-1) and
    /// Erlang(k) with common rate, expressed as a phase-type.
    ErlangMixture(PhaseType),
    /// `cv² > 1`: two-branch balanced-means hyperexponential.
    HyperExponential(HyperExponential),
}

impl TwoMomentFit {
    /// Borrows the fitted distribution as a [`Lifetime`] trait object.
    pub fn as_lifetime(&self) -> &dyn Lifetime {
        match self {
            TwoMomentFit::Exponential(d) => d,
            TwoMomentFit::Erlang(d) => d,
            TwoMomentFit::ErlangMixture(d) => d,
            TwoMomentFit::HyperExponential(d) => d,
        }
    }

    /// Converts into a boxed [`Lifetime`].
    pub fn into_lifetime(self) -> Box<dyn Lifetime> {
        match self {
            TwoMomentFit::Exponential(d) => Box::new(d),
            TwoMomentFit::Erlang(d) => Box::new(d),
            TwoMomentFit::ErlangMixture(d) => Box::new(d),
            TwoMomentFit::HyperExponential(d) => Box::new(d),
        }
    }
}

/// Fits a distribution to a target `mean` and squared coefficient of
/// variation `cv2`:
///
/// * `cv2 ≈ 1` → exponential;
/// * `cv2 > 1` → balanced-means two-phase hyperexponential;
/// * `cv2 < 1` → Erlang if `1/cv2` is an integer, otherwise the Tijms
///   `Erlang(k-1)/Erlang(k)` common-rate mixture with
///   `k = ⌈1/cv2⌉`.
///
/// Both target moments are matched exactly (see tests).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `mean > 0` and `cv2 > 0`.
///
/// ```
/// use reliab_dist::fit_two_moments;
/// # fn main() -> Result<(), reliab_core::Error> {
/// let fit = fit_two_moments(10.0, 0.4)?;
/// let d = fit.as_lifetime();
/// assert!((d.mean() - 10.0).abs() < 1e-9);
/// assert!((d.cv_squared() - 0.4).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_two_moments(mean: f64, cv2: f64) -> Result<TwoMomentFit> {
    ensure_finite_positive(mean, "target mean")?;
    ensure_finite_positive(cv2, "target cv²")?;

    const TOL: f64 = 1e-9;
    if (cv2 - 1.0).abs() < TOL {
        return Ok(TwoMomentFit::Exponential(Exponential::from_mean(mean)?));
    }
    if cv2 > 1.0 {
        // Balanced-means H2: p / λ1 = (1 - p) / λ2.
        let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let l1 = 2.0 * p / mean;
        let l2 = 2.0 * (1.0 - p) / mean;
        return Ok(TwoMomentFit::HyperExponential(HyperExponential::new(
            &[p, 1.0 - p],
            &[l1, l2],
        )?));
    }
    // cv2 < 1.
    let inv = 1.0 / cv2;
    let k_exact = inv.round();
    if (inv - k_exact).abs() < TOL && k_exact >= 1.0 {
        let k = k_exact as u32;
        return Ok(TwoMomentFit::Erlang(Erlang::new(k, k as f64 / mean)?));
    }
    let k = inv.ceil() as usize; // k >= 2, 1/k < cv2 < 1/(k-1)
    if k < 2 {
        return Err(Error::invalid(format!(
            "cv² = {cv2} cannot be fitted (internal bracketing failure)"
        )));
    }
    let kf = k as f64;
    // Tijms (1994): with prob p use k-1 stages, else k stages, common
    // rate mu = (k - p) / mean.
    let disc = kf * (1.0 + cv2) - kf * kf * cv2;
    if disc < 0.0 {
        return Err(Error::invalid(format!(
            "cv² = {cv2} out of Erlang-mixture range for k = {k}"
        )));
    }
    let p = (kf * cv2 - disc.sqrt()) / (1.0 + cv2);
    let mu = (kf - p) / mean;
    // Build as phase-type: k serial phases at rate mu; start at phase 1
    // with prob p (traverses k-1 stages) or phase 0 with prob 1-p.
    let mut t = DenseMatrix::zeros(k, k);
    for i in 0..k {
        t.set(i, i, -mu);
        if i + 1 < k {
            t.set(i, i + 1, mu);
        }
    }
    let mut alpha = vec![0.0; k];
    alpha[0] = 1.0 - p;
    alpha[1] = p;
    Ok(TwoMomentFit::ErlangMixture(PhaseType::new(alpha, t)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_fit(mean: f64, cv2: f64) {
        let fit = fit_two_moments(mean, cv2).unwrap();
        let d = fit.as_lifetime();
        assert!(
            (d.mean() - mean).abs() < 1e-8 * mean,
            "mean: got {}, want {mean} (cv2 = {cv2})",
            d.mean()
        );
        assert!(
            (d.cv_squared() - cv2).abs() < 1e-7,
            "cv²: got {}, want {cv2}",
            d.cv_squared()
        );
    }

    #[test]
    fn exponential_regime() {
        let fit = fit_two_moments(3.0, 1.0).unwrap();
        assert!(matches!(fit, TwoMomentFit::Exponential(_)));
        assert_fit(3.0, 1.0);
    }

    #[test]
    fn hyperexponential_regime() {
        let fit = fit_two_moments(2.0, 4.0).unwrap();
        assert!(matches!(fit, TwoMomentFit::HyperExponential(_)));
        for &cv2 in &[1.5, 2.0, 4.0, 10.0, 100.0] {
            assert_fit(5.0, cv2);
        }
    }

    #[test]
    fn erlang_exact_regime() {
        let fit = fit_two_moments(4.0, 0.25).unwrap();
        assert!(matches!(fit, TwoMomentFit::Erlang(_)));
        assert_fit(4.0, 0.25);
        assert_fit(1.0, 0.5);
        assert_fit(7.0, 0.1);
    }

    #[test]
    fn erlang_mixture_regime() {
        let fit = fit_two_moments(1.0, 0.4).unwrap();
        assert!(matches!(fit, TwoMomentFit::ErlangMixture(_)));
        for &cv2 in &[0.9, 0.7, 0.4, 0.3, 0.15] {
            assert_fit(2.5, cv2);
        }
    }

    #[test]
    fn invalid_targets_rejected() {
        assert!(fit_two_moments(0.0, 1.0).is_err());
        assert!(fit_two_moments(1.0, 0.0).is_err());
        assert!(fit_two_moments(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn boxed_conversion_preserves_moments() {
        let d = fit_two_moments(6.0, 2.0).unwrap().into_lifetime();
        assert!((d.mean() - 6.0).abs() < 1e-9);
    }
}
