//! Empirical distributions built from observed lifetime data — the
//! front door for field data: use directly in the simulator, or
//! summarize into moments and hand to [`crate::fit_two_moments`] for
//! the analytic solvers.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime, TwoMomentFit};
use reliab_core::{Error, Result};

/// The empirical distribution of a sample of non-negative lifetimes.
///
/// * CDF: the right-continuous empirical step function.
/// * Quantile: the usual left-inverse (order statistic).
/// * Sampling: bootstrap (draw uniformly from the sample).
/// * `pdf` is not absolutely continuous; it is reported as `0` off the
///   atoms and `∞` on them.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds an empirical distribution from observations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if fewer than two
    /// observations are given or any observation is negative/NaN.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.len() < 2 {
            return Err(Error::invalid(format!(
                "need at least 2 observations, got {}",
                samples.len()
            )));
        }
        for (i, &x) in samples.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(Error::invalid(format!(
                    "observation {i} = {x} must be finite and >= 0"
                )));
            }
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        Ok(Empirical {
            sorted,
            mean,
            variance,
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The observations in ascending order.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Sample squared coefficient of variation.
    pub fn sample_cv2(&self) -> f64 {
        self.variance / (self.mean * self.mean)
    }

    /// Fits a tractable analytic distribution matching the sample mean
    /// and cv² (see [`crate::fit_two_moments`]).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (e.g. a degenerate all-equal sample
    /// has cv² = 0, which no phase-type with finitely many stages can
    /// match — use [`crate::Deterministic`] in that case).
    pub fn fit(&self) -> Result<TwoMomentFit> {
        crate::fit_two_moments(self.mean, self.sample_cv2())
    }
}

impl Lifetime for Empirical {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        // Count of observations <= t via partition_point.
        let count = self.sorted.partition_point(|&x| x <= t);
        Ok(count as f64 / self.sorted.len() as f64)
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(
            if self
                .sorted
                .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
                .is_ok()
            {
                f64::INFINITY
            } else {
                0.0
            },
        )
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        Ok(self.sorted[idx])
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let i = (u01(rng) * self.sorted.len() as f64) as usize;
        self.sorted[i.min(self.sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::check_sampling_moments;

    #[test]
    fn construction_validates() {
        assert!(Empirical::from_samples(&[1.0]).is_err());
        assert!(Empirical::from_samples(&[1.0, -2.0]).is_err());
        assert!(Empirical::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn step_cdf() {
        let d = Empirical::from_samples(&[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(d.cdf(0.5).unwrap(), 0.0);
        assert_eq!(d.cdf(1.0).unwrap(), 0.25);
        assert_eq!(d.cdf(2.0).unwrap(), 0.75);
        assert_eq!(d.cdf(3.9).unwrap(), 0.75);
        assert_eq!(d.cdf(4.0).unwrap(), 1.0);
    }

    #[test]
    fn moments_match_sample_statistics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let d = Empirical::from_samples(&xs).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-12);
        // Sample (n-1) variance of this classic data set is 32/7.
        assert!((d.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let d = Empirical::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(d.quantile(0.25).unwrap(), 10.0);
        assert_eq!(d.quantile(0.26).unwrap(), 20.0);
        assert_eq!(d.quantile(0.75).unwrap(), 30.0);
        assert_eq!(d.quantile(0.99).unwrap(), 40.0);
    }

    #[test]
    fn bootstrap_sampling_moments() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = Empirical::from_samples(&xs).unwrap();
        check_sampling_moments(&d, 100_000, 0.02);
    }

    #[test]
    fn fit_round_trips_through_two_moment_match() {
        use crate::Lifetime as _;
        // Draw from an exponential-ish sample and fit.
        let xs: Vec<f64> = (0..2000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 2000.0;
                -(1.0 - u).ln() * 3.0 // exact exponential quantiles, mean 3
            })
            .collect();
        let d = Empirical::from_samples(&xs).unwrap();
        let fit = d.fit().unwrap();
        let f = fit.as_lifetime();
        assert!((f.mean() - d.mean()).abs() < 1e-9);
        assert!((f.cv_squared() - d.sample_cv2()).abs() < 1e-7);
        // The grid of exact exponential quantiles has cv² near 1.
        assert!((d.sample_cv2() - 1.0).abs() < 0.05);
    }

    #[test]
    fn pdf_reports_atoms() {
        let d = Empirical::from_samples(&[1.0, 2.0]).unwrap();
        assert_eq!(d.pdf(1.0).unwrap(), f64::INFINITY);
        assert_eq!(d.pdf(1.5).unwrap(), 0.0);
    }
}
