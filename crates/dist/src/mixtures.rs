//! Hypoexponential (series of stages) and hyperexponential (mixture)
//! distributions — the standard two-moment matching targets for
//! empirical data with cv² below / above one.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{ensure_finite_positive, ensure_probability, Error, Result};
use reliab_numeric::roots::brent;

/// Hypoexponential lifetime: the sum of independent exponential stages
/// with **distinct** rates `λ_1, ..., λ_n` (cv² < 1).
///
/// For equal rates use [`crate::Erlang`], whose CDF needs the gamma
/// function rather than the partial-fraction form used here.
#[derive(Debug, Clone, PartialEq)]
pub struct HypoExponential {
    rates: Vec<f64>,
    /// Partial-fraction coefficients: `F(t) = 1 - Σ a_i e^{-λ_i t}`.
    coeffs: Vec<f64>,
}

impl HypoExponential {
    /// Creates a hypoexponential from its stage rates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if fewer than two rates are
    /// given, any rate is not finite and positive, or two rates
    /// coincide (use [`crate::Erlang`] / combinations for repeated
    /// rates).
    pub fn new(rates: &[f64]) -> Result<Self> {
        if rates.len() < 2 {
            return Err(Error::invalid(
                "hypoexponential needs at least two stages; use Exponential for one",
            ));
        }
        for (i, &r) in rates.iter().enumerate() {
            ensure_finite_positive(r, &format!("hypoexponential rate {i}"))?;
        }
        for i in 0..rates.len() {
            for j in (i + 1)..rates.len() {
                if (rates[i] - rates[j]).abs() < 1e-12 * rates[i].max(rates[j]) {
                    return Err(Error::invalid(format!(
                        "hypoexponential rates {i} and {j} coincide ({}); use Erlang stages instead",
                        rates[i]
                    )));
                }
            }
        }
        let n = rates.len();
        let mut coeffs = vec![1.0f64; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    coeffs[i] *= rates[j] / (rates[j] - rates[i]);
                }
            }
        }
        Ok(HypoExponential {
            rates: rates.to_vec(),
            coeffs,
        })
    }

    /// The stage rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl Lifetime for HypoExponential {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        let tail: f64 = self
            .rates
            .iter()
            .zip(&self.coeffs)
            .map(|(&l, &a)| a * (-l * t).exp())
            .sum();
        Ok((1.0 - tail).clamp(0.0, 1.0))
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        let v: f64 = self
            .rates
            .iter()
            .zip(&self.coeffs)
            .map(|(&l, &a)| a * l * (-l * t).exp())
            .sum();
        Ok(v.max(0.0))
    }

    fn mean(&self) -> f64 {
        self.rates.iter().map(|l| 1.0 / l).sum()
    }

    fn variance(&self) -> f64 {
        self.rates.iter().map(|l| 1.0 / (l * l)).sum()
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        invert_cdf(self, p)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.rates.iter().map(|l| -u01(rng).ln() / l).sum()
    }
}

/// Hyperexponential lifetime: a probabilistic mixture of exponentials
/// (`cv² > 1`), the canonical model for heterogeneous repair actions.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    probs: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Creates a hyperexponential from branch probabilities and rates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the slices differ in
    /// length or are empty, probabilities do not sum to 1 (within
    /// `1e-9`), or any rate is invalid.
    pub fn new(probs: &[f64], rates: &[f64]) -> Result<Self> {
        if probs.is_empty() || probs.len() != rates.len() {
            return Err(Error::invalid(format!(
                "hyperexponential needs matching non-empty branches, got {} probs and {} rates",
                probs.len(),
                rates.len()
            )));
        }
        let mut total = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            ensure_probability(p, &format!("hyperexponential branch probability {i}"))?;
            total += p;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(Error::invalid(format!(
                "hyperexponential branch probabilities sum to {total}, expected 1"
            )));
        }
        for (i, &r) in rates.iter().enumerate() {
            ensure_finite_positive(r, &format!("hyperexponential rate {i}"))?;
        }
        Ok(HyperExponential {
            probs: probs.to_vec(),
            rates: rates.to_vec(),
        })
    }

    /// Branch probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Branch rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl Lifetime for HyperExponential {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(self
            .probs
            .iter()
            .zip(&self.rates)
            .map(|(&p, &l)| p * (1.0 - (-l * t).exp()))
            .sum())
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(self
            .probs
            .iter()
            .zip(&self.rates)
            .map(|(&p, &l)| p * l * (-l * t).exp())
            .sum())
    }

    fn mean(&self) -> f64 {
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(&p, &l)| p / l)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .probs
            .iter()
            .zip(&self.rates)
            .map(|(&p, &l)| 2.0 * p / (l * l))
            .sum();
        m2 - m * m
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        invert_cdf(self, p)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u = u01(rng);
        let mut acc = 0.0;
        for (p, l) in self.probs.iter().zip(&self.rates) {
            acc += p;
            if u <= acc {
                return -u01(rng).ln() / l;
            }
        }
        // Floating-point residue: take the last branch.
        -u01(rng).ln() / self.rates.last().expect("non-empty by construction")
    }
}

/// Inverts a CDF numerically by bracketing + Brent.
pub(crate) fn invert_cdf<D: Lifetime + ?Sized>(d: &D, p: f64) -> Result<f64> {
    // Bracket: expand upper bound from the mean until F(hi) > p.
    let mut hi = d.mean().max(1e-9);
    for _ in 0..200 {
        if d.cdf(hi)? > p {
            break;
        }
        hi *= 2.0;
    }
    let f = |t: f64| d.cdf(t).map(|v| v - p).unwrap_or(f64::NAN);
    brent(f, 0.0, hi, 1e-12, 300).map_err(crate::num_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};

    #[test]
    fn hypo_two_stage_known_form() {
        // rates 1 and 2: F(t) = 1 - 2e^{-t} + e^{-2t}
        let d = HypoExponential::new(&[1.0, 2.0]).unwrap();
        for &t in &[0.0f64, 0.5, 1.0, 3.0] {
            let expected = 1.0 - 2.0 * (-t).exp() + (-2.0 * t).exp();
            assert!((d.cdf(t).unwrap() - expected).abs() < 1e-12, "t = {t}");
        }
        assert!((d.mean() - 1.5).abs() < 1e-12);
        assert!((d.variance() - 1.25).abs() < 1e-12);
        assert!(d.cv_squared() < 1.0);
    }

    #[test]
    fn hypo_rejects_equal_rates_and_single_stage() {
        assert!(HypoExponential::new(&[1.0]).is_err());
        assert!(HypoExponential::new(&[1.0, 1.0]).is_err());
        assert!(HypoExponential::new(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn hyper_moments_and_cv() {
        let d = HyperExponential::new(&[0.4, 0.6], &[0.5, 5.0]).unwrap();
        let mean = 0.4 / 0.5 + 0.6 / 5.0;
        assert!((d.mean() - mean).abs() < 1e-12);
        assert!(d.cv_squared() > 1.0, "hyperexponential must have cv² > 1");
    }

    #[test]
    fn hyper_validates() {
        assert!(HyperExponential::new(&[], &[]).is_err());
        assert!(HyperExponential::new(&[0.5], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.4], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.5], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn quantile_round_trips() {
        check_quantile_roundtrip(&HypoExponential::new(&[1.0, 3.0, 7.0]).unwrap());
        check_quantile_roundtrip(&HyperExponential::new(&[0.3, 0.7], &[0.2, 2.0]).unwrap());
    }

    #[test]
    fn sampling_moments() {
        check_sampling_moments(&HypoExponential::new(&[1.0, 2.0]).unwrap(), 200_000, 0.02);
        check_sampling_moments(
            &HyperExponential::new(&[0.25, 0.75], &[0.25, 3.0]).unwrap(),
            300_000,
            0.03,
        );
    }

    #[test]
    fn cdf_pdf_nonnegative_and_monotone() {
        let d = HypoExponential::new(&[0.5, 1.5, 4.0]).unwrap();
        let mut last = 0.0;
        for i in 0..50 {
            let t = i as f64 * 0.2;
            let c = d.cdf(t).unwrap();
            assert!(c >= last - 1e-15);
            assert!(d.pdf(t).unwrap() >= 0.0);
            last = c;
        }
    }
}
