//! Pareto (Lomax) distribution — heavy-tailed repair/outage durations.
//!
//! Field outage data (especially anything involving humans, logistics,
//! or cascading diagnosis) often shows power-law tails that no
//! lognormal matches; the Lomax (Pareto Type II, support from 0) is the
//! standard heavy-tail model. Note the finite-moment conditions:
//! the mean needs `shape > 1`, the variance `shape > 2`.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{ensure_finite_positive, Result};

/// Lomax (Pareto II) lifetime:
/// `F(t) = 1 − (1 + t/scale)^{−shape}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Creates a Lomax distribution.
    ///
    /// # Errors
    ///
    /// Returns [`reliab_core::Error::InvalidParameter`] unless both
    /// parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        ensure_finite_positive(shape, "pareto shape")?;
        ensure_finite_positive(scale, "pareto scale")?;
        Ok(Pareto { shape, scale })
    }

    /// Shape (tail index) `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale `σ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Lifetime for Pareto {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(1.0 - (1.0 + t / self.scale).powf(-self.shape))
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(self.shape / self.scale * (1.0 + t / self.scale).powf(-self.shape - 1.0))
    }

    fn hazard(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        // Decreasing hazard: the longer an outage has lasted, the
        // longer it is expected to keep lasting.
        Ok(self.shape / (self.scale + t))
    }

    fn mean(&self) -> f64 {
        if self.shape > 1.0 {
            self.scale / (self.shape - 1.0)
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        if self.shape > 2.0 {
            self.scale * self.scale * self.shape
                / ((self.shape - 1.0) * (self.shape - 1.0) * (self.shape - 2.0))
        } else {
            f64::INFINITY
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(self.scale * ((1.0 - p).powf(-1.0 / self.shape) - 1.0))
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.scale * (u01(rng).powf(-1.0 / self.shape) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};

    #[test]
    fn construction_validates() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, -1.0).is_err());
        assert!(Pareto::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cdf_pdf_reference_values() {
        let d = Pareto::new(2.0, 1.0).unwrap();
        assert_eq!(d.cdf(0.0).unwrap(), 0.0);
        assert!((d.cdf(1.0).unwrap() - 0.75).abs() < 1e-12);
        assert!((d.pdf(0.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((d.pdf(1.0).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hazard_is_decreasing() {
        let d = Pareto::new(1.5, 2.0).unwrap();
        assert!(d.hazard(0.0).unwrap() > d.hazard(1.0).unwrap());
        assert!(d.hazard(1.0).unwrap() > d.hazard(10.0).unwrap());
    }

    #[test]
    fn moment_existence_conditions() {
        assert!(Pareto::new(0.9, 1.0).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.5, 1.0).unwrap().mean().is_finite());
        assert!(Pareto::new(1.5, 1.0).unwrap().variance().is_infinite());
        let d = Pareto::new(3.0, 2.0).unwrap();
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!((d.variance() - 4.0 * 3.0 / (4.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn quantile_round_trip_and_sampling() {
        check_quantile_roundtrip(&Pareto::new(2.5, 3.0).unwrap());
        // Moments exist for shape 4; heavy tail needs lots of samples.
        check_sampling_moments(&Pareto::new(4.0, 3.0).unwrap(), 400_000, 0.05);
    }

    #[test]
    fn heavier_tail_than_exponential() {
        // Same mean, but far more tail mass.
        use crate::Exponential;
        let par = Pareto::new(2.0, 1.0).unwrap(); // mean 1
        let exp = Exponential::from_mean(1.0).unwrap();
        let far = 20.0;
        assert!(par.survival(far).unwrap() > 100.0 * exp.survival(far).unwrap());
    }
}
