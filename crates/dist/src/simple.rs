//! Degenerate and uniform lifetimes.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{ensure_finite_positive, Error, Result};

/// Deterministic lifetime: the event occurs at exactly `value`.
///
/// Used for fixed inspection intervals, deterministic rejuvenation
/// clocks, and scheduled maintenance in the MRGP models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `value` is finite and
    /// positive.
    pub fn new(value: f64) -> Result<Self> {
        ensure_finite_positive(value, "deterministic value")?;
        Ok(Deterministic { value })
    }

    /// The point-mass location.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Lifetime for Deterministic {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(if t >= self.value { 1.0 } else { 0.0 })
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        // Density in the usual sense does not exist; report 0 away from
        // the atom, infinity at the atom.
        Ok(if t == self.value { f64::INFINITY } else { 0.0 })
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(self.value)
    }

    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value
    }
}

/// Uniform lifetime on `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless
    /// `0 <= low < high < ∞`.
    pub fn new(low: f64, high: f64) -> Result<Self> {
        if !(low.is_finite() && high.is_finite() && 0.0 <= low && low < high) {
            return Err(Error::invalid(format!(
                "uniform bounds must satisfy 0 <= low < high, got [{low}, {high}]"
            )));
        }
        Ok(Uniform { low, high })
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Lifetime for Uniform {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(((t - self.low) / (self.high - self.low)).clamp(0.0, 1.0))
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        Ok(if t >= self.low && t <= self.high {
            1.0 / (self.high - self.low)
        } else {
            0.0
        })
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        Ok(self.low + p * (self.high - self.low))
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.low + u01(rng) * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};

    #[test]
    fn deterministic_step_cdf() {
        let d = Deterministic::new(5.0).unwrap();
        assert_eq!(d.cdf(4.999).unwrap(), 0.0);
        assert_eq!(d.cdf(5.0).unwrap(), 1.0);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.quantile(0.3).unwrap(), 5.0);
    }

    #[test]
    fn deterministic_validates() {
        assert!(Deterministic::new(0.0).is_err());
        assert!(Deterministic::new(f64::INFINITY).is_err());
    }

    #[test]
    fn uniform_basic_properties() {
        let u = Uniform::new(1.0, 3.0).unwrap();
        assert_eq!(u.mean(), 2.0);
        assert!((u.variance() - 4.0 / 12.0).abs() < 1e-15);
        assert_eq!(u.cdf(0.5).unwrap(), 0.0);
        assert_eq!(u.cdf(2.0).unwrap(), 0.5);
        assert_eq!(u.cdf(10.0).unwrap(), 1.0);
        assert_eq!(u.pdf(2.0).unwrap(), 0.5);
        assert_eq!(u.pdf(0.0).unwrap(), 0.0);
    }

    #[test]
    fn uniform_validates() {
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(-1.0, 1.0).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
    }

    #[test]
    fn uniform_round_trips() {
        check_quantile_roundtrip(&Uniform::new(0.5, 2.5).unwrap());
        check_sampling_moments(&Uniform::new(1.0, 4.0).unwrap(), 100_000, 0.02);
    }

    #[test]
    fn deterministic_sampling_is_constant() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let d = Deterministic::new(2.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 2.5);
        }
    }
}
