//! # reliab-dist
//!
//! Lifetime (time-to-failure / time-to-repair) distributions for
//! reliability modeling: the exponential workhorse plus the
//! non-exponential laws the tutorial emphasizes (Weibull for wear-out,
//! lognormal for repair times, hypo/hyper-exponential and general
//! phase-type for matching empirical moments), with CDF/PDF/hazard,
//! moments, quantiles, and random sampling.
//!
//! All distributions implement the object-safe [`Lifetime`] trait, so
//! solvers and simulators can hold heterogeneous `Box<dyn Lifetime>`
//! collections.
//!
//! ```
//! use reliab_dist::{Exponential, Lifetime};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let ttf = Exponential::new(0.5)?; // rate 0.5 per hour => mean 2h
//! assert!((ttf.mean() - 2.0).abs() < 1e-12);
//! assert!((ttf.cdf(2.0)? - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod empirical;
mod exponential;
mod fit;
mod gamma;
mod lognormal;
mod mixtures;
mod pareto;
mod phase;
mod simple;
mod weibull;

pub use empirical::Empirical;
pub use exponential::Exponential;
pub use fit::{fit_two_moments, TwoMomentFit};
pub use gamma::{Erlang, Gamma};
pub use lognormal::LogNormal;
pub use mixtures::{HyperExponential, HypoExponential};
pub use pareto::Pareto;
pub use phase::PhaseType;
pub use simple::{Deterministic, Uniform};
pub use weibull::Weibull;

use reliab_core::{Error, Result};

/// Converts a numeric-layer error into the workspace error type.
pub(crate) fn num_err(e: reliab_numeric::NumericError) -> Error {
    Error::numerical(e.to_string())
}

/// A continuous, non-negative lifetime distribution.
///
/// The trait is object-safe: samplers receive `&mut dyn rand::RngCore`
/// and all queries return plain `f64`s. Implementors guarantee:
///
/// * `cdf` is non-decreasing with `cdf(0) >= 0` and `cdf(t) -> 1`;
/// * `survival(t) = 1 - cdf(t)`;
/// * `mean`/`variance` are exact (closed-form or solver-based, not
///   sampled).
pub trait Lifetime: std::fmt::Debug + Send + Sync {
    /// Cumulative distribution function `F(t) = P(X <= t)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for negative or NaN `t`.
    fn cdf(&self, t: f64) -> Result<f64>;

    /// Probability density function `f(t)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for negative or NaN `t`.
    fn pdf(&self, t: f64) -> Result<f64>;

    /// Survival (reliability) function `R(t) = 1 - F(t)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Lifetime::cdf`] errors.
    fn survival(&self, t: f64) -> Result<f64> {
        Ok(1.0 - self.cdf(t)?)
    }

    /// Hazard (failure) rate `h(t) = f(t) / R(t)`.
    ///
    /// # Errors
    ///
    /// Propagates CDF/PDF errors; returns [`Error::Numerical`] where the
    /// survival function has decayed to zero.
    fn hazard(&self, t: f64) -> Result<f64> {
        let s = self.survival(t)?;
        if s <= 0.0 {
            return Err(Error::numerical(format!(
                "hazard undefined at t = {t}: survival is zero"
            )));
        }
        Ok(self.pdf(t)? / s)
    }

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Squared coefficient of variation `Var / Mean²`.
    fn cv_squared(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// Quantile function `F^{-1}(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < p < 1` (except
    /// where an implementor documents closed endpoints), or
    /// [`Error::Numerical`] if numeric inversion fails.
    fn quantile(&self, p: f64) -> Result<f64>;

    /// Draws one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
}

/// Uniform variate in `(0, 1)` from 53 random bits, never exactly 0.
///
/// Centralizing this keeps every distribution's inverse-transform
/// sampler independent of `rand`'s higher-level trait surface.
pub(crate) fn u01(rng: &mut dyn rand::RngCore) -> f64 {
    loop {
        let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// Standard normal variate by the Marsaglia polar method.
pub(crate) fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    loop {
        let u = 2.0 * u01(rng) - 1.0;
        let v = 2.0 * u01(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Validates a time argument for CDF/PDF evaluation.
pub(crate) fn ensure_time(t: f64) -> Result<()> {
    if t.is_nan() || t < 0.0 {
        Err(Error::invalid(format!(
            "time must be non-negative, got {t}"
        )))
    } else {
        Ok(())
    }
}

/// Validates a quantile probability in the open unit interval.
pub(crate) fn ensure_open_prob(p: f64) -> Result<()> {
    if p > 0.0 && p < 1.0 {
        Ok(())
    } else {
        Err(Error::invalid(format!(
            "quantile probability must lie in (0,1), got {p}"
        )))
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::Lifetime;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Draws `n` samples and checks the empirical mean and variance
    /// against the analytic values within loose Monte-Carlo bounds.
    pub fn check_sampling_moments(d: &dyn Lifetime, n: usize, rel_tol: f64) {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite(), "sample {x} out of domain");
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let m = d.mean();
        let v = d.variance();
        assert!(
            (mean - m).abs() <= rel_tol * m.max(1e-12),
            "sampled mean {mean} vs analytic {m}"
        );
        if v > 0.0 {
            assert!(
                (var - v).abs() <= 3.0 * rel_tol * v,
                "sampled variance {var} vs analytic {v}"
            );
        }
    }

    /// Checks that cdf(quantile(p)) == p on a probability grid and that
    /// the CDF is monotone.
    pub fn check_quantile_roundtrip(d: &dyn Lifetime) {
        let mut last = -1.0;
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(p).expect("quantile in range");
            assert!(x >= last, "quantile must be non-decreasing");
            last = x;
            let back = d.cdf(x).expect("cdf");
            assert!((back - p).abs() < 1e-7, "cdf(quantile({p})) = {back}");
        }
    }
}
