//! Continuous phase-type distributions: absorption times of a CTMC with
//! one absorbing state. Dense in the class of positive distributions,
//! and the bridge that lets Markov solvers ingest non-exponential
//! lifetimes.

use crate::{ensure_open_prob, ensure_time, u01, Lifetime};
use reliab_core::{Error, Result};
use reliab_numeric::{poisson_weights, DenseMatrix};

/// A continuous phase-type distribution `PH(α, T)`.
///
/// `T` is the sub-generator over the transient phases (negative
/// diagonal, non-negative off-diagonal, row sums ≤ 0) and `α` the
/// initial phase probabilities (sum ≤ 1; any deficit is an atom at 0).
///
/// The CDF and PDF are evaluated by uniformization of the defective
/// chain; moments are exact via LU solves with the sub-generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseType {
    alpha: Vec<f64>,
    t: DenseMatrix,
    /// Exit-rate vector `t⁰ = -T·1`.
    exit: Vec<f64>,
}

impl PhaseType {
    /// Creates a phase-type distribution from initial probabilities and
    /// a sub-generator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if dimensions mismatch,
    /// `α` has entries outside `[0,1]` or sums above 1, the diagonal of
    /// `T` is not negative, off-diagonals are negative, or any row sum
    /// is positive beyond round-off.
    pub fn new(alpha: Vec<f64>, t: DenseMatrix) -> Result<Self> {
        let m = alpha.len();
        if m == 0 {
            return Err(Error::invalid("phase-type needs at least one phase"));
        }
        if t.nrows() != m || t.ncols() != m {
            return Err(Error::invalid(format!(
                "sub-generator must be {m}x{m}, got {}x{}",
                t.nrows(),
                t.ncols()
            )));
        }
        let mut asum = 0.0;
        for (i, &a) in alpha.iter().enumerate() {
            if !(0.0..=1.0).contains(&a) || !a.is_finite() {
                return Err(Error::invalid(format!(
                    "alpha[{i}] = {a} must lie in [0,1]"
                )));
            }
            asum += a;
        }
        if asum > 1.0 + 1e-12 {
            return Err(Error::invalid(format!(
                "alpha sums to {asum}, must be <= 1"
            )));
        }
        let mut exit = vec![0.0f64; m];
        for (i, exit_i) in exit.iter_mut().enumerate() {
            let mut row_sum = 0.0;
            for j in 0..m {
                let v = t.get(i, j);
                if !v.is_finite() {
                    return Err(Error::invalid(format!("T[{i}][{j}] = {v} not finite")));
                }
                if i == j {
                    if v >= 0.0 {
                        return Err(Error::invalid(format!(
                            "diagonal T[{i}][{i}] = {v} must be negative"
                        )));
                    }
                } else if v < 0.0 {
                    return Err(Error::invalid(format!(
                        "off-diagonal T[{i}][{j}] = {v} must be >= 0"
                    )));
                }
                row_sum += v;
            }
            if row_sum > 1e-9 * t.get(i, i).abs() {
                return Err(Error::invalid(format!(
                    "row {i} of sub-generator has positive sum {row_sum}"
                )));
            }
            *exit_i = (-row_sum).max(0.0);
        }
        Ok(PhaseType { alpha, t, exit })
    }

    /// Number of transient phases.
    pub fn phases(&self) -> usize {
        self.alpha.len()
    }

    /// Initial phase probabilities.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator matrix.
    pub fn sub_generator(&self) -> &DenseMatrix {
        &self.t
    }

    /// Transient phase distribution `α e^{T t}` by uniformization.
    fn transient_vector(&self, t: f64) -> Result<Vec<f64>> {
        let m = self.phases();
        // Uniformization rate: strictly above the largest exit rate.
        let q = (0..m).map(|i| -self.t.get(i, i)).fold(0.0f64, f64::max) * 1.02 + 1e-12;
        // P = I + T / q over transient phases (sub-stochastic).
        let mut p = DenseMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let v = self.t.get(i, j) / q + if i == j { 1.0 } else { 0.0 };
                p.set(i, j, v.max(0.0));
            }
        }
        let w = poisson_weights(q * t, 1e-13).map_err(crate::num_err)?;
        let mut v = self.alpha.clone();
        // Advance to the left truncation point.
        for _ in 0..w.left {
            v = p.vecmat(&v).map_err(crate::num_err)?;
        }
        let mut acc = vec![0.0f64; m];
        for (idx, &wk) in w.weights.iter().enumerate() {
            for i in 0..m {
                acc[i] += wk * v[i];
            }
            if idx + 1 < w.weights.len() {
                v = p.vecmat(&v).map_err(crate::num_err)?;
            }
        }
        Ok(acc)
    }

    /// Raw moment `E[X^n] = (-1)^n n! α T^{-n} 1`, exact via LU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if the sub-generator is singular
    /// (a phase that can never reach absorption).
    pub fn raw_moment(&self, n: u32) -> Result<f64> {
        if n == 0 {
            return Ok(1.0);
        }
        let m = self.phases();
        // v_1 = T^{-1} 1; v_{k+1} = T^{-1} v_k. E[X^n] = (-1)^n n! α v_n.
        let mut v = vec![1.0f64; m];
        for _ in 0..n {
            v = self.t.lu_solve(&v).map_err(crate::num_err)?;
        }
        let sign = if n.is_multiple_of(2) { 1.0 } else { -1.0 };
        let fact: f64 = (1..=n).map(f64::from).product();
        let dot: f64 = self.alpha.iter().zip(&v).map(|(a, x)| a * x).sum();
        Ok(sign * fact * dot)
    }
}

impl Lifetime for PhaseType {
    fn cdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        let v = self.transient_vector(t)?;
        let transient_mass: f64 = v.iter().sum();
        Ok((1.0 - transient_mass).clamp(0.0, 1.0))
    }

    fn pdf(&self, t: f64) -> Result<f64> {
        ensure_time(t)?;
        let v = self.transient_vector(t)?;
        Ok(v.iter()
            .zip(&self.exit)
            .map(|(x, e)| x * e)
            .sum::<f64>()
            .max(0.0))
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1).unwrap_or(f64::NAN)
    }

    fn variance(&self) -> f64 {
        match (self.raw_moment(1), self.raw_moment(2)) {
            (Ok(m1), Ok(m2)) => m2 - m1 * m1,
            _ => f64::NAN,
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        ensure_open_prob(p)?;
        // Atom at zero: quantiles below the atom mass are 0.
        let atom = 1.0 - self.alpha.iter().sum::<f64>();
        if p <= atom {
            return Ok(0.0);
        }
        crate::mixtures::invert_cdf(self, p)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let m = self.phases();
        // Choose initial phase (or immediate absorption).
        let mut u = u01(rng);
        let mut phase = None;
        for (i, &a) in self.alpha.iter().enumerate() {
            if u <= a {
                phase = Some(i);
                break;
            }
            u -= a;
        }
        let Some(mut i) = phase else {
            return 0.0; // atom at zero
        };
        let mut total = 0.0;
        loop {
            let q_i = -self.t.get(i, i);
            total += -u01(rng).ln() / q_i;
            // Jump: to phase j with prob T_ij/q_i, absorb with exit_i/q_i.
            let mut u = u01(rng) * q_i;
            let mut next = None;
            for j in 0..m {
                if j == i {
                    continue;
                }
                let r = self.t.get(i, j);
                if u <= r {
                    next = Some(j);
                    break;
                }
                u -= r;
            }
            match next {
                Some(j) => i = j,
                None => return total, // absorbed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{check_quantile_roundtrip, check_sampling_moments};
    use crate::{Erlang, Exponential};

    fn erlang2_ph(rate: f64) -> PhaseType {
        let t = DenseMatrix::from_rows(&[&[-rate, rate], &[0.0, -rate]]).unwrap();
        PhaseType::new(vec![1.0, 0.0], t).unwrap()
    }

    #[test]
    fn single_phase_is_exponential() {
        let t = DenseMatrix::from_rows(&[&[-2.0]]).unwrap();
        let ph = PhaseType::new(vec![1.0], t).unwrap();
        let e = Exponential::new(2.0).unwrap();
        for &x in &[0.0, 0.3, 1.0, 2.5] {
            assert!(
                (ph.cdf(x).unwrap() - e.cdf(x).unwrap()).abs() < 1e-10,
                "t={x}"
            );
            assert!(
                (ph.pdf(x).unwrap() - e.pdf(x).unwrap()).abs() < 1e-9,
                "t={x}"
            );
        }
        assert!((ph.mean() - 0.5).abs() < 1e-12);
        assert!((ph.variance() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn two_phase_series_is_erlang() {
        let ph = erlang2_ph(3.0);
        let er = Erlang::new(2, 3.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert!(
                (ph.cdf(x).unwrap() - er.cdf(x).unwrap()).abs() < 1e-9,
                "t={x}"
            );
        }
        assert!((ph.mean() - er.mean()).abs() < 1e-12);
        assert!((ph.variance() - er.variance()).abs() < 1e-12);
    }

    #[test]
    fn raw_moments_match_erlang() {
        let ph = erlang2_ph(1.0);
        // Erlang(2,1): E[X] = 2, E[X^2] = 6, E[X^3] = 24.
        assert!((ph.raw_moment(1).unwrap() - 2.0).abs() < 1e-12);
        assert!((ph.raw_moment(2).unwrap() - 6.0).abs() < 1e-12);
        assert!((ph.raw_moment(3).unwrap() - 24.0).abs() < 1e-11);
        assert_eq!(ph.raw_moment(0).unwrap(), 1.0);
    }

    #[test]
    fn atom_at_zero_handled() {
        let t = DenseMatrix::from_rows(&[&[-1.0]]).unwrap();
        let ph = PhaseType::new(vec![0.5], t).unwrap();
        // Half the mass is an atom at zero.
        assert!((ph.cdf(0.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(ph.quantile(0.3).unwrap(), 0.0);
        assert!(ph.quantile(0.9).unwrap() > 0.0);
        assert!((ph.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        let good = DenseMatrix::from_rows(&[&[-1.0]]).unwrap();
        assert!(PhaseType::new(vec![], good.clone()).is_err());
        assert!(PhaseType::new(vec![1.5], good.clone()).is_err());
        assert!(PhaseType::new(vec![0.6, 0.6], good.clone()).is_err());
        let bad_diag = DenseMatrix::from_rows(&[&[1.0]]).unwrap();
        assert!(PhaseType::new(vec![1.0], bad_diag).is_err());
        let bad_off = DenseMatrix::from_rows(&[&[-1.0, -0.5], &[0.0, -1.0]]).unwrap();
        assert!(PhaseType::new(vec![1.0, 0.0], bad_off).is_err());
        let pos_row = DenseMatrix::from_rows(&[&[-1.0, 2.0], &[0.0, -1.0]]).unwrap();
        assert!(PhaseType::new(vec![1.0, 0.0], pos_row).is_err());
    }

    #[test]
    fn quantile_round_trip() {
        check_quantile_roundtrip(&erlang2_ph(2.0));
    }

    #[test]
    fn sampling_moments() {
        check_sampling_moments(&erlang2_ph(2.0), 200_000, 0.02);
    }

    #[test]
    fn branching_phase_type() {
        // Coxian-ish: phase 0 -> phase 1 w.p. 0.5 (rate 1), exit w.p. 0.5.
        let t = DenseMatrix::from_rows(&[&[-2.0, 1.0], &[0.0, -1.0]]).unwrap();
        let ph = PhaseType::new(vec![1.0, 0.0], t).unwrap();
        // mean = 1/2 + (1/2)(1) = 1.0
        assert!((ph.mean() - 1.0).abs() < 1e-12);
        check_sampling_moments(&ph, 200_000, 0.03);
    }
}
