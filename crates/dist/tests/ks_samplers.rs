//! Kolmogorov–Smirnov property tests: every sampler is validated
//! against its own CDF.
//!
//! An inverse-transform typo (wrong sign, swapped parameter, off-by-one
//! in a mixture index) produces samples that still *look* plausible but
//! silently corrupt every simulation built on top. The KS statistic
//! `D_n = sup_x |F_n(x) − F(x)|` catches exactly that class of bug: for
//! `n` i.i.d. samples from the claimed CDF, `√n·D_n` is bounded by
//! ~2.2 except with probability ≈ 1e-4 (and every case here is
//! deterministic given the generated parameters, so a pass is a pass
//! forever).

use proptest::{proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reliab_dist::{
    Deterministic, Empirical, Erlang, Exponential, Gamma, HyperExponential, HypoExponential,
    Lifetime, LogNormal, Pareto, PhaseType, Uniform, Weibull,
};
use reliab_numeric::DenseMatrix;

const N: usize = 2000;
/// Critical value for `√n·D_n` at significance ≈ 1e-4.
const KS_BOUND: f64 = 2.2;

/// Mixes generated parameters into a per-case sampling seed, so each
/// proptest case draws a fresh but reproducible sample.
fn seed_from(parts: &[f64]) -> u64 {
    let mut h: u64 = 0x517C_C1B7_2722_0A95;
    for p in parts {
        h = (h ^ p.to_bits()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
    }
    h
}

/// KS distance between `n` samples of `dist` and its own CDF
/// (continuous distributions: ties have probability zero).
fn ks_statistic(dist: &dyn Lifetime, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut xs: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
    xs.sort_by(f64::total_cmp);
    let n = N as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = dist.cdf(x).expect("sample in support");
        d = d.max((f - i as f64 / n).abs());
        d = d.max(((i + 1) as f64 / n - f).abs());
    }
    d * n.sqrt()
}

fn assert_ks(dist: &dyn Lifetime, seed: u64, label: &str) {
    let stat = ks_statistic(dist, seed);
    assert!(
        stat <= KS_BOUND,
        "{label}: sqrt(n) * D_n = {stat:.3} exceeds {KS_BOUND}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exponential_sampler_matches_cdf(rate in 0.01f64..10.0) {
        let d = Exponential::new(rate).unwrap();
        assert_ks(&d, seed_from(&[rate]), "exponential");
    }

    #[test]
    fn weibull_sampler_matches_cdf(shape in 0.5f64..4.0, scale in 0.1f64..50.0) {
        let d = Weibull::new(shape, scale).unwrap();
        assert_ks(&d, seed_from(&[shape, scale]), "weibull");
    }

    #[test]
    fn lognormal_sampler_matches_cdf(mu in -2.0f64..2.0, sigma in 0.1f64..2.0) {
        let d = LogNormal::new(mu, sigma).unwrap();
        assert_ks(&d, seed_from(&[mu, sigma]), "lognormal");
    }

    #[test]
    fn pareto_sampler_matches_cdf(shape in 0.5f64..5.0, scale in 0.1f64..10.0) {
        let d = Pareto::new(shape, scale).unwrap();
        assert_ks(&d, seed_from(&[shape, scale]), "pareto");
    }

    #[test]
    fn gamma_sampler_matches_cdf(shape in 0.3f64..8.0, rate in 0.05f64..5.0) {
        let d = Gamma::new(shape, rate).unwrap();
        assert_ks(&d, seed_from(&[shape, rate]), "gamma");
    }

    #[test]
    fn erlang_sampler_matches_cdf(stages in 1usize..6, rate in 0.1f64..5.0) {
        let d = Erlang::new(stages as u32, rate).unwrap();
        assert_ks(&d, seed_from(&[stages as f64, rate]), "erlang");
    }

    #[test]
    fn uniform_sampler_matches_cdf(low in 0.0f64..5.0, width in 0.1f64..10.0) {
        let d = Uniform::new(low, low + width).unwrap();
        assert_ks(&d, seed_from(&[low, width]), "uniform");
    }

    #[test]
    fn hyperexponential_sampler_matches_cdf(
        p in 0.05f64..0.95,
        r1 in 0.1f64..5.0,
        r2 in 0.1f64..5.0,
    ) {
        let d = HyperExponential::new(&[p, 1.0 - p], &[r1, r2]).unwrap();
        assert_ks(&d, seed_from(&[p, r1, r2]), "hyperexponential");
    }

    #[test]
    fn hypoexponential_sampler_matches_cdf(r1 in 0.1f64..5.0, r2 in 0.1f64..5.0) {
        let d = HypoExponential::new(&[r1, r2]).unwrap();
        assert_ks(&d, seed_from(&[r1, r2]), "hypoexponential");
    }

    #[test]
    fn phase_type_sampler_matches_cdf(
        a in 0.2f64..1.0,
        r1 in 0.2f64..4.0,
        r2 in 0.2f64..4.0,
        branch in 0.0f64..1.0,
    ) {
        // Two-phase PH: start in phase 1 w.p. `a` (else phase 2), phase
        // 1 moves to phase 2 with rate `branch·r1` or exits directly.
        let t = DenseMatrix::from_rows(&[&[-r1, branch * r1], &[0.0, -r2]]).unwrap();
        let d = PhaseType::new(vec![a, 1.0 - a], t).unwrap();
        assert_ks(&d, seed_from(&[a, r1, r2, branch]), "phase-type");
    }
}

/// The empirical distribution is discrete, so the standard continuous
/// KS loop over-counts at jumps; compare the resampled ECDF against
/// `F` at each support point (and its left limit) instead.
#[test]
fn empirical_sampler_matches_cdf() {
    // Integer support with repeats => well-separated jump points.
    let source: Vec<f64> = (0..200).map(|i| f64::from((i * i) % 17 + 1)).collect();
    let d = Empirical::from_samples(&source).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xE3_14);
    let mut xs: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
    xs.sort_by(f64::total_cmp);
    let n = N as f64;
    let mut stat = 0.0f64;
    let mut i = 0;
    while i < N {
        let x = xs[i];
        let mut j = i;
        while j < N && xs[j] == x {
            j += 1;
        }
        let f = d.cdf(x).unwrap();
        let f_left = d.cdf(x - 0.5).unwrap();
        stat = stat.max((f - j as f64 / n).abs());
        stat = stat.max((f_left - i as f64 / n).abs());
        i = j;
    }
    stat *= n.sqrt();
    assert!(stat <= KS_BOUND, "empirical: sqrt(n) * D_n = {stat:.3}");
}

/// Deterministic lifetimes have a degenerate CDF (a single unit jump),
/// so KS does not apply; the sampler contract is exactness.
#[test]
fn deterministic_sampler_is_exact() {
    let d = Deterministic::new(4.25).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..64 {
        assert_eq!(d.sample(&mut rng), 4.25);
    }
}
