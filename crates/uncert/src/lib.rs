//! # reliab-uncert
//!
//! Parametric (epistemic) uncertainty propagation — the tutorial's
//! closing challenge: model inputs (failure rates, coverage factors)
//! are never known exactly, they are *estimated* from finite test data,
//! so any point availability number is incomplete without an interval.
//!
//! The workflow implemented here:
//!
//! 1. Describe each uncertain parameter as a distribution — e.g. the
//!    Bayesian posterior of an exponential failure rate given observed
//!    failures and cumulative test time ([`rate_posterior`], a gamma).
//! 2. [`propagate`] samples the parameter vector `B` times, re-solves
//!    the full model per sample (any closure: an RBD, a CTMC, a whole
//!    hierarchy), in parallel across threads.
//! 3. The result carries the sample mean/standard deviation and a
//!    percentile confidence interval for the output measure.
//!
//! ```
//! use reliab_uncert::{propagate, rate_posterior, PropagationOptions};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // Availability = mu/(lambda+mu), lambda uncertain (3 failures in
//! // 3000h of test), mu known exactly.
//! let lambda = rate_posterior(3, 3000.0)?;
//! let r = propagate(
//!     &[Box::new(lambda)],
//!     |p| Ok(0.1 / (p[0] + 0.1)),
//!     &PropagationOptions { samples: 2000, ..Default::default() },
//! )?;
//! assert!(r.interval.lower < r.mean && r.mean < r.interval.upper);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use rand::RngCore;
use reliab_core::{ConfidenceInterval, Error, Result};
use reliab_dist::{Gamma, Lifetime};
use reliab_sim::StreamRng;
use std::sync::Mutex;

/// Stream index for per-sample parameter draws (replication = sample).
const STREAM_SAMPLE: u64 = 0;
/// Stream index for Latin-hypercube stratum permutations (replication =
/// parameter).
const STREAM_LHS_PERM: u64 = 1;

/// Locks a mutex, recovering the data from a poisoned lock (a worker
/// that panicked mid-push only leaves a shorter vector behind, which
/// the sample-count check below catches).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How parameter vectors are drawn in [`propagate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingScheme {
    /// Independent random draws from each parameter distribution.
    #[default]
    Random,
    /// Latin hypercube sampling: each parameter's unit interval is
    /// split into `samples` strata, each hit exactly once (in a random
    /// permutation per parameter). Same estimator, markedly lower
    /// variance for smooth models — the standard trick when each model
    /// re-solve is expensive.
    LatinHypercube,
}

/// Options for [`propagate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationOptions {
    /// Number of Monte-Carlo samples of the parameter vector.
    pub samples: usize,
    /// Confidence level of the reported percentile interval.
    pub level: f64,
    /// RNG seed (sampling is deterministic given the seed and thread
    /// count-independent: streams are split per sample index).
    pub seed: u64,
    /// Number of worker threads (0 = available parallelism).
    pub threads: usize,
    /// Sampling scheme (random or Latin hypercube).
    pub sampling: SamplingScheme,
}

impl Default for PropagationOptions {
    fn default() -> Self {
        PropagationOptions {
            samples: 10_000,
            level: 0.95,
            seed: 0x5EED,
            threads: 0,
            sampling: SamplingScheme::Random,
        }
    }
}

/// Result of an uncertainty propagation.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertaintyResult {
    /// Sample mean of the output measure.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Percentile confidence interval at the requested level.
    pub interval: ConfidenceInterval,
    /// The sorted output samples (for histograms / downstream use).
    pub samples: Vec<f64>,
}

/// Bayesian posterior for an exponential failure/repair **rate** after
/// observing `failures` events over `total_time` cumulative exposure,
/// under the conventional flat prior: `Gamma(failures + 1, total_time)`.
///
/// The posterior mean is `(failures + 1) / total_time`; for large
/// counts this approaches the MLE `failures / total_time`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `total_time > 0`.
pub fn rate_posterior(failures: u32, total_time: f64) -> Result<Gamma> {
    if !(total_time > 0.0 && total_time.is_finite()) {
        return Err(Error::invalid(format!(
            "total test time must be positive, got {total_time}"
        )));
    }
    Gamma::new(f64::from(failures) + 1.0, total_time)
}

/// Propagates parameter uncertainty through an arbitrary model.
///
/// `params[i]` is the distribution of the i-th uncertain parameter;
/// `model` maps a concrete parameter vector to the scalar output
/// measure (re-solving whatever models it wants internally).
///
/// Sampling is reproducible: sample `k` always uses an RNG seeded with
/// `(seed, k)`, regardless of thread count.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] — zero samples, bad level, no
///   parameters.
/// * The first error returned by `model` on any sample propagates.
pub fn propagate<F>(
    params: &[Box<dyn Lifetime>],
    model: F,
    opts: &PropagationOptions,
) -> Result<UncertaintyResult>
where
    F: Fn(&[f64]) -> Result<f64> + Sync,
{
    if params.is_empty() {
        return Err(Error::invalid("no uncertain parameters supplied"));
    }
    if opts.samples < 2 {
        return Err(Error::invalid("need at least 2 samples"));
    }
    if !(opts.level > 0.0 && opts.level < 1.0) {
        return Err(Error::invalid(format!(
            "confidence level must lie in (0,1), got {}",
            opts.level
        )));
    }
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let threads = threads.min(opts.samples);

    // For Latin hypercube sampling, precompute one stratum permutation
    // per parameter (deterministic in the seed, independent of thread
    // count).
    let lhs_perms: Option<Vec<Vec<u32>>> = match opts.sampling {
        SamplingScheme::Random => None,
        SamplingScheme::LatinHypercube => {
            let mut perms = Vec::with_capacity(params.len());
            for j in 0..params.len() {
                let mut rng = StreamRng::new(opts.seed, j as u64, STREAM_LHS_PERM);
                let mut p: Vec<u32> = (0..opts.samples as u32).collect();
                // Fisher–Yates.
                for i in (1..p.len()).rev() {
                    let r = (rng.next_u64() % (i as u64 + 1)) as usize;
                    p.swap(i, r);
                }
                perms.push(p);
            }
            Some(perms)
        }
    };

    let results: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::with_capacity(opts.samples));
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let first_error = &first_error;
            let model = &model;
            let lhs_perms = &lhs_perms;
            scope.spawn(move || {
                let mut point = vec![0.0f64; params.len()];
                let mut local = Vec::new();
                let fail = |e: Error| {
                    let mut guard = lock(first_error);
                    if guard.is_none() {
                        *guard = Some(e);
                    }
                };
                let mut k = worker;
                while k < opts.samples {
                    // Per-sample RNG: a counter-based stream keyed on
                    // (seed, sample index), so draws are bitwise
                    // identical at any worker count.
                    let mut rng = StreamRng::new(opts.seed, k as u64, STREAM_SAMPLE);
                    match lhs_perms {
                        None => {
                            for (slot, d) in point.iter_mut().zip(params.iter()) {
                                *slot = d.sample(&mut rng);
                            }
                        }
                        Some(perms) => {
                            for (j, (slot, d)) in point.iter_mut().zip(params.iter()).enumerate() {
                                let u01 =
                                    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                                let u = ((f64::from(perms[j][k]) + u01) / opts.samples as f64)
                                    .clamp(1e-12, 1.0 - 1e-12);
                                match d.quantile(u) {
                                    Ok(v) => *slot = v,
                                    Err(e) => {
                                        fail(e);
                                        return;
                                    }
                                }
                            }
                        }
                    }
                    match model(&point) {
                        Ok(v) => local.push((k, v)),
                        Err(e) => {
                            fail(e);
                            return;
                        }
                    }
                    k += threads;
                }
                lock(results).extend(local);
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }
    let mut pairs = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if pairs.len() != opts.samples {
        return Err(Error::numerical(format!(
            "expected {} samples, collected {}",
            opts.samples,
            pairs.len()
        )));
    }
    pairs.sort_by_key(|&(k, _)| k);
    let mut samples: Vec<f64> = pairs.into_iter().map(|(_, v)| v).collect();

    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let alpha = 1.0 - opts.level;
    let lo_idx = ((alpha / 2.0) * (samples.len() - 1) as f64).round() as usize;
    let hi_idx = ((1.0 - alpha / 2.0) * (samples.len() - 1) as f64).round() as usize;
    let interval = ConfidenceInterval::new(
        mean.clamp(samples[lo_idx], samples[hi_idx]),
        samples[lo_idx],
        samples[hi_idx],
        opts.level,
    )?;
    Ok(UncertaintyResult {
        mean,
        std_dev: var.sqrt(),
        interval,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::Deterministic;

    #[test]
    fn rate_posterior_moments() {
        let g = rate_posterior(9, 1000.0).unwrap();
        assert!((g.mean() - 0.01).abs() < 1e-12); // (9+1)/1000
        assert!(rate_posterior(1, 0.0).is_err());
    }

    #[test]
    fn identity_model_recovers_parameter_distribution() {
        let lambda = rate_posterior(4, 100.0).unwrap();
        let analytic_mean = lambda.mean();
        let r = propagate(
            &[Box::new(lambda)],
            |p| Ok(p[0]),
            &PropagationOptions {
                samples: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((r.mean - analytic_mean).abs() < 0.05 * analytic_mean);
        assert!(r.interval.contains(analytic_mean));
        assert_eq!(r.samples.len(), 20_000);
    }

    #[test]
    fn deterministic_parameters_collapse_interval() {
        let r = propagate(
            &[Box::new(Deterministic::new(2.0).unwrap())],
            |p| Ok(3.0 * p[0]),
            &PropagationOptions {
                samples: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.mean, 6.0);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.interval.lower, 6.0);
        assert_eq!(r.interval.upper, 6.0);
    }

    #[test]
    fn reproducible_across_thread_counts() {
        let mk = |threads| {
            propagate(
                &[Box::new(rate_posterior(2, 50.0).unwrap())],
                |p| Ok(1.0 / (1.0 + p[0])),
                &PropagationOptions {
                    samples: 500,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(one.samples, four.samples);
        assert_eq!(one.mean, four.mean);
    }

    #[test]
    fn model_errors_propagate() {
        let r = propagate(
            &[Box::new(Deterministic::new(1.0).unwrap())],
            |_| Err(Error::model("inner solve failed")),
            &PropagationOptions {
                samples: 10,
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn option_validation() {
        let params: Vec<Box<dyn Lifetime>> = vec![Box::new(Deterministic::new(1.0).unwrap())];
        assert!(propagate(&[], |_| Ok(0.0), &PropagationOptions::default()).is_err());
        assert!(propagate(
            &params,
            |_| Ok(0.0),
            &PropagationOptions {
                samples: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(propagate(
            &params,
            |_| Ok(0.0),
            &PropagationOptions {
                level: 1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn latin_hypercube_recovers_moments_with_less_noise() {
        // Estimating E[lambda] of a gamma posterior: LHS should land
        // closer to the analytic mean than random sampling at the same
        // budget (stratification kills the between-stratum variance).
        let analytic = rate_posterior(4, 100.0).unwrap().mean();
        let run = |sampling| {
            propagate(
                &[Box::new(rate_posterior(4, 100.0).unwrap())],
                |p| Ok(p[0]),
                &PropagationOptions {
                    samples: 400,
                    sampling,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let lhs = run(SamplingScheme::LatinHypercube);
        let rnd = run(SamplingScheme::Random);
        assert!(
            (lhs.mean - analytic).abs() <= (rnd.mean - analytic).abs() + 1e-6,
            "LHS {} vs random {} (target {analytic})",
            lhs.mean,
            rnd.mean
        );
        // LHS covers every stratum: min/max samples near the
        // distribution's tails.
        let lo_tail = lhs.samples.first().unwrap();
        let hi_tail = lhs.samples.last().unwrap();
        assert!(*lo_tail < analytic * 0.3);
        assert!(*hi_tail > analytic * 2.0);
    }

    #[test]
    fn latin_hypercube_reproducible_across_thread_counts() {
        let mk = |threads| {
            propagate(
                &[Box::new(rate_posterior(2, 50.0).unwrap())],
                |p| Ok(p[0]),
                &PropagationOptions {
                    samples: 256,
                    threads,
                    sampling: SamplingScheme::LatinHypercube,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        assert_eq!(mk(1).samples, mk(3).samples);
    }

    #[test]
    fn interval_widens_with_less_data() {
        let scarce = propagate(
            &[Box::new(rate_posterior(1, 100.0).unwrap())],
            |p| Ok(p[0]),
            &PropagationOptions {
                samples: 5000,
                ..Default::default()
            },
        )
        .unwrap();
        let rich = propagate(
            &[Box::new(rate_posterior(100, 10_000.0).unwrap())],
            |p| Ok(p[0]),
            &PropagationOptions {
                samples: 5000,
                ..Default::default()
            },
        )
        .unwrap();
        // Same posterior-mean scale (~0.01-0.02); scarce data => wider
        // RELATIVE interval.
        let rel = |r: &UncertaintyResult| r.interval.half_width() / r.mean;
        assert!(rel(&scarce) > 2.0 * rel(&rich));
    }
}
