//! # reliab-bounds
//!
//! Bounding algorithms for systems too large for exact non-state-space
//! solution — the technique the tutorial highlights for a major Boeing
//! 787 subsystem, where full cut-set enumeration is infeasible and the
//! analyst instead brackets the answer between certified bounds.
//!
//! Provided bounds (all on *system reliability* `R = 1 - Q`):
//!
//! * [`ep_reliability_bounds`] — Esary–Proschan: for coherent systems
//!   with independent components,
//!   `Π_cuts (1 − Π q) ≤ R ≤ 1 − Π_paths (1 − Π p)`.
//! * [`union_probability`] — exact probability of a union of sets via a
//!   BDD (sum of disjoint products), used to turn *partial* cut-set
//!   lists into certified bounds.
//! * [`truncated_unreliability_bounds`] — with only the minimal cut
//!   sets of order `≤ m` enumerated: the union of the known cuts is a
//!   lower bound on unreliability, and a combinatorial cap on the
//!   number of unenumerated higher-order cuts gives a conservative
//!   upper bound.
//!
//! Sets are slices of component indices; adapt from fault-tree cut sets
//! or reliability-graph path sets by mapping handles to `usize`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use reliab_bdd::{Bdd, NodeId};
use reliab_core::{ensure_probability, Error, Result};

/// A two-sided bound on a probability measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
}

impl Bounds {
    /// Width of the bracket.
    pub fn gap(&self) -> f64 {
        self.upper - self.lower
    }

    /// Midpoint (the usual point estimate quoted with the gap).
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether `x` lies inside the bracket (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }

    /// The bracket on the complementary probability: bounds on
    /// reliability `R` become bounds on unreliability `Q = 1 − R` and
    /// vice versa.
    #[must_use]
    pub fn complement(&self) -> Bounds {
        Bounds {
            lower: 1.0 - self.upper,
            upper: 1.0 - self.lower,
        }
    }
}

fn check_probs(p: &[f64], what: &str) -> Result<()> {
    for (i, &v) in p.iter().enumerate() {
        ensure_probability(v, &format!("{what}[{i}]"))?;
    }
    Ok(())
}

fn check_sets(sets: &[Vec<usize>], n: usize, what: &str) -> Result<()> {
    for (k, s) in sets.iter().enumerate() {
        if s.is_empty() {
            return Err(Error::invalid(format!("{what} {k} is empty")));
        }
        for &i in s {
            if i >= n {
                return Err(Error::invalid(format!(
                    "{what} {k} references component {i}, but only {n} components exist"
                )));
            }
        }
    }
    Ok(())
}

/// Esary–Proschan bounds on system reliability for a coherent system
/// with independent components.
///
/// `min_paths` and `min_cuts` are minimal path/cut sets as component
/// index lists; `p_up[i]` is component `i`'s probability of being up.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for empty set lists, empty sets,
/// out-of-range indices, or bad probabilities.
///
/// ```
/// use reliab_bounds::ep_reliability_bounds;
/// // Series system of 2: single path {0,1}; cuts {0}, {1}.
/// let b = ep_reliability_bounds(
///     &[vec![0, 1]],
///     &[vec![0], vec![1]],
///     &[0.9, 0.8],
/// ).unwrap();
/// // Series-of-independent is exact for both EP bounds: R = 0.72.
/// assert!((b.lower - 0.72).abs() < 1e-12);
/// assert!((b.upper - 0.72).abs() < 1e-12);
/// ```
pub fn ep_reliability_bounds(
    min_paths: &[Vec<usize>],
    min_cuts: &[Vec<usize>],
    p_up: &[f64],
) -> Result<Bounds> {
    if min_paths.is_empty() || min_cuts.is_empty() {
        return Err(Error::invalid(
            "Esary–Proschan bounds need at least one path set and one cut set",
        ));
    }
    check_probs(p_up, "p_up")?;
    check_sets(min_paths, p_up.len(), "path set")?;
    check_sets(min_cuts, p_up.len(), "cut set")?;

    // Lower: Π over cuts of (1 − Π q_i).
    let mut lower = 1.0;
    for c in min_cuts {
        let q_prod: f64 = c.iter().map(|&i| 1.0 - p_up[i]).product();
        lower *= 1.0 - q_prod;
    }
    // Upper: 1 − Π over paths of (1 − Π p_i).
    let mut miss_all = 1.0;
    for path in min_paths {
        let p_prod: f64 = path.iter().map(|&i| p_up[i]).product();
        miss_all *= 1.0 - p_prod;
    }
    let upper = 1.0 - miss_all;
    // EP guarantees lower <= R <= upper; numerical round-off can cross
    // them for degenerate inputs, so clamp defensively.
    Ok(Bounds {
        lower: lower.min(upper),
        upper,
    })
}

/// Exact probability that at least one of `sets` has all its components
/// failed (for cut sets) or up (for path sets) — the caller chooses the
/// meaning by passing per-component probabilities of the *relevant*
/// event in `probs`.
///
/// Compiled to a BDD, so overlapping sets are handled exactly: this is
/// the sum-of-disjoint-products value.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed sets/probabilities.
pub fn union_probability(sets: &[Vec<usize>], probs: &[f64], nvars: usize) -> Result<f64> {
    if probs.len() != nvars {
        return Err(Error::invalid(format!(
            "probability vector length {} != component count {nvars}",
            probs.len()
        )));
    }
    check_probs(probs, "probs")?;
    check_sets(sets, nvars, "set")?;
    let mut bdd = Bdd::new(nvars as u32);
    let mut acc = NodeId::FALSE;
    for s in sets {
        let mut conj = NodeId::TRUE;
        for &i in s {
            let v = bdd.var(i as u32).map_err(|e| Error::model(e.to_string()))?;
            conj = bdd.and(conj, v);
        }
        acc = bdd.or(acc, conj);
    }
    bdd.probability(acc, probs)
        .map_err(|e| Error::model(e.to_string()))
}

/// Bounds on system **unreliability** when only the minimal cut sets of
/// order `≤ max_order` have been enumerated (the Boeing-787-style
/// truncation workflow).
///
/// * Lower: exact union probability of the known cut sets (any
///   additional cut set can only increase `Q`).
/// * Upper: lower + `Σ_{k = max_order+1}^{n} C(n, k) · q_max^k`, a
///   conservative cap on everything the enumeration missed (there are
///   at most `C(n, k)` order-`k` cut sets, each with probability at
///   most `q_max^k`).
///
/// The upper bound is useful when `q_max` is small (high-reliability
/// components) — exactly the regime of the 787 analysis. The returned
/// upper bound is clamped to 1.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed input or if any
/// known cut set exceeds `max_order` (that would make the "everything
/// above `max_order` is unknown" accounting wrong).
pub fn truncated_unreliability_bounds(
    known_cuts: &[Vec<usize>],
    q_fail: &[f64],
    max_order: usize,
) -> Result<Bounds> {
    check_probs(q_fail, "q_fail")?;
    check_sets(known_cuts, q_fail.len(), "cut set")?;
    if max_order == 0 {
        return Err(Error::invalid("max_order must be at least 1"));
    }
    for (k, c) in known_cuts.iter().enumerate() {
        if c.len() > max_order {
            return Err(Error::invalid(format!(
                "cut set {k} has order {} > max_order {max_order}",
                c.len()
            )));
        }
    }
    let n = q_fail.len();
    let lower = union_probability(known_cuts, q_fail, n)?;
    let q_max = q_fail.iter().copied().fold(0.0f64, f64::max);
    // Residual: sum over k in (max_order, n] of C(n, k) q_max^k,
    // computed in a numerically tame way (stop once terms vanish).
    let mut residual = 0.0f64;
    let mut binom = 1.0f64; // C(n, 0)
    for k in 1..=n {
        binom *= (n - k + 1) as f64 / k as f64;
        if k > max_order {
            let term = binom * q_max.powi(k as i32);
            residual += term;
            if term < 1e-18 * residual.max(1.0) {
                break;
            }
        }
    }
    Ok(Bounds {
        lower,
        upper: (lower + residual).min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bridge network: paths/cuts from the relgraph tests.
    fn bridge_sets() -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let paths = vec![vec![0, 3], vec![1, 4], vec![0, 2, 4], vec![1, 2, 3]];
        let cuts = vec![vec![0, 1], vec![3, 4], vec![0, 2, 4], vec![1, 2, 3]];
        (paths, cuts)
    }

    /// Exact bridge reliability with common edge probability p.
    fn bridge_exact(p: f64) -> f64 {
        2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5)
    }

    #[test]
    fn ep_bounds_bracket_bridge_reliability() {
        let (paths, cuts) = bridge_sets();
        for &p in &[0.8, 0.9, 0.99, 0.999] {
            let b = ep_reliability_bounds(&paths, &cuts, &[p; 5]).unwrap();
            let exact = bridge_exact(p);
            assert!(
                b.contains(exact),
                "p = {p}: [{}, {}] should contain {exact}",
                b.lower,
                b.upper
            );
            // Bounds tighten as p -> 1.
            if p >= 0.99 {
                assert!(b.gap() < 1e-3);
            }
        }
    }

    #[test]
    fn ep_bounds_exact_for_series_and_parallel() {
        // Pure parallel of 2: one cut {0,1}; paths {0}, {1}.
        let b = ep_reliability_bounds(&[vec![0], vec![1]], &[vec![0, 1]], &[0.9, 0.8]).unwrap();
        let exact = 1.0 - 0.1 * 0.2;
        assert!((b.lower - exact).abs() < 1e-12);
        assert!((b.upper - exact).abs() < 1e-12);
    }

    #[test]
    fn ep_validation() {
        assert!(ep_reliability_bounds(&[], &[vec![0]], &[0.9]).is_err());
        assert!(ep_reliability_bounds(&[vec![0]], &[], &[0.9]).is_err());
        assert!(ep_reliability_bounds(&[vec![]], &[vec![0]], &[0.9]).is_err());
        assert!(ep_reliability_bounds(&[vec![5]], &[vec![0]], &[0.9]).is_err());
        assert!(ep_reliability_bounds(&[vec![0]], &[vec![0]], &[1.5]).is_err());
    }

    #[test]
    fn union_probability_handles_overlap() {
        // Sets {0,1} and {0,2} with p = 0.5 each: P = p0(p1 + p2 - p1 p2).
        let p = [0.5, 0.5, 0.5];
        let u = union_probability(&[vec![0, 1], vec![0, 2]], &p, 3).unwrap();
        assert!((u - 0.375).abs() < 1e-15);
        // Disjoint singletons.
        let u = union_probability(&[vec![0], vec![1]], &p, 3).unwrap();
        assert!((u - 0.75).abs() < 1e-15);
        // Empty set list: probability 0.
        let u = union_probability(&[], &p, 3).unwrap();
        assert_eq!(u, 0.0);
    }

    #[test]
    fn truncated_bounds_bracket_true_unreliability() {
        let (_, cuts) = bridge_sets();
        let q = 0.01f64;
        let q_vec = [q; 5];
        let exact_q = 1.0 - bridge_exact(1.0 - q);
        // Enumerate only order-2 cut sets.
        let known: Vec<Vec<usize>> = cuts.iter().filter(|c| c.len() <= 2).cloned().collect();
        let b = truncated_unreliability_bounds(&known, &q_vec, 2).unwrap();
        assert!(
            b.contains(exact_q),
            "[{}, {}] should contain {exact_q}",
            b.lower,
            b.upper
        );
        // With all cut sets (order <= 3), the bracket tightens.
        let b_full = truncated_unreliability_bounds(&cuts, &q_vec, 3).unwrap();
        assert!(b_full.gap() < b.gap());
        // With every minimal cut known, the lower bound IS the exact
        // value; allow round-off slack.
        assert!(exact_q >= b_full.lower - 1e-12 && exact_q <= b_full.upper + 1e-12);
    }

    #[test]
    fn truncated_bounds_validation() {
        let q = [0.1, 0.1];
        assert!(truncated_unreliability_bounds(&[vec![0]], &q, 0).is_err());
        // Known cut of order 2 with max_order 1 is inconsistent.
        assert!(truncated_unreliability_bounds(&[vec![0, 1]], &q, 1).is_err());
    }

    #[test]
    fn bounds_accessors() {
        let b = Bounds {
            lower: 0.2,
            upper: 0.6,
        };
        assert!((b.gap() - 0.4).abs() < 1e-15);
        assert!((b.midpoint() - 0.4).abs() < 1e-15);
        assert!(b.contains(0.2) && b.contains(0.6) && !b.contains(0.61));
    }

    #[test]
    fn truncation_residual_shrinks_with_order() {
        // 10 components, tiny q: residual term dominates the gap and
        // shrinks rapidly with max_order.
        let q = [1e-3; 10];
        let known: Vec<Vec<usize>> = vec![vec![0, 1]];
        let b2 = truncated_unreliability_bounds(&known, &q, 2).unwrap();
        let b3 = truncated_unreliability_bounds(&known, &q, 3).unwrap();
        assert!(b3.gap() < b2.gap());
        assert!(b2.gap() < 1e-4);
    }
}
