//! # reliab-sim
//!
//! Parallel discrete-event simulation of repairable systems — the
//! workspace's ground truth for cross-validating analytic solvers and
//! its escape hatch for models with no analytic solution (arbitrary
//! lifetime distributions, structure functions of any shape).
//!
//! A [`SystemSimulator`] holds, per component, a time-to-failure and a
//! time-to-repair distribution (any [`reliab_dist::Lifetime`]), plus a
//! Boolean structure function over component states. The engine under
//! it is a production DES kernel:
//!
//! * a binary-heap event calendar ordered by `(time, component)`;
//! * counter-based splittable RNG streams ([`StreamRng`]), one per
//!   `(replication, component)`, making every trajectory a pure
//!   function of `(seed, replication)`;
//! * a work-stealing parallel replication driver
//!   ([`SystemSimulator::simulate`]) whose output is bitwise-identical
//!   for any worker count, with CI-driven adaptive stopping
//!   (batch-means variance for steady-state availability,
//!   replication means for reliability/MTTF).
//!
//! Fixed-budget convenience estimators (95% CI over a set replication
//! count) remain available:
//!
//! * [`SystemSimulator::availability`] — long-run availability by
//!   time-averaging over a horizon;
//! * [`SystemSimulator::reliability`] — survival probability to a
//!   mission time (components are *not* repaired after system failure —
//!   the standard reliability semantics where the first system failure
//!   ends the story, but component repairs before that are allowed);
//! * [`SystemSimulator::mttf`] — mean time to first system failure.
//!
//! ```
//! use reliab_sim::{Measure, SimOptions, SystemSimulator};
//! use reliab_dist::Exponential;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // One component, fail rate 1, repair rate 9 => availability 0.9.
//! let mut sim = SystemSimulator::new(|s| s[0]);
//! sim.component(
//!     Box::new(Exponential::new(1.0)?),
//!     Box::new(Exponential::new(9.0)?),
//! );
//! let report = sim.simulate(
//!     Measure::Availability { horizon: 2_000.0 },
//!     &SimOptions::default().with_seed(42).with_rel_precision(0.01),
//! )?;
//! assert!((report.interval.point - 0.9).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod driver;
mod kernel;
mod queue;
mod stream;

pub use driver::{CiPoint, Measure, SimOptions, SimReport};
pub use queue::{Event, EventQueue};
pub use stream::{mix64, StreamRng};

use reliab_core::{ConfidenceInterval, Error, Result};
use reliab_dist::Lifetime;
use reliab_numeric::special::normal_quantile;

/// A point estimate with replication statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Normal-theory confidence interval over replications (95%).
    pub interval: ConfidenceInterval,
    /// Per-replication values (for diagnostics).
    pub replications: Vec<f64>,
}

fn summarize(replications: Vec<f64>, level: f64) -> Result<Estimate> {
    let n = replications.len();
    if n < 2 {
        return Err(Error::invalid("need at least 2 replications"));
    }
    let nf = n as f64;
    let mean = replications.iter().sum::<f64>() / nf;
    let var = replications
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / (nf - 1.0);
    let z =
        normal_quantile(1.0 - (1.0 - level) / 2.0).map_err(|e| Error::numerical(e.to_string()))?;
    let half = z * (var / nf).sqrt();
    Ok(Estimate {
        interval: ConfidenceInterval::new(mean, mean - half, mean + half, level)?,
        replications,
    })
}

/// Structure function over component up/down states (`true` = up).
pub type StructureFn = Box<dyn Fn(&[bool]) -> bool + Sync>;

/// A repairable system simulator; see the crate docs for semantics.
pub struct SystemSimulator {
    pub(crate) ttf: Vec<Box<dyn Lifetime>>,
    pub(crate) ttr: Vec<Option<Box<dyn Lifetime>>>,
    pub(crate) works: StructureFn,
}

impl std::fmt::Debug for SystemSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSimulator")
            .field("components", &self.ttf.len())
            .finish()
    }
}

impl SystemSimulator {
    /// Creates a simulator with the given structure function.
    pub fn new<F>(works: F) -> Self
    where
        F: Fn(&[bool]) -> bool + Sync + 'static,
    {
        SystemSimulator {
            ttf: Vec::new(),
            ttr: Vec::new(),
            works: Box::new(works),
        }
    }

    /// Adds a component with its time-to-failure and time-to-repair
    /// distributions; returns its index as seen by the structure
    /// function.
    pub fn component(&mut self, ttf: Box<dyn Lifetime>, ttr: Box<dyn Lifetime>) -> usize {
        self.ttf.push(ttf);
        self.ttr.push(Some(ttr));
        self.ttf.len() - 1
    }

    /// Adds a non-repairable component: once failed it stays down for
    /// the rest of the trajectory. Useful for mission
    /// reliability/MTTF of non-maintained systems.
    pub fn component_without_repair(&mut self, ttf: Box<dyn Lifetime>) -> usize {
        self.ttf.push(ttf);
        self.ttr.push(None);
        self.ttf.len() - 1
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.ttf.len()
    }

    pub(crate) fn check(&self) -> Result<()> {
        if self.ttf.is_empty() {
            return Err(Error::model("simulator has no components"));
        }
        Ok(())
    }

    /// Runs the adaptive parallel driver for `measure`: replications in
    /// work-stealing rounds until the relative CI half-width reaches
    /// [`SimOptions::rel_precision`] or the budget is exhausted. The
    /// report (point, CI, event counts, trajectory) is
    /// bitwise-identical for any [`SimOptions::jobs`] value.
    ///
    /// # Errors
    ///
    /// [`Error::Model`] for an empty system,
    /// [`Error::InvalidParameter`] for bad options or a non-positive
    /// time parameter, [`Error::Numerical`] if an MTTF replication is
    /// censored by its `time_cap`.
    pub fn simulate(&self, measure: Measure, opts: &SimOptions) -> Result<SimReport> {
        driver::simulate(self, measure, opts)
    }

    /// Estimates long-run availability by `replications` independent
    /// runs over `horizon` each (fixed budget, 95% CI).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive horizon
    /// or fewer than 2 replications; [`Error::Model`] for an empty
    /// system.
    pub fn availability(&self, horizon: f64, replications: usize, seed: u64) -> Result<Estimate> {
        self.check()?;
        if !(horizon > 0.0 && horizon.is_finite()) {
            return Err(Error::invalid(format!(
                "horizon must be positive and finite, got {horizon}"
            )));
        }
        let reps: Vec<f64> = (0..replications)
            .map(|k| {
                let (batch, _) = kernel::run_availability(self, seed, k as u64, horizon, 0.0, 1);
                batch[0]
            })
            .collect();
        summarize(reps, 0.95)
    }

    /// Estimates mission reliability `R(t)`: probability the system
    /// survives to `mission_time` without a system-level failure
    /// (component repairs before system failure are included).
    ///
    /// # Errors
    ///
    /// As [`SystemSimulator::availability`].
    pub fn reliability(
        &self,
        mission_time: f64,
        replications: usize,
        seed: u64,
    ) -> Result<Estimate> {
        self.check()?;
        if !(mission_time > 0.0 && mission_time.is_finite()) {
            return Err(Error::invalid(format!(
                "mission time must be positive and finite, got {mission_time}"
            )));
        }
        let reps: Vec<f64> = (0..replications)
            .map(|k| {
                let (_, failed, _) = kernel::run_first_failure(self, seed, k as u64, mission_time);
                if failed {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        summarize(reps, 0.95)
    }

    /// Estimates point availability `A(t) = P(system up at t)` on a
    /// grid of time points, sharing replications across the grid (one
    /// long trajectory per replication, sampled at each point).
    ///
    /// Returns one [`Estimate`] per entry of `times`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty or unsorted
    /// grid, non-finite times, or fewer than 2 replications.
    pub fn transient_availability(
        &self,
        times: &[f64],
        replications: usize,
        seed: u64,
    ) -> Result<Vec<Estimate>> {
        self.check()?;
        if times.is_empty() {
            return Err(Error::invalid("time grid is empty"));
        }
        let mut last = 0.0;
        for &t in times {
            if !(t.is_finite() && t >= last) {
                return Err(Error::invalid(format!(
                    "time grid must be non-negative, sorted, and finite; saw {t} after {last}"
                )));
            }
            last = t;
        }
        if replications < 2 {
            return Err(Error::invalid("need at least 2 replications"));
        }
        // reps[g][k] = up indicator of replication k at grid point g.
        let mut reps = vec![Vec::with_capacity(replications); times.len()];
        for k in 0..replications {
            kernel::run_indicator_grid(self, seed, k as u64, times, &mut reps);
        }
        reps.into_iter().map(|r| summarize(r, 0.95)).collect()
    }

    /// Estimates MTTF: expected time to first system failure. Each
    /// replication runs until the system fails (guard: `time_cap`
    /// aborts pathological runs and triggers an error, since censoring
    /// would bias the estimate).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if any replication hits `time_cap`
    /// before the system fails.
    pub fn mttf(&self, replications: usize, time_cap: f64, seed: u64) -> Result<Estimate> {
        self.check()?;
        if !(time_cap > 0.0 && time_cap.is_finite()) {
            return Err(Error::invalid(format!(
                "time cap must be positive and finite, got {time_cap}"
            )));
        }
        let mut reps = Vec::with_capacity(replications);
        for k in 0..replications {
            let (t, failed, _) = kernel::run_first_failure(self, seed, k as u64, time_cap);
            if !failed {
                return Err(Error::numerical(format!(
                    "replication {k} did not fail within the time cap {time_cap}; \
                     raise the cap to avoid a censored (biased) MTTF"
                )));
            }
            reps.push(t);
        }
        summarize(reps, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Exponential, LogNormal, Weibull};

    fn exp(rate: f64) -> Box<dyn Lifetime> {
        Box::new(Exponential::new(rate).unwrap())
    }

    #[test]
    fn single_component_availability_matches_formula() {
        let (l, m) = (1.0, 4.0);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(l), exp(m));
        let est = sim.availability(5_000.0, 32, 7).unwrap();
        let exact = m / (l + m);
        assert!(
            est.interval.contains(exact),
            "[{}, {}] vs {exact}",
            est.interval.lower,
            est.interval.upper
        );
    }

    #[test]
    fn parallel_system_availability() {
        // Two independent components in parallel:
        // A = 1 - (1-a)^2 with a = mu/(l+mu).
        let (l, m) = (1.0, 3.0);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0] || s[1]);
        sim.component(exp(l), exp(m));
        sim.component(exp(l), exp(m));
        let est = sim.availability(5_000.0, 32, 11).unwrap();
        let a = m / (l + m);
        let exact = 1.0 - (1.0 - a) * (1.0 - a);
        assert!(est.interval.contains(exact));
    }

    #[test]
    fn series_reliability_without_repair_matches_exponential() {
        // Series of two non-repairable exp components:
        // R(t) = e^{-(l1+l2)t}.
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0] && s[1]);
        sim.component_without_repair(exp(0.5));
        sim.component_without_repair(exp(0.25));
        let t = 1.0;
        let est = sim.reliability(t, 4000, 3).unwrap();
        let exact = (-0.75f64 * t).exp();
        assert!(
            (est.interval.point - exact).abs() < 0.03,
            "{} vs {exact}",
            est.interval.point
        );
    }

    #[test]
    fn mttf_single_exponential() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(2.0), exp(1.0));
        let est = sim.mttf(4000, 1e6, 5).unwrap();
        assert!((est.interval.point - 0.5).abs() < 0.05);
    }

    #[test]
    fn redundancy_with_repair_extends_mttf() {
        // 1-of-2 with fast repair lives much longer than a single unit.
        let mk = |n: usize| {
            let mut sim = SystemSimulator::new(move |s: &[bool]| s.iter().any(|&b| b));
            for _ in 0..n {
                sim.component(exp(1.0), exp(20.0));
            }
            sim
        };
        let single = mk(1).mttf(800, 1e7, 13).unwrap();
        let dual = mk(2).mttf(800, 1e7, 13).unwrap();
        assert!(dual.interval.point > 5.0 * single.interval.point);
    }

    #[test]
    fn non_exponential_distributions_supported() {
        // Weibull wear-out failures, lognormal repairs: availability
        // from renewal theory = E[ttf] / (E[ttf] + E[ttr]).
        let ttf = Weibull::new(2.0, 10.0).unwrap();
        let ttr = LogNormal::from_mean_cv2(1.0, 2.0).unwrap();
        let exact = ttf.mean() / (ttf.mean() + ttr.mean());
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(Box::new(ttf), Box::new(ttr));
        let est = sim.availability(20_000.0, 24, 23).unwrap();
        assert!(
            (est.interval.point - exact).abs() < 0.01,
            "{} vs {exact}",
            est.interval.point
        );
    }

    #[test]
    fn validation() {
        let sim = SystemSimulator::new(|s: &[bool]| s[0]);
        assert!(sim.availability(100.0, 8, 1).is_err()); // no components
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(1.0));
        assert!(sim.availability(0.0, 8, 1).is_err());
        assert!(sim.availability(100.0, 1, 1).is_err());
        assert!(sim.reliability(-1.0, 8, 1).is_err());
        assert!(sim.mttf(8, f64::INFINITY, 1).is_err());
    }

    #[test]
    fn transient_availability_matches_closed_form() {
        // Single component: A(t) = mu/(l+m) + l/(l+m) e^{-(l+m)t}.
        let (l, m) = (0.5f64, 1.5f64);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(l), exp(m));
        let times = [0.5, 1.0, 2.0, 5.0, 20.0];
        let ests = sim.transient_availability(&times, 6000, 97).unwrap();
        for (t, est) in times.iter().zip(&ests) {
            let exact = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!(
                est.interval.contains(exact),
                "t = {t}: CI [{}, {}] vs exact {exact}",
                est.interval.lower,
                est.interval.upper
            );
        }
        // Early availability is higher than steady state.
        assert!(ests[0].interval.point > ests[4].interval.point);
    }

    #[test]
    fn transient_availability_validates_grid() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(1.0));
        assert!(sim.transient_availability(&[], 8, 1).is_err());
        assert!(sim.transient_availability(&[2.0, 1.0], 8, 1).is_err());
        assert!(sim.transient_availability(&[-1.0], 8, 1).is_err());
        assert!(sim.transient_availability(&[1.0], 1, 1).is_err());
    }

    #[test]
    fn mttf_cap_detects_censoring() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1e-6), exp(1.0)); // essentially never fails
        assert!(sim.mttf(4, 10.0, 1).is_err());
    }

    #[test]
    fn reproducible_given_seed() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(2.0));
        let a = sim.availability(500.0, 8, 99).unwrap();
        let b = sim.availability(500.0, 8, 99).unwrap();
        assert_eq!(a.replications, b.replications);
    }

    #[test]
    fn simulate_availability_with_batch_means() {
        let (l, m) = (1.0, 4.0);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(l), exp(m));
        let opts = SimOptions::default()
            .with_seed(7)
            .with_rel_precision(0.01)
            .with_max_replications(512);
        let report = sim
            .simulate(Measure::Availability { horizon: 2_000.0 }, &opts)
            .unwrap();
        let exact = m / (l + m);
        assert!(report.converged, "did not converge: {report:?}");
        assert!(
            report.interval.contains(exact),
            "[{}, {}] vs {exact}",
            report.interval.lower,
            report.interval.upper
        );
        assert!(report.rel_half_width <= 0.01);
        assert_eq!(report.observations, report.replications * opts.batches);
        assert_eq!(report.rounds, report.trajectory.len());
        assert!(report.events > 0);
    }

    #[test]
    fn simulate_is_bitwise_identical_across_worker_counts() {
        let mut sim =
            SystemSimulator::new(|s: &[bool]| s.iter().filter(|&&b| b).count() >= 2 && s[3]);
        for _ in 0..3 {
            sim.component(exp(0.01), exp(1.0));
        }
        sim.component(
            Box::new(Weibull::new(1.5, 800.0).unwrap()),
            Box::new(LogNormal::from_mean_cv2(4.0, 2.0).unwrap()),
        );
        let base = SimOptions::default()
            .with_seed(1234)
            .with_rel_precision(0.002)
            .with_max_replications(256);
        let reference = sim
            .simulate(Measure::Availability { horizon: 10_000.0 }, &base)
            .unwrap();
        for jobs in [2usize, 4, 8] {
            let got = sim
                .simulate(
                    Measure::Availability { horizon: 10_000.0 },
                    &base.clone().with_jobs(jobs),
                )
                .unwrap();
            // Everything except the worker count must match bit for bit.
            assert_eq!(got.interval, reference.interval, "jobs={jobs}");
            assert_eq!(got.events, reference.events, "jobs={jobs}");
            assert_eq!(got.replications, reference.replications);
            assert_eq!(got.trajectory, reference.trajectory);
            assert_eq!(got.workers, jobs);
        }
    }

    #[test]
    fn simulate_reliability_and_mttf() {
        // Single non-repairable exp component: R(t) = e^{-t},
        // MTTF = 1.
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component_without_repair(exp(1.0));
        let opts = SimOptions::default()
            .with_seed(5)
            .with_rel_precision(0.05)
            .with_max_replications(8192);
        let rel = sim
            .simulate(
                Measure::Reliability { mission_time: 1.0 },
                &opts.clone().with_jobs(4),
            )
            .unwrap();
        assert!(rel.interval.contains((-1.0f64).exp()) || rel.rel_half_width < 0.1);
        let mttf = sim
            .simulate(Measure::Mttf { time_cap: 1e9 }, &opts)
            .unwrap();
        assert!((mttf.interval.point - 1.0).abs() < 0.1);
    }

    #[test]
    fn simulate_rejects_bad_options() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(1.0));
        let m = Measure::Availability { horizon: 100.0 };
        let bad = |o: SimOptions| sim.simulate(m, &o).is_err();
        assert!(bad(SimOptions::default().with_confidence(1.0)));
        assert!(bad(SimOptions::default().with_rel_precision(-0.5)));
        assert!(bad(SimOptions {
            min_replications: 1,
            ..Default::default()
        }));
        assert!(bad(SimOptions {
            max_replications: 4,
            ..Default::default()
        }));
        assert!(bad(SimOptions {
            batches: 0,
            ..Default::default()
        }));
        assert!(bad(SimOptions {
            warmup_fraction: 1.0,
            ..Default::default()
        }));
        assert!(sim
            .simulate(
                Measure::Availability { horizon: -1.0 },
                &SimOptions::default()
            )
            .is_err());
    }

    #[test]
    fn simulate_mttf_censoring_is_an_error() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1e-9), exp(1.0));
        let err = sim
            .simulate(Measure::Mttf { time_cap: 10.0 }, &SimOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("time cap"), "{err}");
    }

    #[test]
    fn adaptive_stopping_uses_fewer_replications_when_loose() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(9.0));
        let m = Measure::Availability { horizon: 1_000.0 };
        let loose = sim
            .simulate(
                m,
                &SimOptions::default().with_seed(3).with_rel_precision(0.05),
            )
            .unwrap();
        let tight = sim
            .simulate(
                m,
                &SimOptions::default().with_seed(3).with_rel_precision(0.001),
            )
            .unwrap();
        assert!(loose.replications <= tight.replications);
        assert!(tight.rounds >= loose.rounds);
    }
}
