//! # reliab-sim
//!
//! Discrete-event simulation of repairable systems — the workspace's
//! ground truth for cross-validating analytic solvers and its escape
//! hatch for models with no analytic solution (arbitrary lifetime
//! distributions, structure functions of any shape).
//!
//! A [`SystemSimulator`] holds, per component, a time-to-failure and a
//! time-to-repair distribution (any [`reliab_dist::Lifetime`]), plus a
//! Boolean structure function over component states. Estimators:
//!
//! * [`SystemSimulator::availability`] — long-run availability by
//!   time-averaging over a horizon, independent replications,
//!   normal-theory confidence interval;
//! * [`SystemSimulator::reliability`] — survival probability to a
//!   mission time (components are *not* repaired after system failure —
//!   the standard reliability semantics where the first system failure
//!   ends the story, but component repairs before that are allowed);
//! * [`SystemSimulator::mttf`] — mean time to first system failure.
//!
//! ```
//! use reliab_sim::SystemSimulator;
//! use reliab_dist::Exponential;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // One component, fail rate 1, repair rate 9 => availability 0.9.
//! let mut sim = SystemSimulator::new(|s| s[0]);
//! sim.component(
//!     Box::new(Exponential::new(1.0)?),
//!     Box::new(Exponential::new(9.0)?),
//! );
//! let est = sim.availability(2_000.0, 64, 42)?;
//! assert!((est.interval.point - 0.9).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use reliab_core::{ConfidenceInterval, Error, Result};
use reliab_dist::Lifetime;
use reliab_numeric::special::normal_quantile;

/// A point estimate with replication statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Normal-theory confidence interval over replications (95%).
    pub interval: ConfidenceInterval,
    /// Per-replication values (for diagnostics).
    pub replications: Vec<f64>,
}

fn summarize(replications: Vec<f64>, level: f64) -> Result<Estimate> {
    let n = replications.len();
    if n < 2 {
        return Err(Error::invalid("need at least 2 replications"));
    }
    let nf = n as f64;
    let mean = replications.iter().sum::<f64>() / nf;
    let var = replications
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / (nf - 1.0);
    let z =
        normal_quantile(1.0 - (1.0 - level) / 2.0).map_err(|e| Error::numerical(e.to_string()))?;
    let half = z * (var / nf).sqrt();
    Ok(Estimate {
        interval: ConfidenceInterval::new(mean, mean - half, mean + half, level)?,
        replications,
    })
}

/// Decorrelated per-replication RNG: splitmix64 over (seed, index) so
/// different seeds give disjoint streams even for nearby indices.
fn rep_rng(seed: u64, k: usize) -> SmallRng {
    let mut z = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    SmallRng::seed_from_u64(z ^ (z >> 31))
}

/// Structure function over component up/down states (`true` = up).
pub type StructureFn = Box<dyn Fn(&[bool]) -> bool + Sync>;

/// A repairable system simulator; see the crate docs for semantics.
pub struct SystemSimulator {
    ttf: Vec<Box<dyn Lifetime>>,
    ttr: Vec<Box<dyn Lifetime>>,
    works: StructureFn,
}

impl std::fmt::Debug for SystemSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSimulator")
            .field("components", &self.ttf.len())
            .finish()
    }
}

impl SystemSimulator {
    /// Creates a simulator with the given structure function.
    pub fn new<F>(works: F) -> Self
    where
        F: Fn(&[bool]) -> bool + Sync + 'static,
    {
        SystemSimulator {
            ttf: Vec::new(),
            ttr: Vec::new(),
            works: Box::new(works),
        }
    }

    /// Adds a component with its time-to-failure and time-to-repair
    /// distributions; returns its index as seen by the structure
    /// function.
    pub fn component(&mut self, ttf: Box<dyn Lifetime>, ttr: Box<dyn Lifetime>) -> usize {
        self.ttf.push(ttf);
        self.ttr.push(ttr);
        self.ttf.len() - 1
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.ttf.len()
    }

    fn check(&self) -> Result<()> {
        if self.ttf.is_empty() {
            return Err(Error::model("simulator has no components"));
        }
        Ok(())
    }

    /// One availability replication: fraction of `[0, horizon]` the
    /// system is up, all components starting up and being repaired
    /// independently forever.
    fn run_availability(&self, horizon: f64, rng: &mut SmallRng) -> f64 {
        let n = self.num_components();
        let mut up = vec![true; n];
        let mut next: Vec<f64> = (0..n).map(|i| self.ttf[i].sample(rng)).collect();
        let mut t = 0.0f64;
        let mut uptime = 0.0f64;
        let mut sys_up = (self.works)(&up);
        while t < horizon {
            // Next event.
            let (i, &te) = next
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("non-empty");
            let te = te.min(horizon);
            if sys_up {
                uptime += te - t;
            }
            t = te;
            if t >= horizon {
                break;
            }
            // Toggle component i and schedule its next event.
            up[i] = !up[i];
            next[i] = t + if up[i] {
                self.ttf[i].sample(rng)
            } else {
                self.ttr[i].sample(rng)
            };
            sys_up = (self.works)(&up);
        }
        uptime / horizon
    }

    /// One first-failure replication: time until the structure function
    /// first goes false (capped at `cap`, returning `(time, failed)`).
    fn run_first_failure(&self, cap: f64, rng: &mut SmallRng) -> (f64, bool) {
        let n = self.num_components();
        let mut up = vec![true; n];
        let mut next: Vec<f64> = (0..n).map(|i| self.ttf[i].sample(rng)).collect();
        let mut t;
        loop {
            let (i, &te) = next
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("non-empty");
            if te >= cap {
                return (cap, false);
            }
            t = te;
            up[i] = !up[i];
            next[i] = t + if up[i] {
                self.ttf[i].sample(rng)
            } else {
                self.ttr[i].sample(rng)
            };
            if !(self.works)(&up) {
                return (t, true);
            }
        }
    }

    /// Estimates long-run availability by `replications` independent
    /// runs over `horizon` each.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive horizon
    /// or fewer than 2 replications; [`Error::Model`] for an empty
    /// system.
    pub fn availability(&self, horizon: f64, replications: usize, seed: u64) -> Result<Estimate> {
        self.check()?;
        if !(horizon > 0.0 && horizon.is_finite()) {
            return Err(Error::invalid(format!(
                "horizon must be positive and finite, got {horizon}"
            )));
        }
        let reps: Vec<f64> = (0..replications)
            .map(|k| {
                let mut rng = rep_rng(seed, k);
                self.run_availability(horizon, &mut rng)
            })
            .collect();
        summarize(reps, 0.95)
    }

    /// Estimates mission reliability `R(t)`: probability the system
    /// survives to `mission_time` without a system-level failure
    /// (component repairs before system failure are included).
    ///
    /// # Errors
    ///
    /// As [`SystemSimulator::availability`].
    pub fn reliability(
        &self,
        mission_time: f64,
        replications: usize,
        seed: u64,
    ) -> Result<Estimate> {
        self.check()?;
        if !(mission_time > 0.0 && mission_time.is_finite()) {
            return Err(Error::invalid(format!(
                "mission time must be positive and finite, got {mission_time}"
            )));
        }
        let reps: Vec<f64> = (0..replications)
            .map(|k| {
                let mut rng = rep_rng(seed, k);
                let (_, failed) = self.run_first_failure(mission_time, &mut rng);
                if failed {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        summarize(reps, 0.95)
    }

    /// Estimates point availability `A(t) = P(system up at t)` on a
    /// grid of time points, sharing replications across the grid (one
    /// long trajectory per replication, sampled at each point).
    ///
    /// Returns one [`Estimate`] per entry of `times`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty or unsorted
    /// grid, non-finite times, or fewer than 2 replications.
    pub fn transient_availability(
        &self,
        times: &[f64],
        replications: usize,
        seed: u64,
    ) -> Result<Vec<Estimate>> {
        self.check()?;
        if times.is_empty() {
            return Err(Error::invalid("time grid is empty"));
        }
        let mut last = 0.0;
        for &t in times {
            if !(t.is_finite() && t >= last) {
                return Err(Error::invalid(format!(
                    "time grid must be non-negative, sorted, and finite; saw {t} after {last}"
                )));
            }
            last = t;
        }
        if replications < 2 {
            return Err(Error::invalid("need at least 2 replications"));
        }
        let horizon = *times.last().expect("non-empty grid");
        let n = self.num_components();
        // reps[g][k] = up indicator of replication k at grid point g.
        let mut reps = vec![Vec::with_capacity(replications); times.len()];
        for k in 0..replications {
            let mut rng = rep_rng(seed, k);
            let mut up = vec![true; n];
            let mut next: Vec<f64> = (0..n).map(|i| self.ttf[i].sample(&mut rng)).collect();
            let mut t;
            let mut grid_idx = 0usize;
            let mut sys_up = (self.works)(&up);
            loop {
                let (i, &te) = next
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .expect("non-empty");
                // Record every grid point passed before the next event.
                while grid_idx < times.len() && times[grid_idx] < te {
                    reps[grid_idx].push(if sys_up { 1.0 } else { 0.0 });
                    grid_idx += 1;
                }
                if grid_idx >= times.len() || te > horizon {
                    // Flush any remaining grid points (all at/after te).
                    while grid_idx < times.len() {
                        reps[grid_idx].push(if sys_up { 1.0 } else { 0.0 });
                        grid_idx += 1;
                    }
                    break;
                }
                t = te;
                up[i] = !up[i];
                next[i] = t + if up[i] {
                    self.ttf[i].sample(&mut rng)
                } else {
                    self.ttr[i].sample(&mut rng)
                };
                sys_up = (self.works)(&up);
            }
        }
        reps.into_iter().map(|r| summarize(r, 0.95)).collect()
    }

    /// Estimates MTTF: expected time to first system failure. Each
    /// replication runs until the system fails (guard: `time_cap`
    /// aborts pathological runs and triggers an error, since censoring
    /// would bias the estimate).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] if any replication hits `time_cap`
    /// before the system fails.
    pub fn mttf(&self, replications: usize, time_cap: f64, seed: u64) -> Result<Estimate> {
        self.check()?;
        if !(time_cap > 0.0 && time_cap.is_finite()) {
            return Err(Error::invalid(format!(
                "time cap must be positive and finite, got {time_cap}"
            )));
        }
        let mut reps = Vec::with_capacity(replications);
        for k in 0..replications {
            let mut rng = rep_rng(seed, k);
            let (t, failed) = self.run_first_failure(time_cap, &mut rng);
            if !failed {
                return Err(Error::numerical(format!(
                    "replication {k} did not fail within the time cap {time_cap}; \
                     raise the cap to avoid a censored (biased) MTTF"
                )));
            }
            reps.push(t);
        }
        summarize(reps, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Exponential, LogNormal, Weibull};

    fn exp(rate: f64) -> Box<dyn Lifetime> {
        Box::new(Exponential::new(rate).unwrap())
    }

    #[test]
    fn single_component_availability_matches_formula() {
        let (l, m) = (1.0, 4.0);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(l), exp(m));
        let est = sim.availability(5_000.0, 32, 7).unwrap();
        let exact = m / (l + m);
        assert!(
            est.interval.contains(exact),
            "[{}, {}] vs {exact}",
            est.interval.lower,
            est.interval.upper
        );
    }

    #[test]
    fn parallel_system_availability() {
        // Two independent components in parallel:
        // A = 1 - (1-a)^2 with a = mu/(l+mu).
        let (l, m) = (1.0, 3.0);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0] || s[1]);
        sim.component(exp(l), exp(m));
        sim.component(exp(l), exp(m));
        let est = sim.availability(5_000.0, 32, 11).unwrap();
        let a = m / (l + m);
        let exact = 1.0 - (1.0 - a) * (1.0 - a);
        assert!(est.interval.contains(exact));
    }

    #[test]
    fn series_reliability_without_repair_matches_exponential() {
        // Series of two exp components with no meaningful repair
        // (repair slower than mission): R(t) ~ e^{-(l1+l2)t}.
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0] && s[1]);
        sim.component(exp(0.5), exp(1e-9));
        sim.component(exp(0.25), exp(1e-9));
        let t = 1.0;
        let est = sim.reliability(t, 4000, 3).unwrap();
        let exact = (-0.75f64 * t).exp();
        assert!(
            (est.interval.point - exact).abs() < 0.03,
            "{} vs {exact}",
            est.interval.point
        );
    }

    #[test]
    fn mttf_single_exponential() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(2.0), exp(1.0));
        let est = sim.mttf(4000, 1e6, 5).unwrap();
        assert!((est.interval.point - 0.5).abs() < 0.05);
    }

    #[test]
    fn redundancy_with_repair_extends_mttf() {
        // 1-of-2 with fast repair lives much longer than a single unit.
        let mk = |n: usize| {
            let mut sim = SystemSimulator::new(move |s: &[bool]| s.iter().any(|&b| b));
            for _ in 0..n {
                sim.component(exp(1.0), exp(20.0));
            }
            sim
        };
        let single = mk(1).mttf(800, 1e7, 13).unwrap();
        let dual = mk(2).mttf(800, 1e7, 13).unwrap();
        assert!(dual.interval.point > 5.0 * single.interval.point);
    }

    #[test]
    fn non_exponential_distributions_supported() {
        // Weibull wear-out failures, lognormal repairs: availability
        // from renewal theory = E[ttf] / (E[ttf] + E[ttr]).
        let ttf = Weibull::new(2.0, 10.0).unwrap();
        let ttr = LogNormal::from_mean_cv2(1.0, 2.0).unwrap();
        let exact = ttf.mean() / (ttf.mean() + ttr.mean());
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(Box::new(ttf), Box::new(ttr));
        let est = sim.availability(20_000.0, 24, 23).unwrap();
        assert!(
            (est.interval.point - exact).abs() < 0.01,
            "{} vs {exact}",
            est.interval.point
        );
    }

    #[test]
    fn validation() {
        let sim = SystemSimulator::new(|s: &[bool]| s[0]);
        assert!(sim.availability(100.0, 8, 1).is_err()); // no components
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(1.0));
        assert!(sim.availability(0.0, 8, 1).is_err());
        assert!(sim.availability(100.0, 1, 1).is_err());
        assert!(sim.reliability(-1.0, 8, 1).is_err());
        assert!(sim.mttf(8, f64::INFINITY, 1).is_err());
    }

    #[test]
    fn transient_availability_matches_closed_form() {
        // Single component: A(t) = mu/(l+m) + l/(l+m) e^{-(l+m)t}.
        let (l, m) = (0.5f64, 1.5f64);
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(l), exp(m));
        let times = [0.5, 1.0, 2.0, 5.0, 20.0];
        let ests = sim.transient_availability(&times, 6000, 99).unwrap();
        for (t, est) in times.iter().zip(&ests) {
            let exact = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!(
                est.interval.contains(exact),
                "t = {t}: CI [{}, {}] vs exact {exact}",
                est.interval.lower,
                est.interval.upper
            );
        }
        // Early availability is higher than steady state.
        assert!(ests[0].interval.point > ests[4].interval.point);
    }

    #[test]
    fn transient_availability_validates_grid() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(1.0));
        assert!(sim.transient_availability(&[], 8, 1).is_err());
        assert!(sim.transient_availability(&[2.0, 1.0], 8, 1).is_err());
        assert!(sim.transient_availability(&[-1.0], 8, 1).is_err());
        assert!(sim.transient_availability(&[1.0], 1, 1).is_err());
    }

    #[test]
    fn mttf_cap_detects_censoring() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1e-6), exp(1.0)); // essentially never fails
        assert!(sim.mttf(4, 10.0, 1).is_err());
    }

    #[test]
    fn reproducible_given_seed() {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
        sim.component(exp(1.0), exp(2.0));
        let a = sim.availability(500.0, 8, 99).unwrap();
        let b = sim.availability(500.0, 8, 99).unwrap();
        assert_eq!(a.replications, b.replications);
    }
}
