//! The single-trajectory discrete-event kernel.
//!
//! A [`Trajectory`] advances one replication of a repairable system:
//! component `i` alternates between up (drawing its next failure from
//! `ttf[i]`) and down (drawing its repair from `ttr[i]`), events are
//! consumed from the calendar in `(time, component)` order, and the
//! structure function is re-evaluated after every toggle. All
//! randomness comes from per-component [`StreamRng`] streams keyed by
//! `(seed, replication, component)`, so the trajectory is a pure
//! function of those inputs — independent of worker count or
//! scheduling.

use crate::queue::EventQueue;
use crate::stream::StreamRng;
use crate::SystemSimulator;

/// One in-flight replication.
pub(crate) struct Trajectory<'a> {
    sim: &'a SystemSimulator,
    rngs: Vec<StreamRng>,
    queue: EventQueue,
    /// Per-component up/down state (`true` = up).
    pub up: Vec<bool>,
    /// Current simulation clock (time of the last consumed event).
    pub t: f64,
    /// Structure function value at the current state.
    pub sys_up: bool,
    /// Events consumed so far.
    pub events: u64,
}

impl<'a> Trajectory<'a> {
    /// Starts replication `rep` with every component up and one initial
    /// failure event per component.
    pub fn new(sim: &'a SystemSimulator, seed: u64, rep: u64) -> Self {
        let n = sim.num_components();
        let mut rngs: Vec<StreamRng> = (0..n)
            .map(|i| StreamRng::new(seed, rep, i as u64))
            .collect();
        let mut queue = EventQueue::with_capacity(n);
        for (i, rng) in rngs.iter_mut().enumerate() {
            queue.push(sim.ttf[i].sample(rng), i as u32);
        }
        let up = vec![true; n];
        let sys_up = (sim.works)(&up);
        Trajectory {
            sim,
            rngs,
            queue,
            up,
            t: 0.0,
            sys_up,
            events: 0,
        }
    }

    /// Time of the next pending event, or `None` when nothing is
    /// scheduled (every component is down without repair).
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Consumes the next event: advances the clock, toggles the
    /// component, schedules its successor event, and re-evaluates the
    /// structure function. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        let i = ev.comp as usize;
        self.t = ev.time;
        self.events += 1;
        self.up[i] = !self.up[i];
        if self.up[i] {
            let dt = self.sim.ttf[i].sample(&mut self.rngs[i]);
            self.queue.push(self.t + dt, ev.comp);
        } else if let Some(ttr) = &self.sim.ttr[i] {
            let dt = ttr.sample(&mut self.rngs[i]);
            self.queue.push(self.t + dt, ev.comp);
        }
        // No repair distribution: the component stays down forever.
        self.sys_up = (self.sim.works)(&self.up);
        true
    }
}

/// Uptime of one replication over `[0, horizon]`, split into
/// `batches` equal-length windows after discarding `[0, warmup)`.
/// Returns the per-batch availability means and the event count.
pub(crate) fn run_availability(
    sim: &SystemSimulator,
    seed: u64,
    rep: u64,
    horizon: f64,
    warmup: f64,
    batches: usize,
) -> (Vec<f64>, u64) {
    let mut traj = Trajectory::new(sim, seed, rep);
    let width = (horizon - warmup) / batches as f64;
    let mut acc = vec![0.0f64; batches];
    let mut t_prev = 0.0f64;
    loop {
        let te = traj.peek_time().unwrap_or(f64::INFINITY).min(horizon);
        if traj.sys_up && te > t_prev {
            add_up_interval(&mut acc, t_prev, te, warmup, width);
        }
        if te >= horizon {
            break;
        }
        traj.step();
        t_prev = te;
    }
    for a in &mut acc {
        *a /= width;
    }
    (acc, traj.events)
}

/// Adds the up-interval `[a, b)` to every batch window it overlaps.
/// Window `k` covers `[warmup + k·width, warmup + (k+1)·width)`.
fn add_up_interval(acc: &mut [f64], a: f64, b: f64, warmup: f64, width: f64) {
    let a = a.max(warmup);
    if b <= a {
        return;
    }
    let last = acc.len() - 1;
    let first = (((a - warmup) / width) as usize).min(last);
    for (k, slot) in acc.iter_mut().enumerate().skip(first) {
        let lo = warmup + k as f64 * width;
        let hi = lo + width;
        if lo >= b {
            break;
        }
        let overlap = b.min(hi) - a.max(lo);
        if overlap > 0.0 {
            *slot += overlap;
        }
    }
}

/// Runs one replication until the first system failure, capped at
/// `cap`. Returns `(time, failed, events)` where `failed` is whether
/// the structure function went false before the cap.
pub(crate) fn run_first_failure(
    sim: &SystemSimulator,
    seed: u64,
    rep: u64,
    cap: f64,
) -> (f64, bool, u64) {
    let mut traj = Trajectory::new(sim, seed, rep);
    loop {
        match traj.peek_time() {
            // Calendar drained with the system still up: nothing can
            // ever fail it, so the replication survives to the cap.
            None => return (cap, false, traj.events),
            Some(te) if te >= cap => return (cap, false, traj.events),
            Some(_) => {
                traj.step();
                if !traj.sys_up {
                    return (traj.t, true, traj.events);
                }
            }
        }
    }
}

/// Samples the system up/down indicator of one replication at each
/// point of a sorted time grid, pushing `1.0`/`0.0` per point into
/// `out` (one slot per grid point, in order). Returns the event count.
pub(crate) fn run_indicator_grid(
    sim: &SystemSimulator,
    seed: u64,
    rep: u64,
    times: &[f64],
    out: &mut [Vec<f64>],
) -> u64 {
    let mut traj = Trajectory::new(sim, seed, rep);
    let mut grid = 0usize;
    loop {
        let te = traj.peek_time().unwrap_or(f64::INFINITY);
        while grid < times.len() && times[grid] < te {
            out[grid].push(if traj.sys_up { 1.0 } else { 0.0 });
            grid += 1;
        }
        if grid >= times.len() {
            return traj.events;
        }
        traj.step();
    }
}
