//! The event calendar: a binary min-heap of pending component
//! transitions ordered by `(time, component)`.
//!
//! Each component has at most one pending event (its next failure or
//! repair completion), so the heap never holds more than one entry per
//! component. Ties in time — possible with deterministic lifetimes —
//! break on the component index, which keeps the event order, and
//! therefore the whole trajectory, fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled component transition.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Absolute simulation time of the transition.
    pub time: f64,
    /// Component toggling at `time`.
    pub comp: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.comp == other.comp
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that `BinaryHeap` (a max-heap) pops the earliest
        // event, breaking time ties on the smaller component index.
        // `total_cmp` keeps the order total even if a distribution
        // misbehaves and produces a NaN.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.comp.cmp(&self.comp))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue over component transitions.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// Creates an empty calendar with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Schedules an event.
    pub fn push(&mut self, time: f64, comp: u32) {
        self.heap.push(Event { time, comp });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(3.0, 0);
        q.push(1.0, 1);
        q.push(2.0, 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.comp).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_on_component_index() {
        let mut q = EventQueue::with_capacity(4);
        q.push(1.0, 5);
        q.push(1.0, 2);
        q.push(1.0, 9);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.comp).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::with_capacity(2);
        q.push(7.5, 0);
        q.push(2.5, 1);
        assert_eq!(q.peek_time(), Some(2.5));
        assert_eq!(q.pop().unwrap().comp, 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
