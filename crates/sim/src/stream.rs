//! Counter-based splittable random-number streams.
//!
//! The parallel replication driver needs one *independent* stream per
//! `(replication, component)` pair so that a trajectory draws exactly
//! the same variates no matter which worker thread runs it, in which
//! order, or how many workers exist. Sequential generators cannot give
//! that contract without pre-splitting state; a counter-based design
//! gives it for free: the k-th output of a stream is a pure function of
//! `(seed, replication, component, k)`.
//!
//! Construction: the stream key hashes `(seed, replication, stream)`
//! through the splitmix64 finalizer (a strong 64-bit mixer with good
//! avalanche behaviour), and each output re-mixes `key ^ mix(counter)`.
//! This is the same double-finalizer construction as `SplitMix64`
//! applied in counter mode, which passes practical equidistribution
//! checks far beyond what a stochastic simulation can resolve and —
//! unlike a jump-ahead scheme — costs nothing to split.

use rand::RngCore;

/// Odd constant `2^64 / φ`, the Weyl increment used by splitmix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output finalizer: bijective, full-avalanche 64-bit
/// mixing (Stafford's Mix13 variant).
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based splittable stream: the `k`-th output is
/// `mix64(key ^ mix64((k + 1) · GOLDEN))` with
/// `key = f(seed, replication, stream)`.
///
/// Streams for distinct `(seed, replication, stream)` triples are
/// statistically independent; outputs are bitwise-reproducible
/// regardless of thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRng {
    key: u64,
    counter: u64,
}

impl StreamRng {
    /// Creates the stream for `(seed, replication, stream)`. In the
    /// simulation kernel `stream` is the component index, so every
    /// component of every replication draws from its own sequence.
    #[must_use]
    pub fn new(seed: u64, replication: u64, stream: u64) -> Self {
        // Sponge the three coordinates through the finalizer with
        // distinct Weyl offsets so that (a, b, c) and permutations of
        // it land on unrelated keys.
        let mut key = mix64(seed ^ GOLDEN);
        key = mix64(key ^ replication.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        key = mix64(key ^ stream.wrapping_mul(0x1656_67B1_9E37_79F9));
        StreamRng { key, counter: 0 }
    }

    /// Number of 64-bit outputs drawn so far.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix64(self.key ^ mix64(self.counter.wrapping_mul(GOLDEN)))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_counter_based() {
        let mut a = StreamRng::new(42, 3, 7);
        let mut b = StreamRng::new(42, 3, 7);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.draws(), 16);
    }

    #[test]
    fn nearby_streams_are_decorrelated() {
        // Neighbouring (replication, stream) coordinates must not give
        // correlated output. Crude check: pairwise-distinct first
        // outputs and balanced bit counts across a block.
        let mut firsts = Vec::new();
        for rep in 0..16u64 {
            for comp in 0..16u64 {
                firsts.push(StreamRng::new(1, rep, comp).next_u64());
            }
        }
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "collision in first outputs");
        let ones: u32 = firsts.iter().map(|v| v.count_ones()).sum();
        let total = firsts.len() as f64 * 64.0;
        let frac = f64::from(ones) / total;
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }

    #[test]
    fn seed_changes_everything() {
        let a: Vec<u64> = {
            let mut r = StreamRng::new(1, 0, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StreamRng::new(2, 0, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = StreamRng::new(9, 1, 2);
        let mut b = StreamRng::new(9, 1, 2);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }
}
