//! The parallel replication driver: fans replications out over worker
//! threads, aggregates them in replication order, and stops when the
//! confidence interval is tight enough.
//!
//! ## Determinism contract
//!
//! The driver runs replications in fixed-size *rounds*. Within a
//! round, workers steal replication indices from a shared atomic
//! counter — classic work stealing — but every replication's result is
//! a pure function of `(seed, replication)` thanks to the counter-based
//! streams, and aggregation (estimate, CI, stopping decision) happens
//! only at round boundaries, over results sorted by replication index.
//! Both the set of replications run and the fold order are therefore
//! identical for any worker count: the output is bitwise-identical at
//! `jobs = 1, 2, 4, 8, …` — the same contract the SPN reachability
//! generator gives for state-space generation.
//!
//! ## Stopping rules
//!
//! After each round the driver computes the normal-theory CI for the
//! target measure and stops once its *relative half-width*
//! (half-width / |point|) drops to [`SimOptions::rel_precision`]
//! (having run at least [`SimOptions::min_replications`]), or when
//! [`SimOptions::max_replications`] is exhausted. Variance comes from
//! replication means for reliability/MTTF and from *batch means* for
//! steady-state availability: each trajectory discards a warmup prefix
//! and contributes one mean per post-warmup time window, which shrinks
//! the CI at the correct rate even though a single long trajectory is
//! serially correlated.

use reliab_core::{ConfidenceInterval, Error, Result};
use reliab_numeric::special::normal_quantile;
use reliab_obs as obs;

use crate::{kernel, SystemSimulator};

/// What a simulation run estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Steady-state availability: time-average up fraction over
    /// `[warmup, horizon]`, batch-means variance.
    Availability {
        /// Trajectory length per replication.
        horizon: f64,
    },
    /// Mission reliability `R(t)`: probability of no system failure in
    /// `[0, mission_time]` (component repairs before the first system
    /// failure are allowed).
    Reliability {
        /// Mission end time.
        mission_time: f64,
    },
    /// Mean time to first system failure. Replications that survive to
    /// `time_cap` abort the run with an error, since silently censoring
    /// them would bias the estimate low.
    Mttf {
        /// Abort guard for pathological (practically non-failing) runs.
        time_cap: f64,
    },
}

impl Measure {
    /// Short name used in telemetry and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Availability { .. } => "availability",
            Measure::Reliability { .. } => "reliability",
            Measure::Mttf { .. } => "mttf",
        }
    }
}

/// Tuning knobs for [`SystemSimulator::simulate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SimOptions {
    /// Master seed; every `(replication, component)` stream derives
    /// from it.
    pub seed: u64,
    /// Worker threads (`0` = all available cores). Never affects
    /// results, only wall time.
    pub jobs: usize,
    /// Confidence level of the reported interval.
    pub confidence: f64,
    /// Stop when half-width / |point| falls to this value (`0.0`
    /// disables adaptive stopping: exactly `max_replications` run).
    pub rel_precision: f64,
    /// Never stop before this many replications.
    pub min_replications: usize,
    /// Hard replication budget.
    pub max_replications: usize,
    /// Replications per round; the CI is checked only at round
    /// boundaries so the stopping decision is scheduling-independent.
    pub round_replications: usize,
    /// Fraction of the horizon discarded as warmup (availability only).
    pub warmup_fraction: f64,
    /// Batch windows per trajectory (availability only).
    pub batches: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0x5EED_0D5E,
            jobs: 1,
            confidence: 0.99,
            rel_precision: 0.005,
            min_replications: 64,
            max_replications: 16_384,
            round_replications: 64,
            warmup_fraction: 0.2,
            batches: 8,
        }
    }
}

impl SimOptions {
    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (`0` = all cores).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the relative-precision stopping target.
    #[must_use]
    pub fn with_rel_precision(mut self, rel_precision: f64) -> Self {
        self.rel_precision = rel_precision;
        self
    }

    /// Sets the replication budget.
    #[must_use]
    pub fn with_max_replications(mut self, max_replications: usize) -> Self {
        self.max_replications = max_replications;
        self
    }

    /// Sets the confidence level.
    #[must_use]
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(Error::invalid(format!(
                "confidence must be in (0, 1), got {}",
                self.confidence
            )));
        }
        if !(self.rel_precision >= 0.0 && self.rel_precision.is_finite()) {
            return Err(Error::invalid(format!(
                "rel_precision must be finite and non-negative, got {}",
                self.rel_precision
            )));
        }
        if self.min_replications < 2 {
            return Err(Error::invalid("min_replications must be at least 2"));
        }
        if self.max_replications < self.min_replications {
            return Err(Error::invalid(format!(
                "max_replications {} below min_replications {}",
                self.max_replications, self.min_replications
            )));
        }
        if self.round_replications == 0 {
            return Err(Error::invalid("round_replications must be positive"));
        }
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(Error::invalid(format!(
                "warmup_fraction must be in [0, 1), got {}",
                self.warmup_fraction
            )));
        }
        if self.batches == 0 {
            return Err(Error::invalid("batches must be positive"));
        }
        Ok(())
    }
}

/// One point on the CI-vs-replications trajectory, recorded at each
/// round boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiPoint {
    /// Replications completed when this point was taken.
    pub replications: usize,
    /// Absolute CI half-width at that moment.
    pub half_width: f64,
    /// Relative half-width (half-width / |point estimate|).
    pub rel_half_width: f64,
}

/// The result of an adaptive simulation run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SimReport {
    /// Point estimate with its normal-theory confidence interval.
    pub interval: ConfidenceInterval,
    /// Final relative half-width.
    pub rel_half_width: f64,
    /// Replications actually run.
    pub replications: usize,
    /// Aggregated observations (replications × batches for
    /// availability, = replications otherwise).
    pub observations: usize,
    /// Total simulation events consumed across all replications.
    pub events: u64,
    /// Rounds executed (= CI trajectory length).
    pub rounds: usize,
    /// Whether the `rel_precision` target was met (always `true` when
    /// adaptive stopping is disabled).
    pub converged: bool,
    /// Worker threads used (does not affect any other field).
    pub workers: usize,
    /// CI half-width after each round, for convergence diagnostics.
    pub trajectory: Vec<CiPoint>,
}

/// Per-replication raw output: the observation values it contributes
/// (batch means or a single value) plus its event count.
struct RepOut {
    values: Vec<f64>,
    events: u64,
}

fn run_one(sim: &SystemSimulator, measure: Measure, opts: &SimOptions, k: usize) -> Result<RepOut> {
    let rep = k as u64;
    match measure {
        Measure::Availability { horizon } => {
            let warmup = horizon * opts.warmup_fraction;
            let (values, events) =
                kernel::run_availability(sim, opts.seed, rep, horizon, warmup, opts.batches);
            Ok(RepOut { values, events })
        }
        Measure::Reliability { mission_time } => {
            let (_, failed, events) = kernel::run_first_failure(sim, opts.seed, rep, mission_time);
            Ok(RepOut {
                values: vec![if failed { 0.0 } else { 1.0 }],
                events,
            })
        }
        Measure::Mttf { time_cap } => {
            let (t, failed, events) = kernel::run_first_failure(sim, opts.seed, rep, time_cap);
            if !failed {
                return Err(Error::numerical(format!(
                    "replication {k} did not fail within the time cap {time_cap}; \
                     raise the cap to avoid a censored (biased) MTTF"
                )));
            }
            Ok(RepOut {
                values: vec![t],
                events,
            })
        }
    }
}

/// Runs replications `start..end`, work-stealing across `workers`
/// threads, returning results ordered by replication index. Errors are
/// reported for the *lowest* failing replication index so the error
/// too is scheduling-independent.
fn run_round(
    sim: &SystemSimulator,
    measure: Measure,
    opts: &SimOptions,
    start: usize,
    end: usize,
    workers: usize,
) -> Result<Vec<RepOut>> {
    let mut indexed: Vec<(usize, Result<RepOut>)> = if workers <= 1 || end - start <= 1 {
        (start..end)
            .map(|k| (k, run_one(sim, measure, opts, k)))
            .collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(start);
        let threads = workers.min(end - start);
        let trace = obs::current_trace_id();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let _trace = obs::set_trace_id(trace);
                        let mut local = Vec::new();
                        loop {
                            let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if k >= end {
                                break;
                            }
                            local.push((k, run_one(sim, measure, opts, k)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sim worker panicked"))
                .collect()
        })
    };
    indexed.sort_by_key(|(k, _)| *k);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Mean, CI half-width, and relative half-width of `values` at the
/// given confidence level.
fn estimate(values: &[f64], confidence: f64) -> Result<(f64, f64, f64)> {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return Ok((mean, f64::INFINITY, f64::INFINITY));
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0)
        .map_err(|e| Error::numerical(e.to_string()))?;
    let half = z * (var.max(0.0) / n).sqrt();
    let rel = if half == 0.0 {
        0.0
    } else if mean == 0.0 {
        f64::INFINITY
    } else {
        half / mean.abs()
    };
    Ok((mean, half, rel))
}

fn validate_measure(measure: Measure) -> Result<()> {
    let (name, t) = match measure {
        Measure::Availability { horizon } => ("horizon", horizon),
        Measure::Reliability { mission_time } => ("mission time", mission_time),
        Measure::Mttf { time_cap } => ("time cap", time_cap),
    };
    if !(t > 0.0 && t.is_finite()) {
        return Err(Error::invalid(format!(
            "{name} must be positive and finite, got {t}"
        )));
    }
    Ok(())
}

pub(crate) fn simulate(
    sim: &SystemSimulator,
    measure: Measure,
    opts: &SimOptions,
) -> Result<SimReport> {
    sim.check()?;
    validate_measure(measure)?;
    opts.validate()?;
    let _span = obs::span("sim.run");
    let workers = match opts.jobs {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    };
    obs::event(
        "sim.start",
        &[
            ("measure", measure.name().into()),
            ("components", sim.num_components().into()),
            ("seed", opts.seed.into()),
            ("workers", workers.into()),
            ("max_replications", opts.max_replications.into()),
        ],
    );

    let mut values: Vec<f64> = Vec::new();
    let mut events: u64 = 0;
    let mut done = 0usize;
    let mut trajectory = Vec::new();
    let mut converged = false;
    let mut point = (0.0f64, 0.0f64, f64::INFINITY);
    while done < opts.max_replications {
        let end = (done + opts.round_replications).min(opts.max_replications);
        for out in run_round(sim, measure, opts, done, end, workers)? {
            values.extend_from_slice(&out.values);
            events += out.events;
        }
        done = end;
        point = estimate(&values, opts.confidence)?;
        let (_, half, rel) = point;
        trajectory.push(CiPoint {
            replications: done,
            half_width: half,
            rel_half_width: rel,
        });
        obs::event(
            "sim.round",
            &[
                ("round", trajectory.len().into()),
                ("replications", done.into()),
                ("half_width", half.into()),
                ("rel_half_width", rel.into()),
            ],
        );
        if done >= opts.min_replications && opts.rel_precision > 0.0 && rel <= opts.rel_precision {
            converged = true;
            break;
        }
    }
    if opts.rel_precision == 0.0 {
        // No adaptive target: the requested budget *is* the plan.
        converged = true;
    }

    obs::counter_add("sim.replications", done as u64);
    obs::counter_add("sim.events", events);
    obs::gauge_set("sim.rel_half_width", point.2);

    let (mean, half, rel) = point;
    Ok(SimReport {
        interval: ConfidenceInterval::new(mean, mean - half, mean + half, opts.confidence)?,
        rel_half_width: rel,
        replications: done,
        observations: values.len(),
        events,
        rounds: trajectory.len(),
        converged,
        workers,
        trajectory,
    })
}
