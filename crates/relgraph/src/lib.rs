//! # reliab-relgraph
//!
//! Reliability graphs (s-t connectivity networks): nodes are perfect,
//! edges are failure-prone components, and the system is up while at
//! least one source→sink path of working edges exists. This is the
//! third non-state-space formalism of the tutorial and the model class
//! behind the Boeing 787 current-return-network case study.
//!
//! Analyses:
//!
//! * exact two-terminal reliability by BDD over edge variables
//!   (minimal paths → OR of ANDs, compiled into a shared BDD, so
//!   overlapping paths are handled exactly),
//! * exact reliability by recursive edge factoring (pivotal
//!   decomposition) for cross-validation and ablation,
//! * all-terminal and general k-terminal reliability (factoring with
//!   connectivity short-circuits),
//! * minimal path sets (DFS simple-path enumeration),
//! * minimal cut sets (Berge dualization of the path hypergraph),
//! * MTTF under edge lifetime distributions.
//!
//! ```
//! use reliab_relgraph::RelGraphBuilder;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // Two parallel links from source to sink.
//! let mut b = RelGraphBuilder::new();
//! let s = b.node("s");
//! let t = b.node("t");
//! b.edge(s, t, "link-a");
//! b.edge(s, t, "link-b");
//! let g = b.build(s, t)?;
//! let r = g.reliability(&[0.9, 0.9])?;
//! assert!((r - 0.99).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod graph;

pub use graph::{EdgeId, NodeIdx, RelGraph, RelGraphBuilder};

use reliab_core::Error;

/// Converts a BDD-layer error into the workspace error type.
pub(crate) fn bdd_err(e: reliab_bdd::BddError) -> Error {
    Error::model(e.to_string())
}
