//! Reliability-graph structure and solvers.

use crate::bdd_err;
use reliab_bdd::{Bdd, NodeId as BddNode};
use reliab_core::{ensure_probability, Error, Result};
use reliab_dist::Lifetime;
use reliab_numeric::quadrature::integrate_to_infinity;
use std::collections::BTreeSet;

/// Handle to a graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(usize);

/// Handle to a graph edge (a failure-prone component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Index into probability/lifetime vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    u: usize,
    v: usize,
    directed: bool,
}

/// Builder for [`RelGraph`].
#[derive(Debug, Default)]
pub struct RelGraphBuilder {
    node_names: Vec<String>,
    edge_names: Vec<String>,
    edges: Vec<Edge>,
}

impl RelGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RelGraphBuilder::default()
    }

    /// Adds a node.
    pub fn node(&mut self, name: &str) -> NodeIdx {
        self.node_names.push(name.to_owned());
        NodeIdx(self.node_names.len() - 1)
    }

    /// Adds an undirected edge (usable in both directions).
    pub fn edge(&mut self, u: NodeIdx, v: NodeIdx, name: &str) -> EdgeId {
        self.edge_names.push(name.to_owned());
        self.edges.push(Edge {
            u: u.0,
            v: v.0,
            directed: false,
        });
        EdgeId(self.edge_names.len() - 1)
    }

    /// Adds a directed edge `u → v`.
    pub fn arc(&mut self, u: NodeIdx, v: NodeIdx, name: &str) -> EdgeId {
        self.edge_names.push(name.to_owned());
        self.edges.push(Edge {
            u: u.0,
            v: v.0,
            directed: true,
        });
        EdgeId(self.edge_names.len() - 1)
    }

    /// Finalizes the graph with the given terminals.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if the graph has no edges, terminals
    /// coincide, or no source→sink path exists at all.
    pub fn build(self, source: NodeIdx, sink: NodeIdx) -> Result<RelGraph> {
        if self.edges.is_empty() {
            return Err(Error::model("reliability graph has no edges"));
        }
        if source == sink {
            return Err(Error::model("source and sink must differ"));
        }
        if source.0 >= self.node_names.len() || sink.0 >= self.node_names.len() {
            return Err(Error::model("terminal node handle out of range"));
        }
        let g = RelGraph {
            node_names: self.node_names,
            edge_names: self.edge_names,
            edges: self.edges,
            source: source.0,
            sink: sink.0,
        };
        let paths = g.minimal_path_sets();
        if paths.is_empty() {
            return Err(Error::model(
                "sink is unreachable from source even with all edges up",
            ));
        }
        Ok(g)
    }
}

/// A compiled reliability graph; see [`RelGraphBuilder`].
#[derive(Debug, Clone)]
pub struct RelGraph {
    node_names: Vec<String>,
    edge_names: Vec<String>,
    edges: Vec<Edge>,
    source: usize,
    sink: usize,
}

impl RelGraph {
    /// Number of edges (components).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Edge name by handle.
    pub fn edge_name(&self, e: EdgeId) -> &str {
        &self.edge_names[e.0]
    }

    /// Enumerates all minimal s-t path sets (as sorted edge-id lists).
    ///
    /// Uses DFS over simple node paths; a path's edge set is minimal
    /// unless a strict subset is also a path, which is subsequently
    /// filtered (parallel-edge corner cases).
    pub fn minimal_path_sets(&self) -> Vec<Vec<EdgeId>> {
        // adjacency: node -> (neighbor, edge index)
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.node_names.len()];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.u].push((e.v, i));
            if !e.directed {
                adj[e.v].push((e.u, i));
            }
        }
        let mut found: Vec<BTreeSet<usize>> = Vec::new();
        let mut visited = vec![false; self.node_names.len()];
        let mut path_edges: Vec<usize> = Vec::new();
        self.dfs_paths(self.source, &adj, &mut visited, &mut path_edges, &mut found);
        // Minimize (subset filtering).
        found.sort_by_key(|s| s.len());
        found.dedup();
        let mut kept: Vec<BTreeSet<usize>> = Vec::new();
        'outer: for s in found {
            for k in &kept {
                if k.is_subset(&s) {
                    continue 'outer;
                }
            }
            kept.push(s);
        }
        kept.into_iter()
            .map(|s| s.into_iter().map(EdgeId).collect())
            .collect()
    }

    fn dfs_paths(
        &self,
        at: usize,
        adj: &[Vec<(usize, usize)>],
        visited: &mut [bool],
        path_edges: &mut Vec<usize>,
        found: &mut Vec<BTreeSet<usize>>,
    ) {
        if at == self.sink {
            found.push(path_edges.iter().copied().collect());
            return;
        }
        visited[at] = true;
        for &(next, eidx) in &adj[at] {
            if visited[next] {
                continue;
            }
            path_edges.push(eidx);
            self.dfs_paths(next, adj, visited, path_edges, found);
            path_edges.pop();
        }
        visited[at] = false;
    }

    /// Minimal cut sets, computed as the minimal transversals (Berge
    /// dualization) of the minimal path hypergraph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if intermediate transversal counts
    /// exceed `max_sets`.
    pub fn minimal_cut_sets(&self, max_sets: usize) -> Result<Vec<Vec<EdgeId>>> {
        let paths = self.minimal_path_sets();
        let mut transversals: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
        for p in &paths {
            let pset: BTreeSet<usize> = p.iter().map(|e| e.0).collect();
            let mut next: Vec<BTreeSet<usize>> = Vec::new();
            for t in &transversals {
                if t.intersection(&pset).next().is_some() {
                    next.push(t.clone());
                } else {
                    for &e in &pset {
                        let mut t2 = t.clone();
                        t2.insert(e);
                        next.push(t2);
                    }
                }
            }
            // Minimize.
            next.sort_by_key(|s| s.len());
            next.dedup();
            let mut kept: Vec<BTreeSet<usize>> = Vec::new();
            'outer: for s in next {
                for k in &kept {
                    if k.is_subset(&s) {
                        continue 'outer;
                    }
                }
                kept.push(s);
            }
            if kept.len() > max_sets {
                return Err(Error::model(format!(
                    "cut-set dualization exceeded {max_sets} sets"
                )));
            }
            transversals = kept;
        }
        Ok(transversals
            .into_iter()
            .map(|s| s.into_iter().map(EdgeId).collect())
            .collect())
    }

    /// Exact s-t reliability given per-edge up-probabilities, via a BDD
    /// over the minimal path sets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on bad probability vectors.
    pub fn reliability(&self, edge_up: &[f64]) -> Result<f64> {
        Ok(self.reliability_with_stats(edge_up)?.0)
    }

    /// [`RelGraph::reliability`] plus the statistics of the BDD manager
    /// used for the computation (the manager is per-call here, so the
    /// counters describe exactly this evaluation).
    ///
    /// # Errors
    ///
    /// See [`RelGraph::reliability`].
    pub fn reliability_with_stats(&self, edge_up: &[f64]) -> Result<(f64, reliab_bdd::BddStats)> {
        self.check_probs(edge_up)?;
        let mut bdd = Bdd::new(self.edges.len() as u32);
        let works = self.works_bdd(&mut bdd)?;
        let p = bdd.probability(works, edge_up).map_err(bdd_err)?;
        Ok((p, bdd.stats()))
    }

    /// Compiles the works-function BDD (OR over path-set ANDs).
    pub(crate) fn works_bdd(&self, bdd: &mut Bdd) -> Result<BddNode> {
        let paths = self.minimal_path_sets();
        let mut acc = BddNode::FALSE;
        for p in &paths {
            let mut conj = BddNode::TRUE;
            for e in p {
                let v = bdd.var(e.0 as u32).map_err(bdd_err)?;
                conj = bdd.and(conj, v);
            }
            acc = bdd.or(acc, conj);
        }
        Ok(acc)
    }

    /// Exact s-t reliability by recursive edge factoring (pivotal
    /// decomposition): `R = p_e · R(G | e up) + (1-p_e) · R(G | e down)`
    /// with connectivity short-circuits. Exponential worst case; used to
    /// cross-validate the BDD path and in ordering ablations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on bad probability vectors.
    pub fn factoring_reliability(&self, edge_up: &[f64]) -> Result<f64> {
        self.check_probs(edge_up)?;
        // State per edge: None = undecided, Some(true/false) = forced.
        let mut state: Vec<Option<bool>> = vec![None; self.edges.len()];
        Ok(self.factor_rec(&mut state, edge_up))
    }

    fn connected(&self, state: &[Option<bool>], optimistic: bool) -> bool {
        // optimistic: undecided edges count as up; pessimistic: as down.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.node_names.len()];
        for (i, e) in self.edges.iter().enumerate() {
            let up = match state[i] {
                Some(b) => b,
                None => optimistic,
            };
            if up {
                adj[e.u].push(e.v);
                if !e.directed {
                    adj[e.v].push(e.u);
                }
            }
        }
        let mut seen = vec![false; self.node_names.len()];
        let mut stack = vec![self.source];
        seen[self.source] = true;
        while let Some(n) = stack.pop() {
            if n == self.sink {
                return true;
            }
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        false
    }

    fn factor_rec(&self, state: &mut Vec<Option<bool>>, p: &[f64]) -> f64 {
        if self.connected(state, false) {
            return 1.0; // already connected with forced-up edges only
        }
        if !self.connected(state, true) {
            return 0.0; // cannot connect even with every undecided edge up
        }
        let pivot = state
            .iter()
            .position(|s| s.is_none())
            .expect("some edge undecided, else one branch above fired");
        state[pivot] = Some(true);
        let up = self.factor_rec(state, p);
        state[pivot] = Some(false);
        let down = self.factor_rec(state, p);
        state[pivot] = None;
        p[pivot] * up + (1.0 - p[pivot]) * down
    }

    /// All-terminal reliability: the probability that *every* node can
    /// reach every other over working edges (network-wide
    /// connectivity, the measure used for backbone meshes).
    ///
    /// Computed by pivotal decomposition with connectivity
    /// short-circuits, like [`RelGraph::factoring_reliability`] but
    /// testing spanning connectivity instead of s-t connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] if the graph contains directed
    /// arcs (all-terminal reliability is defined here for undirected
    /// networks) and [`Error::InvalidParameter`] on bad probabilities.
    pub fn all_terminal_reliability(&self, edge_up: &[f64]) -> Result<f64> {
        self.check_probs(edge_up)?;
        if self.edges.iter().any(|e| e.directed) {
            return Err(Error::Unsupported(
                "all-terminal reliability requires an undirected graph".into(),
            ));
        }
        let mut state: Vec<Option<bool>> = vec![None; self.edges.len()];
        Ok(self.factor_all_rec(&mut state, edge_up))
    }

    /// k-terminal reliability: the probability that every node in
    /// `terminals` lies in one connected component of working edges —
    /// the general SHARPE measure of which two-terminal (`{s, t}`) and
    /// all-terminal (every node) are the special cases.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for directed graphs,
    /// [`Error::InvalidParameter`] for an empty/duplicate terminal set
    /// or bad probabilities.
    pub fn k_terminal_reliability(&self, terminals: &[NodeIdx], edge_up: &[f64]) -> Result<f64> {
        self.check_probs(edge_up)?;
        if self.edges.iter().any(|e| e.directed) {
            return Err(Error::Unsupported(
                "k-terminal reliability requires an undirected graph".into(),
            ));
        }
        if terminals.is_empty() {
            return Err(Error::invalid("terminal set is empty"));
        }
        let mut set = vec![false; self.node_names.len()];
        for t in terminals {
            if t.0 >= self.node_names.len() {
                return Err(Error::invalid("terminal node handle out of range"));
            }
            if set[t.0] {
                return Err(Error::invalid("duplicate terminal node"));
            }
            set[t.0] = true;
        }
        if terminals.len() == 1 {
            return Ok(1.0); // one node is always connected to itself
        }
        let mut state: Vec<Option<bool>> = vec![None; self.edges.len()];
        Ok(self.factor_terminals_rec(&mut state, edge_up, &set, terminals[0].0))
    }

    /// Whether the graph restricted per `state` connects every marked
    /// terminal to `root` (undirected reachability).
    fn terminals_connected(
        &self,
        state: &[Option<bool>],
        optimistic: bool,
        terminal: &[bool],
        root: usize,
    ) -> bool {
        let n = self.node_names.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            let up = state[i].unwrap_or(optimistic);
            if up {
                adj[e.u].push(e.v);
                adj[e.v].push(e.u);
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        let mut remaining = terminal.iter().filter(|&&t| t).count() - 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    if terminal[w] {
                        remaining -= 1;
                        if remaining == 0 {
                            return true;
                        }
                    }
                    stack.push(w);
                }
            }
        }
        remaining == 0
    }

    fn factor_terminals_rec(
        &self,
        state: &mut Vec<Option<bool>>,
        p: &[f64],
        terminal: &[bool],
        root: usize,
    ) -> f64 {
        if self.terminals_connected(state, false, terminal, root) {
            return 1.0;
        }
        if !self.terminals_connected(state, true, terminal, root) {
            return 0.0;
        }
        let pivot = state
            .iter()
            .position(|s| s.is_none())
            .expect("undecided edge exists when neither bound fires");
        state[pivot] = Some(true);
        let up = self.factor_terminals_rec(state, p, terminal, root);
        state[pivot] = Some(false);
        let down = self.factor_terminals_rec(state, p, terminal, root);
        state[pivot] = None;
        p[pivot] * up + (1.0 - p[pivot]) * down
    }

    /// Whether the graph restricted per `state` connects all nodes.
    fn spanning_connected(&self, state: &[Option<bool>], optimistic: bool) -> bool {
        let all = vec![true; self.node_names.len()];
        self.terminals_connected(state, optimistic, &all, 0)
    }

    fn factor_all_rec(&self, state: &mut Vec<Option<bool>>, p: &[f64]) -> f64 {
        if self.spanning_connected(state, false) {
            return 1.0;
        }
        if !self.spanning_connected(state, true) {
            return 0.0;
        }
        let pivot = state
            .iter()
            .position(|s| s.is_none())
            .expect("undecided edge exists when neither bound fires");
        state[pivot] = Some(true);
        let up = self.factor_all_rec(state, p);
        state[pivot] = Some(false);
        let down = self.factor_all_rec(state, p);
        state[pivot] = None;
        p[pivot] * up + (1.0 - p[pivot]) * down
    }

    /// System MTTF under per-edge lifetime distributions.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and quadrature errors.
    pub fn mttf(&self, lifetimes: &[&dyn Lifetime]) -> Result<f64> {
        if lifetimes.len() != self.edges.len() {
            return Err(Error::invalid(format!(
                "{} lifetimes supplied for {} edges",
                lifetimes.len(),
                self.edges.len()
            )));
        }
        let mut bdd = Bdd::new(self.edges.len() as u32);
        let works = self.works_bdd(&mut bdd)?;
        let scale = lifetimes
            .iter()
            .map(|d| d.mean())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        integrate_to_infinity(
            |t| {
                let probs: std::result::Result<Vec<f64>, _> =
                    lifetimes.iter().map(|d| d.survival(t)).collect();
                match probs {
                    Ok(p) => bdd.probability(works, &p).unwrap_or(f64::NAN),
                    Err(_) => f64::NAN,
                }
            },
            scale,
            1e-10,
            80,
        )
        .map_err(|e| Error::numerical(e.to_string()))
    }

    fn check_probs(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.edges.len() {
            return Err(Error::invalid(format!(
                "{} probabilities supplied for {} edges",
                p.len(),
                self.edges.len()
            )));
        }
        for (i, &v) in p.iter().enumerate() {
            ensure_probability(v, &format!("reliability of edge '{}'", self.edge_names[i]))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic 5-edge bridge network.
    fn bridge() -> (RelGraph, Vec<EdgeId>) {
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let a = b.node("a");
        let c = b.node("c");
        let t = b.node("t");
        let e1 = b.edge(s, a, "e1");
        let e2 = b.edge(s, c, "e2");
        let e3 = b.edge(a, c, "bridge");
        let e4 = b.edge(a, t, "e4");
        let e5 = b.edge(c, t, "e5");
        (b.build(s, t).unwrap(), vec![e1, e2, e3, e4, e5])
    }

    /// Exact bridge reliability for all edges with probability p:
    /// R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
    fn bridge_closed_form(p: f64) -> f64 {
        2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5)
    }

    #[test]
    fn series_and_parallel() {
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let m = b.node("m");
        let t = b.node("t");
        b.edge(s, m, "e1");
        b.edge(m, t, "e2");
        let g = b.build(s, t).unwrap();
        assert!((g.reliability(&[0.9, 0.8]).unwrap() - 0.72).abs() < 1e-15);

        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        b.edge(s, t, "e1");
        b.edge(s, t, "e2");
        let g = b.build(s, t).unwrap();
        assert!((g.reliability(&[0.9, 0.8]).unwrap() - 0.98).abs() < 1e-15);
    }

    #[test]
    fn bridge_network_closed_form() {
        let (g, _) = bridge();
        for &p in &[0.5, 0.9, 0.99] {
            let r = g.reliability(&[p; 5]).unwrap();
            assert!(
                (r - bridge_closed_form(p)).abs() < 1e-12,
                "p = {p}: {r} vs {}",
                bridge_closed_form(p)
            );
        }
    }

    #[test]
    fn factoring_agrees_with_bdd() {
        let (g, _) = bridge();
        let probs = [0.95, 0.9, 0.85, 0.8, 0.75];
        let r_bdd = g.reliability(&probs).unwrap();
        let r_fac = g.factoring_reliability(&probs).unwrap();
        assert!((r_bdd - r_fac).abs() < 1e-12);
    }

    #[test]
    fn bridge_path_and_cut_sets() {
        let (g, e) = bridge();
        let paths = g.minimal_path_sets();
        // {e1,e4}, {e2,e5}, {e1,e3,e5}, {e2,e3,e4}
        assert_eq!(paths.len(), 4);
        assert!(paths.contains(&vec![e[0], e[3]]));
        assert!(paths.contains(&vec![e[1], e[4]]));
        let cuts = g.minimal_cut_sets(10_000).unwrap();
        // {e1,e2}, {e4,e5}, {e1,e3,e5}, {e2,e3,e4}
        assert_eq!(cuts.len(), 4);
        assert!(cuts.contains(&vec![e[0], e[1]]));
        assert!(cuts.contains(&vec![e[3], e[4]]));
    }

    #[test]
    fn directed_arcs_respected() {
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let m = b.node("m");
        let t = b.node("t");
        b.arc(t, m, "backwards-1");
        b.arc(m, s, "backwards-2");
        // Only backwards arcs: no s->t path; build must fail.
        assert!(b.build(s, t).is_err());

        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let m = b.node("m");
        let t = b.node("t");
        b.arc(s, m, "f1");
        b.arc(m, t, "f2");
        b.arc(t, s, "loop-back");
        let g = b.build(s, t).unwrap();
        // The loop-back arc is irrelevant to s->t connectivity.
        let r = g.reliability(&[0.9, 0.9, 0.1]).unwrap();
        assert!((r - 0.81).abs() < 1e-12);
    }

    #[test]
    fn build_validation() {
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        assert!(b.build(s, t).is_err()); // no edges

        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        b.node("t");
        let q = b.edge(s, s, "self");
        let _ = q;
        assert!(b.build(s, s).is_err()); // source == sink
    }

    #[test]
    fn probability_validation() {
        let (g, _) = bridge();
        assert!(g.reliability(&[0.9; 4]).is_err());
        assert!(g.reliability(&[0.9, 0.9, 0.9, 0.9, 1.5]).is_err());
    }

    #[test]
    fn mttf_two_parallel_links() {
        use reliab_dist::Exponential;
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        b.edge(s, t, "a");
        b.edge(s, t, "b");
        let g = b.build(s, t).unwrap();
        let d = Exponential::new(1.0).unwrap();
        let mttf = g.mttf(&[&d, &d]).unwrap();
        assert!((mttf - 1.5).abs() < 1e-7);
    }

    #[test]
    fn all_terminal_triangle_closed_form() {
        // Triangle: connected iff at least 2 of the 3 edges work.
        // R_all = 3p²(1-p) + p³.
        let mut b = RelGraphBuilder::new();
        let n0 = b.node("0");
        let n1 = b.node("1");
        let n2 = b.node("2");
        b.edge(n0, n1, "a");
        b.edge(n1, n2, "b");
        b.edge(n2, n0, "c");
        let g = b.build(n0, n2).unwrap();
        for &p in &[0.5, 0.9, 0.99] {
            let r = g.all_terminal_reliability(&[p; 3]).unwrap();
            let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
            assert!((r - expected).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn all_terminal_never_exceeds_two_terminal() {
        let (g, _) = bridge();
        let probs = [0.9, 0.85, 0.8, 0.75, 0.7];
        let two = g.reliability(&probs).unwrap();
        let all = g.all_terminal_reliability(&probs).unwrap();
        assert!(all <= two + 1e-12);
        assert!(all > 0.0);
    }

    #[test]
    fn all_terminal_series_line() {
        // A path graph is all-connected iff every edge works.
        let mut b = RelGraphBuilder::new();
        let nodes: Vec<_> = (0..4).map(|i| b.node(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            b.edge(w[0], w[1], "e");
        }
        let g = b.build(nodes[0], nodes[3]).unwrap();
        let r = g.all_terminal_reliability(&[0.9, 0.8, 0.7]).unwrap();
        assert!((r - 0.9 * 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn k_terminal_interpolates_between_two_and_all() {
        let (g, _) = bridge();
        let probs = [0.9, 0.85, 0.8, 0.75, 0.7];
        // Node handles in bridge(): s=0, a=1, c=2, t=3.
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let a = b.node("a");
        let c = b.node("c");
        let t = b.node("t");
        let _ = (a, c);
        let two = g.reliability(&probs).unwrap();
        let k_two = g.k_terminal_reliability(&[s, t], &probs).unwrap();
        assert!(
            (two - k_two).abs() < 1e-12,
            "{{s,t}}-terminal == two-terminal"
        );
        let all = g.all_terminal_reliability(&probs).unwrap();
        let k_all = g.k_terminal_reliability(&[s, a, c, t], &probs).unwrap();
        assert!((all - k_all).abs() < 1e-12);
        // A 3-terminal measure sits between the two.
        let k3 = g.k_terminal_reliability(&[s, a, t], &probs).unwrap();
        assert!(
            all - 1e-12 <= k3 && k3 <= two + 1e-12,
            "{all} <= {k3} <= {two}"
        );
    }

    #[test]
    fn k_terminal_validation() {
        let (g, _) = bridge();
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let probs = [0.9; 5];
        assert!(g.k_terminal_reliability(&[], &probs).is_err());
        assert!(g.k_terminal_reliability(&[s, s], &probs).is_err());
        assert_eq!(g.k_terminal_reliability(&[s], &probs).unwrap(), 1.0);
    }

    #[test]
    fn factoring_measures_match_brute_force_enumeration() {
        // Exhaustive 2^|E| check on the bridge network for all three
        // measures.
        let (g, _) = bridge();
        let probs = [0.9, 0.6, 0.5, 0.7, 0.8];
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let a = b.node("a");
        let c = b.node("c");
        let t = b.node("t");
        // Brute force: recompute each measure by enumerating all edge
        // subsets, using the factoring code with fully forced states as
        // the connectivity oracle (states forced = no recursion).
        let brute = |terminals: &[NodeIdx]| -> f64 {
            let mut total = 0.0;
            for mask in 0..(1u32 << 5) {
                let mut prob = 1.0;
                let mut state: Vec<Option<bool>> = Vec::with_capacity(5);
                for (i, &p) in probs.iter().enumerate() {
                    let up = mask & (1 << i) != 0;
                    prob *= if up { p } else { 1.0 - p };
                    state.push(Some(up));
                }
                // connectivity via the public measure on forced states:
                // reuse k_terminal's oracle through a 1-probability call.
                let forced: Vec<f64> = state
                    .iter()
                    .map(|s| if s.unwrap() { 1.0 } else { 0.0 })
                    .collect();
                let connected = g.k_terminal_reliability(terminals, &forced).unwrap();
                total += prob * connected;
            }
            total
        };
        let st = [s, t];
        assert!((g.reliability(&probs).unwrap() - brute(&st)).abs() < 1e-12);
        let all = [s, a, c, t];
        assert!((g.all_terminal_reliability(&probs).unwrap() - brute(&all)).abs() < 1e-12);
        let three = [s, c, t];
        assert!((g.k_terminal_reliability(&three, &probs).unwrap() - brute(&three)).abs() < 1e-12);
    }

    #[test]
    fn all_terminal_rejects_directed_arcs() {
        let mut b = RelGraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        b.arc(s, t, "one-way");
        let g = b.build(s, t).unwrap();
        assert!(g.all_terminal_reliability(&[0.9]).is_err());
    }

    #[test]
    fn mesh_graph_larger_case() {
        // 3x3 grid, source top-left, sink bottom-right.
        let mut b = RelGraphBuilder::new();
        let nodes: Vec<Vec<NodeIdx>> = (0..3)
            .map(|r| (0..3).map(|c| b.node(&format!("n{r}{c}"))).collect())
            .collect();
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push(b.edge(nodes[r][c], nodes[r][c + 1], &format!("h{r}{c}")));
                }
                if r + 1 < 3 {
                    edges.push(b.edge(nodes[r][c], nodes[r + 1][c], &format!("v{r}{c}")));
                }
            }
        }
        let g = b.build(nodes[0][0], nodes[2][2]).unwrap();
        let p = vec![0.9; edges.len()];
        let r_bdd = g.reliability(&p).unwrap();
        let r_fac = g.factoring_reliability(&p).unwrap();
        assert!((r_bdd - r_fac).abs() < 1e-10);
        assert!(r_bdd > 0.9 && r_bdd < 1.0);
    }
}
