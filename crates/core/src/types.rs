//! Validated numeric newtypes and boundary-validation helpers.

use crate::{Error, Result};
use std::fmt;

/// A probability, statically guaranteed to lie in `[0, 1]` and be finite.
///
/// Construct with [`Probability::new`]; arithmetic that could leave the
/// unit interval goes through checked constructors so the invariant can
/// never be violated silently.
///
/// ```
/// use reliab_core::Probability;
/// # fn main() -> Result<(), reliab_core::Error> {
/// let up = Probability::new(0.99)?;
/// let down = up.complement();
/// assert!((down.value() - 0.01).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Probability(f64);

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `p` is NaN, infinite, or
    /// outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        ensure_probability(p, "probability")?;
        Ok(Probability(p))
    }

    /// Creates a probability, clamping small floating-point excursions
    /// (within `1e-9`) back into `[0, 1]`.
    ///
    /// Useful for consuming the output of numerical solvers, where values
    /// like `1.0 + 3e-16` are routine and harmless.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `p` is NaN or departs from
    /// the unit interval by more than `1e-9`.
    pub fn new_clamped(p: f64) -> Result<Self> {
        if p.is_nan() {
            return Err(Error::invalid("probability is NaN"));
        }
        if (-1e-9..=1.0 + 1e-9).contains(&p) {
            Ok(Probability(p.clamp(0.0, 1.0)))
        } else {
            Err(Error::invalid(format!(
                "probability {p} outside [0,1] beyond tolerance"
            )))
        }
    }

    /// Returns the inner `f64` value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `1 - p`.
    pub fn complement(self) -> Probability {
        // Exactly representable: 1 - p stays in [0, 1] for p in [0, 1].
        Probability(1.0 - self.0)
    }

    /// Probability that two independent events both occur.
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probability that at least one of two independent events occurs.
    pub fn or(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

impl TryFrom<f64> for Probability {
    type Error = Error;
    fn try_from(p: f64) -> Result<Self> {
        Probability::new(p)
    }
}

/// Validates that `x` is finite and strictly positive.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] naming `what` otherwise.
pub fn ensure_finite_positive(x: f64, what: &str) -> Result<()> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        Err(Error::invalid(format!(
            "{what} must be finite and > 0, got {x}"
        )))
    }
}

/// Validates that `x` is finite and non-negative.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] naming `what` otherwise.
pub fn ensure_finite_nonneg(x: f64, what: &str) -> Result<()> {
    if x.is_finite() && x >= 0.0 {
        Ok(())
    } else {
        Err(Error::invalid(format!(
            "{what} must be finite and >= 0, got {x}"
        )))
    }
}

/// Validates that `p` lies in `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] naming `what` otherwise.
pub fn ensure_probability(p: f64, what: &str) -> Result<()> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(Error::invalid(format!("{what} must lie in [0,1], got {p}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_domain() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_accepts_solver_noise_only() {
        assert_eq!(Probability::new_clamped(1.0 + 1e-12).unwrap().value(), 1.0);
        assert_eq!(Probability::new_clamped(-1e-12).unwrap().value(), 0.0);
        assert!(Probability::new_clamped(1.01).is_err());
        assert!(Probability::new_clamped(f64::NAN).is_err());
    }

    #[test]
    fn boolean_algebra_on_independent_events() {
        let a = Probability::new(0.5).unwrap();
        let b = Probability::new(0.5).unwrap();
        assert!((a.and(b).value() - 0.25).abs() < 1e-15);
        assert!((a.or(b).value() - 0.75).abs() < 1e-15);
        assert_eq!(Probability::ONE.complement(), Probability::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        let p = Probability::try_from(0.3).unwrap();
        let x: f64 = p.into();
        assert_eq!(x, 0.3);
    }

    #[test]
    fn validators() {
        assert!(ensure_finite_positive(1e-300, "rate").is_ok());
        assert!(ensure_finite_positive(0.0, "rate").is_err());
        assert!(ensure_finite_nonneg(0.0, "time").is_ok());
        assert!(ensure_finite_nonneg(-1.0, "time").is_err());
        assert!(ensure_probability(0.5, "coverage").is_ok());
        assert!(ensure_probability(2.0, "coverage").is_err());
    }
}
