//! The workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the `reliab` workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Error type shared by every `reliab` crate.
///
/// Variants are deliberately coarse: they distinguish *why* an operation
/// failed (bad input, numerical breakdown, failure to converge, structural
/// model defect) rather than *where*, which the message carries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A caller-supplied parameter was outside its legal domain
    /// (negative rate, probability outside `[0, 1]`, NaN, ...).
    InvalidParameter(String),
    /// A numerical procedure broke down (singular matrix, overflow,
    /// catastrophic cancellation guard tripped, ...).
    Numerical(String),
    /// An iterative procedure exhausted its iteration budget without
    /// meeting the convergence tolerance.
    Convergence {
        /// Human-readable description of the failing procedure.
        what: String,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual (procedure-specific norm) at the final iteration.
        residual: f64,
    },
    /// The model itself is structurally defective (absorbing state in an
    /// irreducible solve, empty fault tree, disconnected reliability
    /// graph terminal, ...).
    Model(String),
    /// The requested operation is not supported for this model class.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            Error::Numerical(m) => write!(f, "numerical failure: {m}"),
            Error::Convergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:e})"
            ),
            Error::Model(m) => write!(f, "model error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand constructor for [`Error::InvalidParameter`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidParameter(msg.into())
    }

    /// Shorthand constructor for [`Error::Numerical`].
    pub fn numerical(msg: impl Into<String>) -> Self {
        Error::Numerical(msg.into())
    }

    /// Shorthand constructor for [`Error::Model`].
    pub fn model(msg: impl Into<String>) -> Self {
        Error::Model(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::invalid("rate must be positive");
        assert_eq!(e.to_string(), "invalid parameter: rate must be positive");
        let e = Error::Convergence {
            what: "SOR".into(),
            iterations: 500,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("500 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn source_is_none() {
        use std::error::Error as _;
        assert!(Error::numerical("x").source().is_none());
    }
}
