//! # reliab-core
//!
//! Shared foundation for the `reliab` reliability/availability modeling
//! toolkit: validated numeric newtypes ([`Probability`]), the common
//! [`Error`] type, measure containers ([`Availability`],
//! [`ConfidenceInterval`], [`ImportanceMeasures`]), and the solver traits
//! ([`Reliability`], [`SteadyStateAvailability`], [`MeanTimeToFailure`])
//! implemented by every model class in the workspace.
//!
//! The crate is deliberately dependency-light so that every other crate in
//! the workspace can depend on it without pulling in numerics or RNGs.
//!
//! ```
//! use reliab_core::Probability;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let p = Probability::new(0.25)?;
//! assert_eq!(p.complement().value(), 0.75);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
pub mod fxhash;
mod measures;
mod traits;
mod types;

pub use error::{Error, Result};
pub use measures::{
    downtime_minutes_per_year, Availability, ConfidenceInterval, ImportanceMeasures,
};
pub use traits::{MeanTimeToFailure, Reliability, SteadyStateAvailability};
pub use types::{ensure_finite_nonneg, ensure_finite_positive, ensure_probability, Probability};
