//! Solver traits implemented by every model class in the workspace.

use crate::Result;

/// Models that can report time-dependent reliability `R(t)` — the
/// probability the system performs without failure over `[0, t]`.
///
/// Implementors: RBDs and fault trees over lifetime distributions,
/// absorbing CTMCs, the simulator's estimators.
pub trait Reliability {
    /// Probability of surviving `[0, t]` without system failure.
    ///
    /// # Errors
    ///
    /// Returns an error if `t` is negative/NaN or the underlying solver
    /// fails (see each implementor's documentation).
    fn reliability(&self, t: f64) -> Result<f64>;

    /// Convenience: `1 - R(t)`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Reliability::reliability`].
    fn unreliability(&self, t: f64) -> Result<f64> {
        Ok(1.0 - self.reliability(t)?)
    }
}

/// Models with a long-run availability.
pub trait SteadyStateAvailability {
    /// Long-run fraction of time the system is up.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying steady-state solve fails
    /// (singular generator, convergence failure, ...).
    fn steady_state_availability(&self) -> Result<f64>;
}

/// Models with a mean time to (first) failure.
pub trait MeanTimeToFailure {
    /// Expected time until the system first fails, starting from the
    /// model's initial state with all components good.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying solve fails, or the MTTF
    /// diverges (no reachable failure state).
    fn mttf(&self) -> Result<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Exp {
        rate: f64,
    }
    impl Reliability for Exp {
        fn reliability(&self, t: f64) -> Result<f64> {
            Ok((-self.rate * t).exp())
        }
    }

    #[test]
    fn default_unreliability_complements() {
        let m = Exp { rate: 1.0 };
        let r = m.reliability(1.0).unwrap();
        let q = m.unreliability(1.0).unwrap();
        assert!((r + q - 1.0).abs() < 1e-15);
    }

    #[test]
    fn traits_are_object_safe() {
        let m: Box<dyn Reliability> = Box::new(Exp { rate: 2.0 });
        assert!(m.reliability(0.0).unwrap() == 1.0);
    }
}
