//! Vendored FxHash: the non-cryptographic, multiply-and-rotate hash
//! used by rustc (`rustc_hash`), reimplemented here because the build
//! environment has no network access to crates.io.
//!
//! SipHash — the `std::collections::HashMap` default — defends against
//! hash-flooding by an adversary who controls the keys. Every hot map
//! in this workspace is keyed by data the process itself generated
//! (BDD node triples, interned spec strings, component indices), so
//! that defense buys nothing and costs 3–5x on lookups. FxHash does
//! one wrapping multiply and rotate per word, which is the right
//! trade for hash-consing workloads (the same reasoning OBDDimal and
//! rustc apply).
//!
//! ```
//! use reliab_core::fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "answer");
//! assert_eq!(m.get(&42), Some(&"answer"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed constant: `2^64 / phi`, the same odd constant rustc's
/// FxHasher multiplies by.
pub const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The rustc-style Fx hasher: wrapping multiply by [`SEED`] and a
/// 5-bit rotate per ingested word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes one `u64` to a well-mixed `u64` — the standalone kernel used
/// by open-addressing tables that do their own probing instead of
/// going through `Hasher`.
#[inline]
#[must_use]
pub fn hash_u64(x: u64) -> u64 {
    let h = x.wrapping_mul(SEED);
    // The multiply mixes low bits upward; fold the high bits back down
    // so masked (power-of-two) table indices see the whole word.
    h ^ (h >> 32)
}

/// Hashes a `(u32, u32, u32)` key — the BDD unique-table / ITE-cache
/// shape — to a well-mixed `u64`.
#[inline]
#[must_use]
pub fn hash_u32x3(a: u32, b: u32, c: u32) -> u64 {
    let mut h = u64::from(a).wrapping_mul(SEED);
    h = (h.rotate_left(ROTATE) ^ u64::from(b)).wrapping_mul(SEED);
    h = (h.rotate_left(ROTATE) ^ u64::from(c)).wrapping_mul(SEED);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500, 1000)), Some(&500));
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn deterministic_across_instances() {
        let build = FxBuildHasher::default();
        let h = |x: u64| build.hash_one(x);
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn triple_hash_spreads_low_bits() {
        // Sequential node ids must not collide in the low bits used by
        // masked tables.
        let mask = 0xFFFF;
        let mut seen = FxHashSet::default();
        for i in 0..1000u32 {
            seen.insert(hash_u32x3(3, i, i + 1) & mask);
        }
        assert!(seen.len() > 900, "only {} distinct buckets", seen.len());
    }

    #[test]
    fn bulk_write_matches_no_panics() {
        let mut h = FxHasher::default();
        h.write(b"hello world, this is more than eight bytes");
        assert_ne!(h.finish(), 0);
    }
}
