//! Measure containers shared by all model classes.

use crate::{ensure_probability, Error, Result};

/// Minutes in a (365-day) year, used for downtime conversions.
const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;

/// Converts a steady-state availability into expected downtime in
/// minutes per year — the unit practitioners quote ("five nines" is
/// about 5.26 minutes/year).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `availability` is outside `[0, 1]`.
///
/// ```
/// # fn main() -> Result<(), reliab_core::Error> {
/// let m = reliab_core::downtime_minutes_per_year(0.99999)?;
/// assert!((m - 5.256).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn downtime_minutes_per_year(availability: f64) -> Result<f64> {
    ensure_probability(availability, "availability")?;
    Ok((1.0 - availability) * MINUTES_PER_YEAR)
}

/// A steady-state availability result with its practitioner-friendly
/// derived quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Availability {
    /// Steady-state probability that the system is up.
    pub steady_state: f64,
    /// Expected downtime, in minutes per year.
    pub downtime_minutes_per_year: f64,
}

impl Availability {
    /// Wraps a raw steady-state availability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `a` is outside `[0, 1]`.
    pub fn from_steady_state(a: f64) -> Result<Self> {
        Ok(Availability {
            steady_state: a,
            downtime_minutes_per_year: downtime_minutes_per_year(a)?,
        })
    }

    /// Number of "nines" of availability, `-log10(1 - A)`.
    ///
    /// Returns `f64::INFINITY` for a perfectly available system.
    pub fn nines(&self) -> f64 {
        -(1.0 - self.steady_state).log10()
    }
}

/// A two-sided confidence interval for a scalar measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean or median, estimator-specific).
    pub point: f64,
    /// Lower confidence limit.
    pub lower: f64,
    /// Upper confidence limit.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Creates an interval, validating `lower <= point <= upper` and the
    /// confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on ordering or level violations.
    pub fn new(point: f64, lower: f64, upper: f64, level: f64) -> Result<Self> {
        if !(0.0 < level && level < 1.0) {
            return Err(Error::invalid(format!(
                "confidence level must lie in (0,1), got {level}"
            )));
        }
        if !(lower <= point && point <= upper) {
            return Err(Error::invalid(format!(
                "confidence interval must satisfy lower <= point <= upper, got [{lower}, {point}, {upper}]"
            )));
        }
        Ok(ConfidenceInterval {
            point,
            lower,
            upper,
            level,
        })
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// Component importance measures for a single basic component, as produced
/// by fault-tree / RBD analyses.
///
/// All three follow the standard definitions (Birnbaum; criticality a.k.a.
/// improvement potential normalized by system unreliability; Fussell-Vesely
/// from cut sets containing the component).
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceMeasures {
    /// Name of the component these measures describe.
    pub component: String,
    /// Birnbaum structural importance `∂Q_sys/∂q_i`.
    pub birnbaum: f64,
    /// Criticality importance `birnbaum * q_i / Q_sys`.
    pub criticality: f64,
    /// Fussell-Vesely importance: probability at least one cut set
    /// containing `i` fails, divided by `Q_sys`.
    pub fussell_vesely: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_nines_is_about_five_minutes() {
        let a = Availability::from_steady_state(0.99999).unwrap();
        assert!((a.downtime_minutes_per_year - 5.2559).abs() < 1e-3);
        assert!((a.nines() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn downtime_rejects_bad_availability() {
        assert!(downtime_minutes_per_year(1.5).is_err());
        assert!(downtime_minutes_per_year(-0.1).is_err());
        assert_eq!(downtime_minutes_per_year(1.0).unwrap(), 0.0);
    }

    #[test]
    fn interval_validation_and_queries() {
        let ci = ConfidenceInterval::new(0.5, 0.4, 0.6, 0.95).unwrap();
        assert!((ci.half_width() - 0.1).abs() < 1e-15);
        assert!(ci.contains(0.45));
        assert!(!ci.contains(0.7));
        assert!(ConfidenceInterval::new(0.5, 0.6, 0.7, 0.95).is_err());
        assert!(ConfidenceInterval::new(0.5, 0.4, 0.6, 1.0).is_err());
    }
}
