//! End-to-end smoke test: the `repro` binary must regenerate a
//! representative subset of experiment tables without error.

use std::process::Command;

#[test]
fn repro_runs_fast_experiments() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["e1", "e5", "e7", "e15", "e16", "e17"])
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for marker in ["E1", "E5", "E7", "E15", "E16", "E17", "min/yr", "MTTDL"] {
        assert!(stdout.contains(marker), "missing {marker} in output");
    }
}

#[test]
fn repro_rejects_unknown_ids() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("e99")
        .output()
        .expect("repro binary runs");
    assert!(!out.status.success());
}
