//! Discrete-event simulation benchmarks: replication throughput of the
//! parallel driver on the wide workstation-farm model
//! (see [`reliab_bench::wide_wfs_simulator`]) at several worker counts,
//! plus the per-measure kernel cost on a small repairable system.
//!
//! `cargo bench -p reliab-bench --bench sim` for the full run; the
//! committed perf numbers in `BENCH_sim.json` come from the
//! `bench-sim` binary, which times a larger replication budget end to
//! end and gates on bitwise reproducibility first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_bench::wide_wfs_simulator;
use reliab_sim::{Measure, SimOptions, SystemSimulator};

/// Fixed replication budget so every iteration times identical work:
/// adaptive stopping off (`rel_precision` 0), the round size pinned to
/// the replication count so exactly one round runs.
fn fixed_budget(replications: usize) -> SimOptions {
    let mut opts = SimOptions::default()
        .with_seed(0xBE9C_0001)
        .with_rel_precision(0.0)
        .with_max_replications(replications);
    opts.min_replications = replications;
    opts.round_replications = replications;
    opts
}

/// The parallel driver at several worker counts on the 100-component
/// farm. Results are bitwise identical at any setting; this measures
/// the work-stealing overhead and scaling.
fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_workers");
    group.sample_size(10);
    let sim = wide_wfs_simulator(99, 50);
    let measure = Measure::Availability { horizon: 2_000.0 };
    let reference = sim
        .simulate(measure, &fixed_budget(64))
        .expect("valid simulation");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let opts = fixed_budget(64).with_jobs(jobs);
            b.iter(|| {
                let report = sim.simulate(measure, &opts).expect("valid simulation");
                assert_eq!(report.interval, reference.interval);
                assert_eq!(report.events, reference.events);
                report.events
            })
        });
    }
    group.finish();
}

/// Per-measure kernel cost on a small repairable pair — isolates the
/// event-loop and estimator overhead from structure-function width.
fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_measures");
    group.sample_size(10);
    let sim = wide_wfs_simulator(2, 1);
    let cases = [
        ("availability", Measure::Availability { horizon: 10_000.0 }),
        (
            "reliability",
            Measure::Reliability {
                mission_time: 10_000.0,
            },
        ),
        ("mttf", Measure::Mttf { time_cap: 1.0e7 }),
    ];
    for (name, measure) in cases {
        group.bench_function(BenchmarkId::new("measure", name), |b| {
            let opts = fixed_budget(256);
            b.iter(|| {
                let report = sim.simulate(measure, &opts).expect("valid simulation");
                assert_eq!(report.replications, 256);
                report.events
            })
        });
    }
    group.finish();
}

/// RNG stream cost in isolation: drawing component lifetimes through
/// the splittable counter-based generator, the hot inner loop of every
/// replication.
fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_streams");
    group.sample_size(10);
    let sim: SystemSimulator = wide_wfs_simulator(99, 50);
    group.bench_function("replication_pair", |b| {
        let opts = fixed_budget(2);
        b.iter(|| {
            let report = sim
                .simulate(Measure::Availability { horizon: 2_000.0 }, &opts)
                .expect("valid simulation");
            report.events
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workers, bench_measures, bench_streams);
criterion_main!(benches);
