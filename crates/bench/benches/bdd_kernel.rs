//! BDD kernel benchmarks: the new arena/unique-table/bounded-cache/GC
//! kernel against the frozen pre-rework kernel (`legacy_bdd`) on the
//! same fault trees with the same (declaration) variable ordering, so
//! both build the identical canonical DAG and the comparison isolates
//! kernel mechanics from ordering effects.
//!
//! `cargo bench -p reliab-bench --bench bdd_kernel` for the full run;
//! the committed perf numbers in `BENCH_bdd.json` come from the
//! `bench_bdd` binary, which times the same workloads end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_bench::{boeing_class_tree, compile_legacy, legacy_bdd};
use reliab_ftree::{CompileOptions, VariableOrdering};

/// End-to-end compile + exact probability on the aircraft-class tree.
fn bench_kernel_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernel_end_to_end");
    group.sample_size(10);
    for units in [25usize, 100] {
        group.bench_with_input(BenchmarkId::new("legacy", units), &units, |b, &u| {
            b.iter(|| {
                let (_, top, probs) = boeing_class_tree(u);
                let mut bdd = legacy_bdd::Bdd::new(probs.len() as u32);
                let f = compile_legacy(&mut bdd, &top);
                bdd.probability(f, &probs).expect("valid probabilities")
            })
        });
        group.bench_with_input(BenchmarkId::new("new", units), &units, |b, &u| {
            b.iter(|| {
                let (builder, top, probs) = boeing_class_tree(u);
                let ft = builder
                    .build_with_ordering(top, VariableOrdering::Declaration)
                    .expect("tree compiles");
                ft.top_event_probability(&probs)
                    .expect("valid probabilities")
            })
        });
    }
    group.finish();
}

/// The same workload under each ordering heuristic of the new kernel —
/// the cost of smarter orderings (and of sifting) relative to the raw
/// declaration-order compile.
fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernel_orderings");
    group.sample_size(10);
    let orderings = [
        ("declaration", VariableOrdering::Declaration),
        ("dfs", VariableOrdering::DepthFirst),
        ("weighted", VariableOrdering::Weighted),
        ("sift", VariableOrdering::Sifted),
    ];
    for (name, ordering) in orderings {
        group.bench_function(BenchmarkId::new(name, 50), |b| {
            b.iter(|| {
                let (builder, top, probs) = boeing_class_tree(50);
                let ft = builder
                    .build_with_ordering(top, ordering)
                    .expect("tree compiles");
                ft.top_event_probability(&probs)
                    .expect("valid probabilities")
            })
        });
    }
    group.finish();
}

/// Compile with an aggressive GC threshold vs none: the wall-clock
/// price of keeping the peak live-node count bounded.
fn bench_gc_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_kernel_gc");
    group.sample_size(10);
    for (name, threshold) in [("unbounded", usize::MAX), ("gc_4k", 4096usize)] {
        group.bench_function(BenchmarkId::new(name, 100), |b| {
            b.iter(|| {
                let (builder, top, probs) = boeing_class_tree(100);
                let opts = CompileOptions::new()
                    .with_ordering(VariableOrdering::Declaration)
                    .with_gc_node_threshold(threshold);
                let ft = builder.build_with(top, &opts).expect("tree compiles");
                ft.top_event_probability(&probs)
                    .expect("valid probabilities")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_end_to_end,
    bench_orderings,
    bench_gc_overhead
);
criterion_main!(benches);
