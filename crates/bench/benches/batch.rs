//! Batch-engine benches: thread-pool scaling on a 32-spec batch and
//! the effect of canonical-spec memoization.
//!
//! The workload is 32 distinct birth–death CTMC documents (so
//! memoization cannot shortcut the scaling runs), each large enough
//! that a solve does real numerical work: a 120-state chain with a
//! steady-state solve and three uniformization transient points.
//!
//! Scaling is only visible with real cores: on a single-CPU host the
//! jobs > 1 rows just measure thread-pool overhead. On >= 4 cores the
//! jobs/4 row is expected to run well under the jobs/1 time (the
//! specs are solved fully independently, so speedup is near-linear
//! until memory bandwidth interferes).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_engine::BatchEngine;

fn birth_death_doc(states: usize, lambda: f64, mu: f64, at_times: &[f64]) -> String {
    let names: Vec<String> = (0..states).map(|i| format!("\"s{i}\"")).collect();
    let mut transitions = Vec::with_capacity(2 * states);
    for i in 0..states - 1 {
        transitions.push(format!(
            "{{\"from\": \"s{i}\", \"to\": \"s{}\", \"rate\": {lambda}}}",
            i + 1
        ));
        transitions.push(format!(
            "{{\"from\": \"s{}\", \"to\": \"s{i}\", \"rate\": {mu}}}",
            i + 1
        ));
    }
    let times: Vec<String> = at_times.iter().map(f64::to_string).collect();
    let up: Vec<String> = (0..states / 2).map(|i| format!("\"s{i}\"")).collect();
    format!(
        "{{\"ctmc\": {{\"states\": [{}], \"transitions\": [{}], \
         \"up_states\": [{}], \"at_times\": [{}]}}}}",
        names.join(", "),
        transitions.join(", "),
        up.join(", "),
        times.join(", ")
    )
}

/// 32 structurally distinct documents: rates vary per index.
fn distinct_batch() -> Vec<String> {
    (0..32)
        .map(|i| {
            birth_death_doc(
                120,
                1.0 + 0.01 * i as f64,
                2.0 + 0.02 * i as f64,
                &[1.0, 10.0, 50.0],
            )
        })
        .collect()
}

fn bench_batch_scaling(c: &mut Criterion) {
    let docs = distinct_batch();
    let mut group = c.benchmark_group("batch_engine_32_specs");
    group.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let engine = BatchEngine::new().with_jobs(jobs).with_memoization(false);
                black_box(engine.solve_texts(&docs))
            })
        });
    }
    group.finish();
}

fn bench_memoization(c: &mut Criterion) {
    // 32 copies of one document: the memo cache should collapse the
    // batch to a single solve.
    let doc = birth_death_doc(120, 1.0, 2.0, &[1.0, 10.0, 50.0]);
    let docs: Vec<String> = (0..32).map(|_| doc.clone()).collect();
    let mut group = c.benchmark_group("batch_engine_memoization");
    group.sample_size(10);
    for (label, memoize) in [("memo", true), ("no_memo", false)] {
        group.bench_with_input(BenchmarkId::new(label, 32usize), &memoize, |b, &memoize| {
            b.iter(|| {
                let engine = BatchEngine::new().with_jobs(1).with_memoization(memoize);
                black_box(engine.solve_texts(&docs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scaling, bench_memoization);
criterion_main!(benches);
