//! SPN state-space generation benchmarks: the compact-store generator
//! (sequential and parallel) against the frozen pre-rework generator
//! (`legacy_reach`) on the tandem queueing family, plus the
//! `CsrMatrix::from_triplets` assembly path that consumes the emitted
//! triplet stream.
//!
//! `cargo bench -p reliab-bench --bench reach` for the full run; the
//! committed perf numbers in `BENCH_reach.json` come from the
//! `bench-reach` binary, which times the ≥10⁵-marking net end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_bench::legacy_reach::LegacyReachOptions;
use reliab_bench::{tandem_legacy, tandem_spn};
use reliab_numeric::CsrMatrix;
use reliab_spn::ReachabilityOptions;

/// End-to-end generation (reachability + vanishing elimination + CTMC
/// assembly) on the tandem net, both generators.
fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reach_generation");
    group.sample_size(10);
    for capacity in [8u32, 16] {
        let markings = (capacity as usize + 1).pow(3);
        let legacy_net = tandem_legacy(capacity);
        group.bench_with_input(BenchmarkId::new("legacy", markings), &capacity, |b, _| {
            b.iter(|| {
                let solved = legacy_net
                    .solve_with(&LegacyReachOptions::default())
                    .expect("bounded net");
                assert_eq!(solved.num_markings(), markings);
                solved.num_markings()
            })
        });
        let new_net = tandem_spn(capacity).expect("net builds");
        group.bench_with_input(BenchmarkId::new("new", markings), &capacity, |b, _| {
            b.iter(|| {
                let solved = new_net.solve().expect("bounded net");
                assert_eq!(solved.num_markings(), markings);
                solved.num_markings()
            })
        });
    }
    group.finish();
}

/// The parallel path at several worker counts (same capacity-16 net).
/// Results are bitwise identical to the sequential reference at any
/// setting; this measures the coordination overhead and scaling.
fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("reach_workers");
    group.sample_size(10);
    let capacity = 16u32;
    let markings = (capacity as usize + 1).pow(3);
    let net = tandem_spn(capacity).expect("net builds");
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            let opts = ReachabilityOptions {
                jobs,
                ..Default::default()
            };
            b.iter(|| {
                let solved = net.solve_with(&opts).expect("bounded net");
                assert_eq!(solved.num_markings(), markings);
                solved.num_markings()
            })
        });
    }
    group.finish();
}

/// CSR assembly from an SPN-shaped triplet stream — the consumer of the
/// generator's output and the target of the shared-scratch-buffer fix
/// in `CsrMatrix::from_triplets` (one sort buffer for all rows instead
/// of a fresh `Vec` per row). The assertion pins the assembled shape so
/// a regression in the dedup/merge logic fails the bench rather than
/// silently timing wrong work.
fn bench_csr_from_triplets(c: &mut Criterion) {
    let mut group = c.benchmark_group("reach_csr_assembly");
    group.sample_size(10);
    let n = 50_000usize;
    // Birth–death-with-self-rate shape: ~3 entries per row, plus
    // duplicates that must merge.
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * n);
    for i in 0..n {
        if i > 0 {
            triplets.push((i, i - 1, 2.0));
        }
        if i + 1 < n {
            triplets.push((i, i + 1, 1.0));
        }
        triplets.push((i, i, -3.0));
        triplets.push((i, i, 0.5)); // duplicate: merges into the diagonal
    }
    let expected_nnz = 3 * n - 2;
    group.bench_function(BenchmarkId::new("from_triplets", n), |b| {
        b.iter(|| {
            let m = CsrMatrix::from_triplets(n, n, &triplets).expect("valid triplets");
            assert_eq!(m.nnz(), expected_nnz);
            m.nnz()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_workers,
    bench_csr_from_triplets
);
criterion_main!(benches);
