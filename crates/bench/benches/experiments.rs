//! One Criterion bench per tutorial experiment (E1–E14): measures the
//! cost of regenerating each table/figure of `EXPERIMENTS.md`. The
//! `repro` binary prints the tables themselves; these benches track
//! how expensive each reconstruction is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_bench::{scaling_ctmc, scaling_rbd};
use reliab_dist::{Exponential, Lifetime, Weibull};
use reliab_hier::FixedPointOptions;
use reliab_models::crn::{crn_bounds_sweep, crn_mesh};
use reliab_models::multiproc::{
    coverage_ctmc, multiproc_fault_tree, multiproc_probs, MultiprocParams,
};
use reliab_models::rejuv::{optimal_rejuvenation, RejuvParams};
use reliab_models::router::{router_availability, RouterParams};
use reliab_models::sip::{sip_availability, SipParams};
use reliab_models::two_comp::{two_component_availability, RepairPolicy};
use reliab_models::wfs::{wfs_availability, WfsParams};
use reliab_rbd::{Block, RbdBuilder};
use reliab_semimarkov::renewal::optimal_policy_age;
use reliab_sim::SystemSimulator;
use reliab_spn::SpnBuilder;
use reliab_uncert::{propagate, rate_posterior, PropagationOptions};

fn experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("e1_wfs_availability", |b| {
        b.iter(|| wfs_availability(&WfsParams::default()).expect("solve"))
    });

    g.bench_function("e2_k_of_n_reliability", |b| {
        let d = Exponential::new(1e-3).expect("dist");
        b.iter(|| {
            let mut bld = RbdBuilder::new();
            let comps = bld.components("c", 5);
            let rbd = bld
                .build(Block::k_of_n_components(3, &comps))
                .expect("build");
            let lifetimes: Vec<&dyn Lifetime> = vec![&d; 5];
            rbd.reliability(&lifetimes, 1000.0).expect("eval")
        })
    });

    g.bench_function("e3_multiproc_fault_tree", |b| {
        let p = MultiprocParams::default();
        b.iter(|| {
            let (mut ft, _) = multiproc_fault_tree(&p).expect("build");
            let probs = multiproc_probs(&p);
            let q = ft.top_event_probability(&probs).expect("prob");
            let imp = ft.importance(&probs).expect("importance");
            (q, imp.len())
        })
    });

    g.bench_function("e4_crn_bounds", |b| {
        let mesh = crn_mesh(3, 4).expect("mesh");
        b.iter(|| crn_bounds_sweep(&mesh, 1e-3, &[2, 3, 4]).expect("sweep"))
    });

    g.bench_function("e5_two_component", |b| {
        b.iter(|| {
            (
                two_component_availability(0.01, 1.0, RepairPolicy::Independent).expect("solve"),
                two_component_availability(0.01, 1.0, RepairPolicy::SharedCrew).expect("solve"),
            )
        })
    });

    g.bench_function("e6_transient_reliability", |b| {
        let (ctmc, s2, _, sf) = coverage_ctmc(1e-3, 0.95, Some(0.2)).expect("build");
        let p0 = ctmc.point_mass(s2);
        b.iter(|| ctmc.reliability_at(&p0, &[sf], 5000.0).expect("solve"))
    });

    g.bench_function("e6_simulation_counterpart", |b| {
        let mut sim = SystemSimulator::new(|s: &[bool]| s[0] || s[1]);
        for _ in 0..2 {
            sim.component(
                Box::new(Exponential::new(2e-3).expect("dist")),
                Box::new(Exponential::new(0.1).expect("dist")),
            );
        }
        b.iter(|| sim.reliability(1000.0, 200, 7).expect("simulate"))
    });

    g.bench_function("e7_mttf_coverage_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &c in &[0.9, 0.95, 0.99, 1.0] {
                let (ctmc, s2, _, sf) = coverage_ctmc(1e-3, c, None).expect("build");
                acc += ctmc.mttf(&ctmc.point_mass(s2), &[sf]).expect("mttf");
            }
            acc
        })
    });

    g.bench_function("e8_spn_mm2k", |b| {
        b.iter(|| {
            let mut bld = SpnBuilder::new();
            let q = bld.place("queue", 0);
            let arrive = bld.timed("arrive", 1.5);
            bld.output_arc(arrive, q, 1);
            bld.inhibitor_arc(arrive, q, 16);
            let serve = bld.timed_fn("serve", |m: &Vec<u32>| f64::from(m[0].min(2)));
            bld.input_arc(serve, q, 1);
            let spn = bld.build().expect("build");
            let solved = spn.solve().expect("reach");
            solved.throughput(serve).expect("throughput")
        })
    });

    g.bench_function("e9_rejuvenation_optimum", |b| {
        let p = RejuvParams::default();
        b.iter(|| optimal_rejuvenation(&p, 4.0, 8760.0).expect("optimize"))
    });

    g.bench_function("e10_router_hierarchy", |b| {
        b.iter(|| router_availability(&RouterParams::default()).expect("solve"))
    });

    g.bench_function("e11_sip_fixed_point", |b| {
        b.iter(|| {
            sip_availability(&SipParams::default(), &FixedPointOptions::default()).expect("solve")
        })
    });

    g.bench_function("e12_uncertainty_propagation", |b| {
        b.iter(|| {
            let posterior = rate_posterior(5, 10_000.0).expect("posterior");
            propagate(
                &[Box::new(posterior)],
                |p| {
                    Ok(
                        two_component_availability(p[0], 1.0, RepairPolicy::SharedCrew)?
                            .parallel_availability,
                    )
                },
                &PropagationOptions {
                    samples: 500,
                    ..Default::default()
                },
            )
            .expect("propagate")
        })
    });

    g.bench_function("e13_preventive_maintenance", |b| {
        let ttf = Weibull::new(2.0, 1000.0).expect("dist");
        b.iter(|| optimal_policy_age(&ttf, 48.0, 4.0, 10.0, 50_000.0).expect("optimize"))
    });

    g.bench_function("e15_ccf_beta_factor", |b| {
        use reliab_ftree::{CcfGroup, FaultTreeBuilder, FtNode};
        b.iter(|| {
            let mut bld = FaultTreeBuilder::new();
            let grp = CcfGroup::new(&mut bld, "unit", 6).expect("group");
            let ft = bld.build(FtNode::and(grp.members())).expect("build");
            let mut probs = vec![0.0; ft.num_events()];
            grp.assign_probabilities(&mut probs, 0.01, 0.05)
                .expect("assign");
            ft.top_event_probability(&probs).expect("prob")
        })
    });

    g.bench_function("e16_raid_mttdl", |b| {
        use reliab_models::raid::{raid_mttdl, RaidParams};
        b.iter(|| {
            raid_mttdl(&RaidParams {
                n_disks: 16,
                tolerance: 2,
                lambda: 1e-5,
                mu: 0.1,
            })
            .expect("solve")
        })
    });

    g.bench_function("e17_ha_cluster", |b| {
        use reliab_models::cluster::{cluster_availability, ClusterParams};
        b.iter(|| cluster_availability(&ClusterParams::default()).expect("solve"))
    });

    for n in [3usize, 5] {
        g.bench_with_input(BenchmarkId::new("e14_rbd_route", n), &n, |b, &n| {
            b.iter(|| {
                let (rbd, avail) = scaling_rbd(n).expect("build");
                rbd.availability(&avail).expect("solve")
            })
        });
        g.bench_with_input(BenchmarkId::new("e14_ctmc_route", n), &n, |b, &n| {
            b.iter(|| {
                let (ctmc, up) = scaling_ctmc(n).expect("build");
                ctmc.steady_state_probability_of(&up).expect("solve")
            })
        });
    }

    g.finish();
}

criterion_group!(benches, experiments);
criterion_main!(benches);
