//! Observability overhead benches.
//!
//! The obs layer's design contract is that *disabled* instrumentation
//! costs one relaxed atomic load per site — solver throughput must be
//! indistinguishable with the crate compiled in but dormant. These
//! benches pin that down on a real workload:
//!
//! * `batch/disabled` — an 8-spec CTMC batch with no subscriber and
//!   metrics off (the default state). This is the baseline every other
//!   row is compared against; it must match the pre-obs numbers.
//! * `batch/tracing` — the same batch streaming JSONL to `io::sink()`,
//!   showing what a trace consumer actually costs.
//! * `batch/profiling` — the same batch aggregated by the phase
//!   profiler (in-memory span statistics, no serialization).
//! * `batch/recording` — the same batch captured by the flight
//!   recorder's bounded per-series rings.
//! * `batch/metrics` — the same batch with only the metrics registry
//!   enabled (counters/histograms, no trace dispatch).
//! * `span/disabled` + `event/disabled` — microbenches of the bare
//!   gate: creating a span / firing an event with tracing off.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use reliab_engine::BatchEngine;
use reliab_obs as obs;
use std::sync::Arc;

fn birth_death_doc(states: usize, lambda: f64, mu: f64, at_times: &[f64]) -> String {
    let names: Vec<String> = (0..states).map(|i| format!("\"s{i}\"")).collect();
    let mut transitions = Vec::with_capacity(2 * states);
    for i in 0..states - 1 {
        transitions.push(format!(
            "{{\"from\": \"s{i}\", \"to\": \"s{}\", \"rate\": {lambda}}}",
            i + 1
        ));
        transitions.push(format!(
            "{{\"from\": \"s{}\", \"to\": \"s{i}\", \"rate\": {mu}}}",
            i + 1
        ));
    }
    let times: Vec<String> = at_times.iter().map(f64::to_string).collect();
    let up: Vec<String> = (0..states / 2).map(|i| format!("\"s{i}\"")).collect();
    format!(
        "{{\"ctmc\": {{\"states\": [{}], \"transitions\": [{}], \
         \"up_states\": [{}], \"at_times\": [{}]}}}}",
        names.join(", "),
        transitions.join(", "),
        up.join(", "),
        times.join(", ")
    )
}

fn distinct_batch() -> Vec<String> {
    (0..8)
        .map(|i| {
            birth_death_doc(
                80,
                1.0 + 0.01 * i as f64,
                2.0 + 0.02 * i as f64,
                &[1.0, 10.0],
            )
        })
        .collect()
}

fn solve_batch(docs: &[String]) {
    // Memoization off: every iteration must do the full numerical work.
    let engine = BatchEngine::new().with_jobs(1).with_memoization(false);
    let reports = engine.solve_texts(docs);
    black_box(reports.iter().filter(|r| r.is_ok()).count());
}

fn bench_obs_overhead(c: &mut Criterion) {
    let docs = distinct_batch();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    obs::clear_subscribers();
    obs::set_metrics_enabled(false);
    group.bench_function("batch/disabled", |b| b.iter(|| solve_batch(&docs)));

    obs::install_subscriber(Arc::new(obs::JsonlSubscriber::new(std::io::sink())));
    group.bench_function("batch/tracing", |b| b.iter(|| solve_batch(&docs)));
    obs::clear_subscribers();

    obs::install_subscriber(Arc::new(obs::ProfileSubscriber::new()));
    group.bench_function("batch/profiling", |b| b.iter(|| solve_batch(&docs)));
    obs::clear_subscribers();

    obs::install_subscriber(Arc::new(obs::FlightRecorder::new()));
    group.bench_function("batch/recording", |b| b.iter(|| solve_batch(&docs)));
    obs::clear_subscribers();

    obs::set_metrics_enabled(true);
    group.bench_function("batch/metrics", |b| b.iter(|| solve_batch(&docs)));
    obs::set_metrics_enabled(false);

    group.finish();
}

fn bench_disabled_sites(c: &mut Criterion) {
    obs::clear_subscribers();
    obs::set_metrics_enabled(false);
    let mut group = c.benchmark_group("obs_disabled_sites");

    group.bench_function("span/disabled", |b| {
        b.iter(|| {
            let span = obs::span(black_box("bench.span"));
            black_box(span.id());
        })
    });

    group.bench_function("event/disabled", |b| {
        b.iter(|| {
            obs::event(black_box("bench.event"), &[("k", 1u64.into())]);
        })
    });

    group.bench_function("counter/disabled", |b| {
        b.iter(|| {
            obs::counter_add(black_box("bench.counter"), 1);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead, bench_disabled_sites);
criterion_main!(benches);
