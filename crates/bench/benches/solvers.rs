//! Ablation benches for the solver-level design choices called out in
//! DESIGN.md: steady-state method (GTH vs SOR), uniformization
//! steady-state detection, BDD variable ordering, and fixed-point
//! damping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliab_bench::{birth_death, ordering_ablation_tree};
use reliab_ftree::VariableOrdering;
use reliab_hier::FixedPointOptions;
use reliab_markov::{SteadyStateMethod, TransientOptions};
use reliab_models::sip::{sip_availability, SipParams};

fn bench_steady_state_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_method");
    for n in [50usize, 200, 400] {
        let chain = birth_death(n, 1.0, 2.0).expect("valid chain");
        group.bench_with_input(BenchmarkId::new("gth", n), &chain, |b, ch| {
            b.iter(|| {
                ch.steady_state_with(&SteadyStateMethod::Gth)
                    .expect("solve")
            })
        });
        group.bench_with_input(BenchmarkId::new("sor", n), &chain, |b, ch| {
            b.iter(|| {
                ch.steady_state_with(&SteadyStateMethod::Sor(Default::default()))
                    .expect("solve")
            })
        });
    }
    group.finish();
}

fn bench_uniformization_ssd(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniformization_steady_state_detection");
    // Stiff chain + long horizon: SSD should shortcut most of the sum.
    let chain = birth_death(40, 1.0, 50.0).expect("valid chain");
    let mut init = vec![0.0; 40];
    init[0] = 1.0;
    let horizon = 5_000.0;
    group.bench_function("with_detection", |b| {
        b.iter(|| {
            chain
                .transient_with(
                    &init,
                    horizon,
                    &TransientOptions {
                        epsilon: 1e-10,
                        steady_state_detection: Some(1e-12),
                    },
                )
                .expect("solve")
        })
    });
    group.bench_function("without_detection", |b| {
        b.iter(|| {
            chain
                .transient_with(
                    &init,
                    horizon,
                    &TransientOptions {
                        epsilon: 1e-10,
                        steady_state_detection: None,
                    },
                )
                .expect("solve")
        })
    });
    group.finish();
}

fn bench_bdd_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_variable_ordering");
    let n = 10usize;
    let q = vec![0.02; 2 * n];
    for (name, ordering) in [
        ("declaration", VariableOrdering::Declaration),
        ("depth_first", VariableOrdering::DepthFirst),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ft = ordering_ablation_tree(n, ordering).expect("build");
                ft.top_event_probability(&q).expect("probability")
            })
        });
    }
    group.finish();
}

fn bench_fixed_point_damping(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_point_damping");
    for damping in [1.0f64, 0.5, 0.25] {
        group.bench_with_input(BenchmarkId::from_parameter(damping), &damping, |b, &d| {
            b.iter(|| {
                sip_availability(
                    &SipParams::default(),
                    &FixedPointOptions {
                        damping: d,
                        ..Default::default()
                    },
                )
                .expect("solve")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_steady_state_methods,
    bench_uniformization_ssd,
    bench_bdd_ordering,
    bench_fixed_point_damping
);
criterion_main!(benches);
