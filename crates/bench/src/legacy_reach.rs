//! The pre-optimization SPN state-space generator, frozen for
//! benchmarking.
//!
//! This reproduces `reliab-spn`'s reachability generation as it stood
//! before the compact-store/parallel rework: a `HashMap<Marking,
//! usize>` intern table keyed by owned marking vectors (SipHash, one
//! clone per lookup plus one per insert), LIFO frontier order, a
//! `HashMap`-merge vanishing resolution, and CTMC construction through
//! the string-interning `CtmcBuilder`. The `reach` Criterion suite and
//! the `bench-reach` binary measure the new generator against this
//! exact code on identical nets. Do not improve it.
//!
//! The model representation is deliberately independent of
//! `reliab-spn` internals (which the new generator reshaped); the
//! [`crate::tandem_spn`] / [`crate::tandem_legacy`] constructors build
//! the same net for both.

use reliab_core::{Error, Result};
use reliab_markov::{Ctmc, CtmcBuilder};
use std::collections::HashMap;

/// A marking: token count per place.
pub type Marking = Vec<u32>;

/// Transition timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LegacyTiming {
    /// Exponential delay with the given rate.
    Timed(f64),
    /// Immediate firing with the given weight and priority.
    Immediate {
        /// Relative firing weight among equal-priority competitors.
        weight: f64,
        /// Firing priority (higher fires first).
        priority: u32,
    },
}

/// One transition: timing plus input/output/inhibitor arcs as
/// `(place, multiplicity)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyTransition {
    /// Timing discipline.
    pub timing: LegacyTiming,
    /// Input arcs.
    pub inputs: Vec<(usize, u32)>,
    /// Output arcs.
    pub outputs: Vec<(usize, u32)>,
    /// Inhibitor arcs.
    pub inhibitors: Vec<(usize, u32)>,
}

/// A stochastic Petri net in the legacy generator's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacySpn {
    /// Number of places.
    pub num_places: usize,
    /// Initial marking.
    pub initial: Marking,
    /// Transitions.
    pub transitions: Vec<LegacyTransition>,
}

/// Generation limits, mirroring the old `ReachabilityOptions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegacyReachOptions {
    /// Hard cap on tangible markings.
    pub max_markings: usize,
    /// Hard cap on vanishing-chain length.
    pub max_vanishing_depth: usize,
}

impl Default for LegacyReachOptions {
    fn default() -> Self {
        LegacyReachOptions {
            max_markings: 1_000_000,
            max_vanishing_depth: 10_000,
        }
    }
}

/// The legacy solve result: tangible markings plus the CTMC.
#[derive(Debug)]
pub struct LegacySolved {
    markings: Vec<Marking>,
    ctmc: Ctmc,
    initial: Vec<f64>,
}

impl LegacySolved {
    /// Number of tangible markings.
    pub fn num_markings(&self) -> usize {
        self.markings.len()
    }

    /// The tangible markings, indexed like CTMC states.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Initial distribution over tangible markings.
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }
}

impl LegacySpn {
    fn enabled(&self, t: usize, m: &Marking) -> bool {
        let tr = &self.transitions[t];
        tr.inputs.iter().all(|&(p, k)| m[p] >= k) && tr.inhibitors.iter().all(|&(p, k)| m[p] < k)
    }

    fn fire(&self, t: usize, m: &Marking) -> Marking {
        let mut next = m.clone();
        for &(p, k) in &self.transitions[t].inputs {
            next[p] -= k;
        }
        for &(p, k) in &self.transitions[t].outputs {
            next[p] += k;
        }
        next
    }

    /// Generates the reachability graph, eliminates vanishing markings,
    /// and builds the CTMC — the exact structure of the pre-rework
    /// generator (owned-key `HashMap` interning, LIFO frontier,
    /// `CtmcBuilder` with `format!("{m:?}")` state names).
    ///
    /// # Errors
    ///
    /// Mirrors the old generator: [`Error::Model`] on the marking cap
    /// or a vanishing loop, and propagates CTMC build errors.
    pub fn solve_with(&self, opts: &LegacyReachOptions) -> Result<LegacySolved> {
        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut arcs: Vec<(usize, usize, f64)> = Vec::new();

        let intern = |m: Marking,
                      markings: &mut Vec<Marking>,
                      index: &mut HashMap<Marking, usize>,
                      queue: &mut Vec<usize>|
         -> Result<usize> {
            if let Some(&i) = index.get(&m) {
                return Ok(i);
            }
            if markings.len() >= opts.max_markings {
                return Err(Error::model(format!(
                    "reachability exceeded {} tangible markings",
                    opts.max_markings
                )));
            }
            let i = markings.len();
            index.insert(m.clone(), i);
            markings.push(m);
            queue.push(i);
            Ok(i)
        };

        let init_dist = self.resolve_vanishing(self.initial.clone(), opts)?;
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();
        for (m, p) in init_dist {
            let i = intern(m, &mut markings, &mut index, &mut queue)?;
            initial_pairs.push((i, p));
        }

        while let Some(i) = queue.pop() {
            let m = markings[i].clone();
            for t in 0..self.transitions.len() {
                let LegacyTiming::Timed(rate) = self.transitions[t].timing else {
                    continue;
                };
                if !self.enabled(t, &m) {
                    continue;
                }
                let fired = self.fire(t, &m);
                for (target, p) in self.resolve_vanishing(fired, opts)? {
                    let j = intern(target, &mut markings, &mut index, &mut queue)?;
                    if j != i {
                        arcs.push((i, j, rate * p));
                    }
                }
            }
        }

        let mut b = CtmcBuilder::new();
        let ids: Vec<_> = markings
            .iter()
            .map(|m| b.state(&format!("{m:?}")))
            .collect();
        for (f, t, r) in arcs {
            b.transition(ids[f], ids[t], r)?;
        }
        let ctmc = b.build()?;
        let mut initial = vec![0.0; markings.len()];
        for (i, p) in initial_pairs {
            initial[i] += p;
        }
        Ok(LegacySolved {
            markings,
            ctmc,
            initial,
        })
    }

    fn resolve_vanishing(
        &self,
        m: Marking,
        opts: &LegacyReachOptions,
    ) -> Result<Vec<(Marking, f64)>> {
        let mut out: Vec<(Marking, f64)> = Vec::new();
        let mut stack: Vec<(Marking, f64, usize)> = vec![(m, 1.0, 0)];
        while let Some((m, p, depth)) = stack.pop() {
            if depth > opts.max_vanishing_depth {
                return Err(Error::model(
                    "vanishing-marking chain exceeded depth limit: immediate-transition loop?",
                ));
            }
            let mut best_priority = None;
            for (t, tr) in self.transitions.iter().enumerate() {
                if let LegacyTiming::Immediate { priority, .. } = tr.timing {
                    if self.enabled(t, &m) {
                        best_priority =
                            Some(best_priority.map_or(priority, |b: u32| b.max(priority)));
                    }
                }
            }
            let Some(best) = best_priority else {
                out.push((m, p));
                continue;
            };
            let firing: Vec<(usize, f64)> = self
                .transitions
                .iter()
                .enumerate()
                .filter_map(|(t, tr)| match tr.timing {
                    LegacyTiming::Immediate { weight, priority }
                        if priority == best && self.enabled(t, &m) =>
                    {
                        Some((t, weight))
                    }
                    _ => None,
                })
                .collect();
            let total_weight: f64 = firing.iter().map(|(_, w)| w).sum();
            for (t, w) in firing {
                let next = self.fire(t, &m);
                stack.push((next, p * w / total_weight, depth + 1));
            }
        }
        let mut merged: HashMap<Marking, f64> = HashMap::new();
        for (m, p) in out {
            *merged.entry(m).or_insert(0.0) += p;
        }
        Ok(merged.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M/M/1/K queue: one place, arrival inhibited at capacity.
    fn mm1k(lambda: f64, mu: f64, k: u32) -> LegacySpn {
        LegacySpn {
            num_places: 1,
            initial: vec![0],
            transitions: vec![
                LegacyTransition {
                    timing: LegacyTiming::Timed(lambda),
                    inputs: vec![],
                    outputs: vec![(0, 1)],
                    inhibitors: vec![(0, k)],
                },
                LegacyTransition {
                    timing: LegacyTiming::Timed(mu),
                    inputs: vec![(0, 1)],
                    outputs: vec![],
                    inhibitors: vec![],
                },
            ],
        }
    }

    #[test]
    fn legacy_mm1k_matches_closed_form() {
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve_with(&LegacyReachOptions::default()).unwrap();
        assert_eq!(solved.num_markings(), 4);
        let pi = solved.ctmc().steady_state().unwrap();
        let rho: f64 = 0.5;
        let z: f64 = (0..4).map(|n| rho.powi(n)).sum();
        for (i, m) in solved.markings().iter().enumerate() {
            let expect = rho.powi(m[0] as i32) / z;
            assert!((pi[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn legacy_cap_and_loop_guards_fire() {
        let unbounded = LegacySpn {
            num_places: 1,
            initial: vec![0],
            transitions: vec![LegacyTransition {
                timing: LegacyTiming::Timed(1.0),
                inputs: vec![],
                outputs: vec![(0, 1)],
                inhibitors: vec![],
            }],
        };
        let opts = LegacyReachOptions {
            max_markings: 10,
            ..Default::default()
        };
        assert!(unbounded.solve_with(&opts).is_err());

        let looping = LegacySpn {
            num_places: 1,
            initial: vec![1],
            transitions: vec![LegacyTransition {
                timing: LegacyTiming::Immediate {
                    weight: 1.0,
                    priority: 0,
                },
                inputs: vec![(0, 1)],
                outputs: vec![(0, 1)],
                inhibitors: vec![],
            }],
        };
        assert!(looping.solve_with(&LegacyReachOptions::default()).is_err());
    }
}
