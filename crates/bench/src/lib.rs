//! # reliab-bench
//!
//! Shared model constructors for the experiment-regeneration binary
//! (`repro`) and the Criterion benches. Every table and figure of the
//! tutorial reconstruction (E1–E14, see `EXPERIMENTS.md`) can be
//! regenerated with
//!
//! ```text
//! cargo run -p reliab-bench --bin repro            # all experiments
//! cargo run -p reliab-bench --bin repro -- e4 e9   # a subset
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use reliab_core::Result;
use reliab_ftree::{FaultTree, FaultTreeBuilder, FtNode, VariableOrdering};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};
use reliab_rbd::{Block, Rbd, RbdBuilder};

/// Builds a heterogeneous series-of-parallel-pairs RBD with `n` pairs
/// (`2n` components): the E14 scaling family. Component availabilities
/// vary per pair so the CTMC cannot be lumped.
///
/// # Errors
///
/// Propagates RBD construction errors.
pub fn scaling_rbd(n_pairs: usize) -> Result<(Rbd, Vec<f64>)> {
    let mut b = RbdBuilder::new();
    let mut blocks = Vec::with_capacity(n_pairs);
    let mut avail = Vec::with_capacity(2 * n_pairs);
    for i in 0..n_pairs {
        let c1 = b.component(&format!("pair{i}-a"));
        let c2 = b.component(&format!("pair{i}-b"));
        blocks.push(Block::parallel_of(&[c1, c2]));
        let a = 0.95 + 0.04 * (i as f64 / n_pairs.max(1) as f64);
        avail.push(a);
        avail.push(a - 0.01);
    }
    Ok((b.build(Block::series(blocks))?, avail))
}

/// The same system as a flat CTMC: each of the `2n` components fails
/// and repairs independently (rates derived from the availabilities
/// with a fixed repair rate), and the state is the full up/down
/// vector — `4^n` states, the state-space explosion of E14.
///
/// Returns the chain and its "system up" states.
///
/// # Errors
///
/// Propagates CTMC construction errors.
pub fn scaling_ctmc(n_pairs: usize) -> Result<(Ctmc, Vec<StateId>)> {
    let (_, avail) = scaling_rbd(n_pairs)?;
    let n_comp = 2 * n_pairs;
    let mu = 1.0f64;
    let lambdas: Vec<f64> = avail.iter().map(|a| mu * (1.0 - a) / a).collect();
    let mut b = CtmcBuilder::new();
    let n_states = 1usize << n_comp;
    let ids: Vec<StateId> = (0..n_states).map(|s| b.state(&format!("s{s:b}"))).collect();
    for s in 0..n_states {
        for (c, &lambda) in lambdas.iter().enumerate() {
            let bit = 1usize << c;
            if s & bit == 0 {
                // component c up: may fail
                b.transition(ids[s], ids[s | bit], lambda)?;
            } else {
                b.transition(ids[s], ids[s & !bit], mu)?;
            }
        }
    }
    // Up: every pair has at least one up component (bit clear = up).
    let up: Vec<StateId> = (0..n_states)
        .filter(|s| {
            (0..n_pairs).all(|p| {
                let a = 1usize << (2 * p);
                let bb = 1usize << (2 * p + 1);
                (s & a == 0) || (s & bb == 0)
            })
        })
        .map(|s| ids[s])
        .collect();
    Ok((b.build()?, up))
}

/// Builds the interleaved fault tree used for the BDD
/// variable-ordering ablation: OR of `n` AND pairs whose events are
/// declared in an ordering-hostile interleaved order.
///
/// # Errors
///
/// Propagates construction errors.
pub fn ordering_ablation_tree(n: usize, ordering: VariableOrdering) -> Result<FaultTree> {
    let mut b = FaultTreeBuilder::new();
    let a: Vec<_> = (0..n).map(|i| b.basic_event(&format!("a{i}"))).collect();
    let c: Vec<_> = (0..n).map(|i| b.basic_event(&format!("b{i}"))).collect();
    let top = FtNode::or((0..n).map(|i| FtNode::and_of(&[a[i], c[i]])).collect());
    b.build_with_ordering(top, ordering)
}

/// Builds a birth–death CTMC with `n` states (used by solver benches).
///
/// # Errors
///
/// Propagates construction errors.
pub fn birth_death(n: usize, lambda: f64, mu: f64) -> Result<Ctmc> {
    let mut b = CtmcBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    for w in states.windows(2) {
        b.transition(w[0], w[1], lambda)?;
        b.transition(w[1], w[0], mu)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_family_agrees_between_routes() {
        for n in 1..=4 {
            let (rbd, avail) = scaling_rbd(n).unwrap();
            let a_rbd = rbd.availability(&avail).unwrap();
            let (ctmc, up) = scaling_ctmc(n).unwrap();
            let a_ctmc = ctmc.steady_state_probability_of(&up).unwrap();
            assert!(
                (a_rbd - a_ctmc).abs() < 1e-9,
                "n = {n}: RBD {a_rbd} vs CTMC {a_ctmc}"
            );
        }
    }

    #[test]
    fn ctmc_state_count_explodes() {
        assert_eq!(scaling_ctmc(3).unwrap().0.num_states(), 64);
        assert_eq!(scaling_ctmc(5).unwrap().0.num_states(), 1024);
    }

    #[test]
    fn ordering_ablation_sizes_differ() {
        let decl = ordering_ablation_tree(8, VariableOrdering::Declaration).unwrap();
        let dfs = ordering_ablation_tree(8, VariableOrdering::DepthFirst).unwrap();
        assert!(dfs.bdd_size() < decl.bdd_size());
    }

    #[test]
    fn birth_death_builds() {
        let c = birth_death(50, 1.0, 2.0).unwrap();
        assert_eq!(c.num_states(), 50);
    }
}
