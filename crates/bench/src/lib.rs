//! # reliab-bench
//!
//! Shared model constructors for the experiment-regeneration binary
//! (`repro`) and the Criterion benches. Every table and figure of the
//! tutorial reconstruction (E1–E14, see `EXPERIMENTS.md`) can be
//! regenerated with
//!
//! ```text
//! cargo run -p reliab-bench --bin repro            # all experiments
//! cargo run -p reliab-bench --bin repro -- e4 e9   # a subset
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod legacy_bdd;
pub mod legacy_reach;

use reliab_core::Result;
use reliab_ftree::{FaultTree, FaultTreeBuilder, FtNode, VariableOrdering};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};
use reliab_rbd::{Block, Rbd, RbdBuilder};
use reliab_spn::{Spn, SpnBuilder};

/// Builds a heterogeneous series-of-parallel-pairs RBD with `n` pairs
/// (`2n` components): the E14 scaling family. Component availabilities
/// vary per pair so the CTMC cannot be lumped.
///
/// # Errors
///
/// Propagates RBD construction errors.
pub fn scaling_rbd(n_pairs: usize) -> Result<(Rbd, Vec<f64>)> {
    let mut b = RbdBuilder::new();
    let mut blocks = Vec::with_capacity(n_pairs);
    let mut avail = Vec::with_capacity(2 * n_pairs);
    for i in 0..n_pairs {
        let c1 = b.component(&format!("pair{i}-a"));
        let c2 = b.component(&format!("pair{i}-b"));
        blocks.push(Block::parallel_of(&[c1, c2]));
        let a = 0.95 + 0.04 * (i as f64 / n_pairs.max(1) as f64);
        avail.push(a);
        avail.push(a - 0.01);
    }
    Ok((b.build(Block::series(blocks))?, avail))
}

/// The same system as a flat CTMC: each of the `2n` components fails
/// and repairs independently (rates derived from the availabilities
/// with a fixed repair rate), and the state is the full up/down
/// vector — `4^n` states, the state-space explosion of E14.
///
/// Returns the chain and its "system up" states.
///
/// # Errors
///
/// Propagates CTMC construction errors.
pub fn scaling_ctmc(n_pairs: usize) -> Result<(Ctmc, Vec<StateId>)> {
    let (_, avail) = scaling_rbd(n_pairs)?;
    let n_comp = 2 * n_pairs;
    let mu = 1.0f64;
    let lambdas: Vec<f64> = avail.iter().map(|a| mu * (1.0 - a) / a).collect();
    let mut b = CtmcBuilder::new();
    let n_states = 1usize << n_comp;
    let ids: Vec<StateId> = (0..n_states).map(|s| b.state(&format!("s{s:b}"))).collect();
    for s in 0..n_states {
        for (c, &lambda) in lambdas.iter().enumerate() {
            let bit = 1usize << c;
            if s & bit == 0 {
                // component c up: may fail
                b.transition(ids[s], ids[s | bit], lambda)?;
            } else {
                b.transition(ids[s], ids[s & !bit], mu)?;
            }
        }
    }
    // Up: every pair has at least one up component (bit clear = up).
    let up: Vec<StateId> = (0..n_states)
        .filter(|s| {
            (0..n_pairs).all(|p| {
                let a = 1usize << (2 * p);
                let bb = 1usize << (2 * p + 1);
                (s & a == 0) || (s & bb == 0)
            })
        })
        .map(|s| ids[s])
        .collect();
    Ok((b.build()?, up))
}

/// Builds the interleaved fault tree used for the BDD
/// variable-ordering ablation: OR of `n` AND pairs whose events are
/// declared in an ordering-hostile interleaved order.
///
/// # Errors
///
/// Propagates construction errors.
pub fn ordering_ablation_tree(n: usize, ordering: VariableOrdering) -> Result<FaultTree> {
    let mut b = FaultTreeBuilder::new();
    let a: Vec<_> = (0..n).map(|i| b.basic_event(&format!("a{i}"))).collect();
    let c: Vec<_> = (0..n).map(|i| b.basic_event(&format!("b{i}"))).collect();
    let top = FtNode::or((0..n).map(|i| FtNode::and_of(&[a[i], c[i]])).collect());
    b.build_with_ordering(top, ordering)
}

/// Builds the large synthetic "aircraft-class" fault tree used by the
/// BDD kernel benches: `units` line-replaceable units, each the OR of
/// five redundant component pairs (AND) and two simplex components
/// (12 basic events per unit); units group into 10-unit subsystems
/// tripped by 2-of-10 voting, and the top event is the OR of the
/// subsystems. At `units = 900` the tree has 10 800 basic events —
/// the scale at which kernel-level table/cache/GC behavior dominates.
///
/// Event probabilities are deterministic (a fixed multiplicative hash
/// of the event index spread over `[1e-4, 1.1e-3)`), so every build is
/// reproducible without a random-number dependency.
///
/// Returns the builder (events declared), the top gate, and the
/// per-event probability vector.
pub fn boeing_class_tree(units: usize) -> (FaultTreeBuilder, FtNode, Vec<f64>) {
    let mut b = FaultTreeBuilder::new();
    let mut probs = Vec::with_capacity(units * 12);
    let p_next = |probs: &mut Vec<f64>| {
        let j = probs.len() as u64;
        probs.push(1e-4 + 1e-3 * ((j.wrapping_mul(2654435761) % 997) as f64 / 997.0));
    };
    let mut unit_nodes = Vec::with_capacity(units);
    for u in 0..units {
        let mut inputs = Vec::with_capacity(7);
        for i in 0..5 {
            let a = b.basic_event(&format!("u{u}p{i}a"));
            let c = b.basic_event(&format!("u{u}p{i}b"));
            p_next(&mut probs);
            p_next(&mut probs);
            inputs.push(FtNode::and_of(&[a, c]));
        }
        for s in 0..2 {
            let e = b.basic_event(&format!("u{u}s{s}"));
            p_next(&mut probs);
            inputs.push(e.into());
        }
        unit_nodes.push(FtNode::or(inputs));
    }
    let subsystems: Vec<FtNode> = unit_nodes
        .chunks(10)
        .map(|chunk| {
            if chunk.len() >= 2 {
                FtNode::KOfN {
                    k: 2,
                    inputs: chunk.to_vec(),
                }
            } else {
                chunk[0].clone()
            }
        })
        .collect();
    let top = if subsystems.len() == 1 {
        subsystems.into_iter().next().expect("at least one unit")
    } else {
        FtNode::or(subsystems)
    };
    (b, top, probs)
}

/// Compiles a fault-tree gate expression on the frozen pre-rework
/// kernel, using declaration ordering (event index = BDD variable).
///
/// The accumulation order mirrors `reliab-ftree`'s compiler exactly, so
/// for a fixed ordering both kernels build the same canonical DAG and
/// produce bitwise-identical probabilities — the equivalence the
/// `bench_bdd` binary asserts before reporting a speedup.
pub fn compile_legacy(bdd: &mut legacy_bdd::Bdd, node: &FtNode) -> legacy_bdd::NodeId {
    match node {
        FtNode::Basic(e) => bdd.var(e.index() as u32).expect("event in range"),
        FtNode::Or(inputs) => {
            let mut acc = legacy_bdd::NodeId::FALSE;
            for i in inputs {
                let x = compile_legacy(bdd, i);
                acc = bdd.or(acc, x);
            }
            acc
        }
        FtNode::And(inputs) => {
            let mut acc = legacy_bdd::NodeId::TRUE;
            for i in inputs {
                let x = compile_legacy(bdd, i);
                acc = bdd.and(acc, x);
            }
            acc
        }
        FtNode::KOfN { k, inputs } => {
            let xs: Vec<legacy_bdd::NodeId> =
                inputs.iter().map(|i| compile_legacy(bdd, i)).collect();
            bdd.at_least_k(&xs, *k)
        }
    }
}

/// Builds the three-stage tandem queueing SPN used by the `reach`
/// benches: arrivals feed stage 1, stage-2 completions pass through an
/// immediate 0.7/0.3 forward/rework routing split, and every stage is
/// capacity-bounded at `capacity` via inhibitor arcs. The routing place
/// is vanishing, so the tangible state space is exactly
/// `(capacity + 1)³` markings — `capacity = 48` gives the ≥10⁵-marking
/// net behind `BENCH_reach.json`.
///
/// # Errors
///
/// Propagates SPN construction errors.
pub fn tandem_spn(capacity: u32) -> Result<Spn> {
    let mut b = SpnBuilder::new();
    let q1 = b.place("stage1", 0);
    let q2 = b.place("stage2", 0);
    let q3 = b.place("stage3", 0);
    let route = b.place("routing", 0);
    let arrive = b.timed("arrive", 1.0);
    b.output_arc(arrive, q1, 1)
        .inhibitor_arc(arrive, q1, capacity);
    let serve1 = b.timed("serve1", 2.0);
    b.input_arc(serve1, q1, 1)
        .output_arc(serve1, q2, 1)
        .inhibitor_arc(serve1, q2, capacity);
    let serve2 = b.timed("serve2", 3.0);
    b.input_arc(serve2, q2, 1).output_arc(serve2, route, 1);
    let forward = b.immediate("forward", 0.7, 0);
    b.input_arc(forward, route, 1)
        .output_arc(forward, q3, 1)
        .inhibitor_arc(forward, q3, capacity);
    let rework = b.immediate("rework", 0.3, 0);
    b.input_arc(rework, route, 1).output_arc(rework, q2, 1);
    let serve3 = b.timed("serve3", 4.0);
    b.input_arc(serve3, q3, 1);
    b.build()
}

/// The same tandem net in the frozen legacy generator's representation
/// (identical place order, so the two generators' marking sets are
/// directly comparable).
pub fn tandem_legacy(capacity: u32) -> legacy_reach::LegacySpn {
    use legacy_reach::{LegacySpn, LegacyTiming, LegacyTransition};
    let (q1, q2, q3, route) = (0usize, 1usize, 2usize, 3usize);
    let timed = |rate: f64,
                 inputs: Vec<(usize, u32)>,
                 outputs: Vec<(usize, u32)>,
                 inhibitors: Vec<(usize, u32)>| LegacyTransition {
        timing: LegacyTiming::Timed(rate),
        inputs,
        outputs,
        inhibitors,
    };
    let immediate = |weight: f64,
                     inputs: Vec<(usize, u32)>,
                     outputs: Vec<(usize, u32)>,
                     inhibitors: Vec<(usize, u32)>| LegacyTransition {
        timing: LegacyTiming::Immediate {
            weight,
            priority: 0,
        },
        inputs,
        outputs,
        inhibitors,
    };
    LegacySpn {
        num_places: 4,
        initial: vec![0, 0, 0, 0],
        transitions: vec![
            timed(1.0, vec![], vec![(q1, 1)], vec![(q1, capacity)]),
            timed(2.0, vec![(q1, 1)], vec![(q2, 1)], vec![(q2, capacity)]),
            timed(3.0, vec![(q2, 1)], vec![(route, 1)], vec![]),
            immediate(0.7, vec![(route, 1)], vec![(q3, 1)], vec![(q3, capacity)]),
            immediate(0.3, vec![(route, 1)], vec![(q2, 1)], vec![]),
            timed(4.0, vec![(q3, 1)], vec![], vec![]),
        ],
    }
}

/// Builds a wide workstation-farm simulator for the DES benches:
/// `n_ws` workstations of which `k` must be up, in series with one
/// file server. Exponential failures, lognormal repairs (cv² = 4) —
/// a non-Markovian system only simulation can solve, sized so each
/// replication generates thousands of events.
///
/// # Panics
///
/// Panics on degenerate parameters (`k > n_ws`); bench-only helper.
pub fn wide_wfs_simulator(n_ws: usize, k: usize) -> reliab_sim::SystemSimulator {
    use reliab_dist::{Exponential, LogNormal};
    assert!(k >= 1 && k <= n_ws, "need 1 <= k <= n_ws");
    let mut sim = reliab_sim::SystemSimulator::new(move |up: &[bool]| {
        up[n_ws] && up[..n_ws].iter().filter(|&&u| u).count() >= k
    });
    for i in 0..n_ws {
        // Spread the failure rates so component streams desynchronize.
        let mttf = 400.0 + 10.0 * i as f64;
        sim.component(
            Box::new(Exponential::new(1.0 / mttf).expect("positive rate")),
            Box::new(LogNormal::from_mean_cv2(5.0, 4.0).expect("valid lognormal")),
        );
    }
    sim.component(
        Box::new(Exponential::new(1.0 / 2000.0).expect("positive rate")),
        Box::new(LogNormal::from_mean_cv2(4.0, 4.0).expect("valid lognormal")),
    );
    sim
}

/// Builds a birth–death CTMC with `n` states (used by solver benches).
///
/// # Errors
///
/// Propagates construction errors.
pub fn birth_death(n: usize, lambda: f64, mu: f64) -> Result<Ctmc> {
    let mut b = CtmcBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    for w in states.windows(2) {
        b.transition(w[0], w[1], lambda)?;
        b.transition(w[1], w[0], mu)?;
    }
    b.build()
}

/// Detected logical core count, `1` when detection fails. Recorded in
/// every `BENCH_*.json` so readers (and `--check` gating) can tell a
/// real parallel speedup from single-CPU scheduling noise.
#[must_use]
pub fn detected_cpu_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` once under a freshly installed
/// [`reliab_obs::ProfileSubscriber`] and returns the aggregated
/// per-phase breakdown (name, call count, total/self wall time) as a
/// JSON array for embedding in a `BENCH_*.json` record.
///
/// The pass is untimed: call it after all timed measurements so the
/// tracing overhead stays off the clock. Clears *all* installed
/// subscribers afterwards, so only use it from bench binaries that own
/// the process.
pub fn profiled_phases(f: impl FnOnce()) -> reliab_spec::json::JsonValue {
    use reliab_spec::json::{self, JsonValue};

    let profiler = std::sync::Arc::new(reliab_obs::ProfileSubscriber::new());
    reliab_obs::install_subscriber(profiler.clone());
    f();
    reliab_obs::clear_subscribers();
    let rows = profiler
        .profile()
        .rows
        .into_iter()
        .map(|row| {
            json::object(vec![
                ("phase", row.name.as_str().into()),
                ("count", JsonValue::Number(row.count as f64)),
                ("total_us", JsonValue::Number(row.total_us as f64)),
                ("self_us", JsonValue::Number(row.self_us as f64)),
            ])
        })
        .collect();
    JsonValue::Array(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_family_agrees_between_routes() {
        for n in 1..=4 {
            let (rbd, avail) = scaling_rbd(n).unwrap();
            let a_rbd = rbd.availability(&avail).unwrap();
            let (ctmc, up) = scaling_ctmc(n).unwrap();
            let a_ctmc = ctmc.steady_state_probability_of(&up).unwrap();
            assert!(
                (a_rbd - a_ctmc).abs() < 1e-9,
                "n = {n}: RBD {a_rbd} vs CTMC {a_ctmc}"
            );
        }
    }

    #[test]
    fn ctmc_state_count_explodes() {
        assert_eq!(scaling_ctmc(3).unwrap().0.num_states(), 64);
        assert_eq!(scaling_ctmc(5).unwrap().0.num_states(), 1024);
    }

    #[test]
    fn ordering_ablation_sizes_differ() {
        let decl = ordering_ablation_tree(8, VariableOrdering::Declaration).unwrap();
        let dfs = ordering_ablation_tree(8, VariableOrdering::DepthFirst).unwrap();
        assert!(dfs.bdd_size() < decl.bdd_size());
    }

    #[test]
    fn birth_death_builds() {
        let c = birth_death(50, 1.0, 2.0).unwrap();
        assert_eq!(c.num_states(), 50);
    }

    #[test]
    fn boeing_tree_has_expected_scale() {
        let (_, _, probs) = boeing_class_tree(25);
        assert_eq!(probs.len(), 25 * 12);
        assert!(probs.iter().all(|&p| (1e-4..2e-3).contains(&p)));
    }

    #[test]
    fn tandem_generators_agree() {
        // Both routes on the same net: identical tangible marking sets
        // and matching steady-state measures (state numbering differs,
        // so the comparison goes through sorted markings and a
        // numbering-independent reward).
        let capacity = 3;
        let new = tandem_spn(capacity).unwrap();
        let new_solved = new.solve().unwrap();
        let legacy = tandem_legacy(capacity);
        let legacy_solved = legacy
            .solve_with(&legacy_reach::LegacyReachOptions::default())
            .unwrap();
        let expect = (capacity as usize + 1).pow(3);
        assert_eq!(new_solved.num_markings(), expect);
        assert_eq!(legacy_solved.num_markings(), expect);
        let mut a: Vec<_> = new_solved.markings().to_vec();
        let mut b: Vec<_> = legacy_solved.markings().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        let mean_new = new_solved
            .steady_state_expected_reward(|m| f64::from(m[2]))
            .unwrap();
        let pi = legacy_solved.ctmc().steady_state().unwrap();
        let mean_legacy: f64 = legacy_solved
            .markings()
            .iter()
            .zip(&pi)
            .map(|(m, &p)| p * f64::from(m[2]))
            .sum();
        assert!(
            (mean_new - mean_legacy).abs() < 1e-9,
            "stage-3 mean: new {mean_new} vs legacy {mean_legacy}"
        );
        assert!(new_solved.reach_stats().vanishing_eliminated > 0);
    }

    #[test]
    fn legacy_and_new_kernels_agree_bitwise() {
        // Same tree, same declaration ordering: the two kernels build
        // the same canonical DAG, so the probability must be bitwise
        // identical — the equivalence underlying every speedup claim.
        let (b, top, probs) = boeing_class_tree(25);
        let mut legacy = legacy_bdd::Bdd::new(probs.len() as u32);
        let legacy_top = compile_legacy(&mut legacy, &top);
        let q_legacy = legacy.probability(legacy_top, &probs).unwrap();
        let ft = b
            .build_with_ordering(top, VariableOrdering::Declaration)
            .unwrap();
        let q_new = ft.top_event_probability(&probs).unwrap();
        assert_eq!(q_legacy.to_bits(), q_new.to_bits());
        assert!(q_legacy > 0.0 && q_legacy < 1.0);
    }
}
