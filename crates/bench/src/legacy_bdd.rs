//! The pre-optimization BDD kernel, frozen for benchmarking.
//!
//! This is a copy of `reliab-bdd` as it stood before the
//! arena/unique-table/GC rework (SipHash `HashMap`s for hash consing
//! and the ITE computed-table, unbounded cache, no reclamation, no
//! reordering), kept so the `bdd_kernel` Criterion suite and the
//! `bench_bdd` binary can measure the new kernel against the exact
//! code it replaced on identical inputs. Do not improve it.
//!
//! ```
//! use reliab_bench::legacy_bdd::Bdd;
//!
//! # fn main() -> Result<(), reliab_bench::legacy_bdd::BddError> {
//! let mut bdd = Bdd::new(2);
//! let a = bdd.var(0)?;
//! let b = bdd.var(1)?;
//! let f = bdd.or(a, b);
//! let p = bdd.probability(f, &[0.1, 0.2])?;
//! assert!((p - 0.28).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;

/// Errors from the BDD layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable index at or beyond the declared variable count.
    VariableOutOfRange {
        /// Offending index.
        var: u32,
        /// Declared count.
        nvars: u32,
    },
    /// A probability vector whose length disagrees with the variable
    /// count, or entries outside `[0, 1]`.
    BadProbabilities(String),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::VariableOutOfRange { var, nvars } => {
                write!(f, "variable {var} out of range (nvars = {nvars})")
            }
            BddError::BadProbabilities(m) => write!(f, "bad probability vector: {m}"),
        }
    }
}

impl std::error::Error for BddError {}

/// Handle to a BDD node inside a [`Bdd`] manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant FALSE function.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant TRUE function.
    pub const TRUE: NodeId = NodeId(1);

    fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    low: NodeId,
    high: NodeId,
}

/// Operation counters and table sizes of a [`Bdd`] manager — the
/// observability surface consumed by `SolveReport` stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct BddStats {
    /// Nodes allocated in the arena, including the two terminals.
    pub arena_nodes: usize,
    /// Entries in the unique (hash-consing) table.
    pub unique_entries: usize,
    /// Entries in the ITE computed-table.
    pub ite_cache_entries: usize,
    /// ITE computed-table lookups since construction.
    pub ite_cache_lookups: u64,
    /// ITE computed-table hits since construction.
    pub ite_cache_hits: u64,
}

/// An ROBDD manager over a fixed set of ordered variables.
///
/// Variable `0` is the topmost in the ordering. Choosing a good order
/// is the caller's job (see `reliab-ftree`'s DFS heuristic); the
/// manager itself keeps the order fixed.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
    nvars: u32,
    ite_lookups: u64,
    ite_hits: u64,
}

impl Bdd {
    /// Creates a manager for `nvars` Boolean variables.
    pub fn new(nvars: u32) -> Self {
        let sentinel = Node {
            var: u32::MAX,
            low: NodeId::FALSE,
            high: NodeId::FALSE,
        };
        Bdd {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            nvars,
            ite_lookups: 0,
            ite_hits: 0,
        }
    }

    /// Declared variable count.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// Total nodes allocated in the arena (diagnostic; includes the two
    /// terminals).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Emits a `bdd.ite` summary trace event and flushes the manager's
    /// operation counters into the global metrics registry (counters
    /// `bdd.ite.lookups` / `bdd.ite.hits`, histogram
    /// `bdd.arena_nodes`). Solver front-ends call this once per
    /// completed solve; near-free when observability is disabled.
    pub fn record_observability(&self) {
        if reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.ite",
                &[
                    ("lookups", self.ite_lookups.into()),
                    ("hits", self.ite_hits.into()),
                    ("nodes", self.nodes.len().into()),
                ],
            );
        }
        if reliab_obs::metrics_enabled() {
            reliab_obs::counter_add("bdd.ite.lookups", self.ite_lookups);
            reliab_obs::counter_add("bdd.ite.hits", self.ite_hits);
            reliab_obs::registry()
                .histogram_with_buckets(
                    "bdd.arena_nodes",
                    &[
                        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
                    ],
                )
                .observe(self.nodes.len() as f64);
        }
    }

    /// Current table sizes and operation counters.
    pub fn stats(&self) -> BddStats {
        BddStats {
            arena_nodes: self.nodes.len(),
            unique_entries: self.unique.len(),
            ite_cache_entries: self.ite_cache.len(),
            ite_cache_lookups: self.ite_lookups,
            ite_cache_hits: self.ite_hits,
        }
    }

    /// Returns the node for a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn var(&mut self, var: u32) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        Ok(self.mk(var, NodeId::FALSE, NodeId::TRUE))
    }

    /// Returns the node for the negation of a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn nvar(&mut self, var: u32) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        Ok(self.mk(var, NodeId::TRUE, NodeId::FALSE))
    }

    fn topvar(&self, f: NodeId) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn cofactors(&self, f: NodeId, v: u32) -> (NodeId, NodeId) {
        if f.is_terminal() || self.topvar(f) != v {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.low, n.high)
        }
    }

    fn mk(&mut self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        if let Some(&id) = self.unique.get(&(var, low, high)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), id);
        id
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)` — the universal connective.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return f;
        }
        self.ite_lookups += 1;
        // Progress event for long BDD compilations: one structured
        // event per 1024 ITE lookups (tracking node growth and cache
        // effectiveness over time), emitted only while tracing — the
        // hot path pays one mask-compare plus a relaxed atomic load.
        if self.ite_lookups & 0x3FF == 0 && reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.ite",
                &[
                    ("lookups", self.ite_lookups.into()),
                    ("hits", self.ite_hits.into()),
                    ("nodes", self.nodes.len().into()),
                ],
            );
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.ite_hits += 1;
            return r;
        }
        let v = [f, g, h]
            .iter()
            .filter(|n| !n.is_terminal())
            .map(|n| self.topvar(*n))
            .min()
            .expect("at least f is non-terminal");
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::FALSE, NodeId::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Conjunction over an iterator (TRUE for empty input).
    pub fn and_all<I: IntoIterator<Item = NodeId>>(&mut self, items: I) -> NodeId {
        items
            .into_iter()
            .fold(NodeId::TRUE, |acc, x| self.and(acc, x))
    }

    /// Disjunction over an iterator (FALSE for empty input).
    pub fn or_all<I: IntoIterator<Item = NodeId>>(&mut self, items: I) -> NodeId {
        items
            .into_iter()
            .fold(NodeId::FALSE, |acc, x| self.or(acc, x))
    }

    /// At-least-`k`-of the given inputs true.
    ///
    /// Builds the standard threshold network with a dynamic-programming
    /// table over (index, still-needed) pairs.
    pub fn at_least_k(&mut self, inputs: &[NodeId], k: usize) -> NodeId {
        if k == 0 {
            return NodeId::TRUE;
        }
        if k > inputs.len() {
            return NodeId::FALSE;
        }
        // table[j] = "at least j of inputs[i..] are true", built backwards.
        let n = inputs.len();
        let mut table: Vec<NodeId> = (0..=k)
            .map(|j| if j == 0 { NodeId::TRUE } else { NodeId::FALSE })
            .collect();
        for i in (0..n).rev() {
            // new[j] = ite(inputs[i], old[j-1], old[j])  (for j >= 1)
            for j in (1..=k.min(n - i)).rev() {
                table[j] = self.ite(inputs[i], table[j - 1], table[j]);
            }
        }
        table[k]
    }

    /// Restricts `f` by fixing `var := val`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn restrict(&mut self, f: NodeId, var: u32, val: bool) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        let mut memo = HashMap::new();
        Ok(self.restrict_rec(f, var, val, &mut memo))
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: u32,
        val: bool,
        memo: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let r = if n.var == var {
            if val {
                n.high
            } else {
                n.low
            }
        } else if n.var > var {
            // var does not appear below f (ordering), nothing to do.
            f
        } else {
            let lo = self.restrict_rec(n.low, var, val, memo);
            let hi = self.restrict_rec(n.high, var, val, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Evaluates `f` under a complete truth assignment.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::BadProbabilities`] if the assignment length
    /// differs from the variable count.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> Result<bool, BddError> {
        if assignment.len() != self.nvars as usize {
            return Err(BddError::BadProbabilities(format!(
                "assignment length {} != nvars {}",
                assignment.len(),
                self.nvars
            )));
        }
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        Ok(cur == NodeId::TRUE)
    }

    /// Exact probability that `f` is true, given independent per-variable
    /// probabilities `p[i] = P(x_i = true)`.
    ///
    /// Linear in the number of reachable nodes (memoized Shannon
    /// expansion) — the reason BDDs beat cut-set inclusion–exclusion on
    /// large trees.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::BadProbabilities`] on a length mismatch or an
    /// entry outside `[0, 1]`.
    pub fn probability(&self, f: NodeId, p: &[f64]) -> Result<f64, BddError> {
        if p.len() != self.nvars as usize {
            return Err(BddError::BadProbabilities(format!(
                "probability vector length {} != nvars {}",
                p.len(),
                self.nvars
            )));
        }
        for (i, &q) in p.iter().enumerate() {
            if !q.is_finite() || !(0.0..=1.0).contains(&q) {
                return Err(BddError::BadProbabilities(format!(
                    "p[{i}] = {q} outside [0,1]"
                )));
            }
        }
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        Ok(self.prob_rec(f, p, &mut memo))
    }

    fn prob_rec(&self, f: NodeId, p: &[f64], memo: &mut HashMap<NodeId, f64>) -> f64 {
        if f == NodeId::FALSE {
            return 0.0;
        }
        if f == NodeId::TRUE {
            return 1.0;
        }
        if let Some(&v) = memo.get(&f) {
            return v;
        }
        let n = self.nodes[f.0 as usize];
        let q = p[n.var as usize];
        let v = q * self.prob_rec(n.high, p, memo) + (1.0 - q) * self.prob_rec(n.low, p, memo);
        memo.insert(f, v);
        v
    }

    /// Birnbaum importance (partial derivative) of every variable:
    /// `∂P(f)/∂p_i = P(f | x_i = 1) - P(f | x_i = 0)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Bdd::probability`] / [`Bdd::restrict`] errors.
    pub fn birnbaum(&mut self, f: NodeId, p: &[f64]) -> Result<Vec<f64>, BddError> {
        let mut out = Vec::with_capacity(self.nvars as usize);
        for v in 0..self.nvars {
            let f1 = self.restrict(f, v, true)?;
            let f0 = self.restrict(f, v, false)?;
            out.push(self.probability(f1, p)? - self.probability(f0, p)?);
        }
        Ok(out)
    }

    /// Number of BDD nodes reachable from `f` (excluding terminals) —
    /// the usual size metric for ordering-heuristic comparisons.
    pub fn node_count(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.0 as usize];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    /// Minimal solutions of a **monotone** (coherent) function: the
    /// inclusion-minimal sets of variables whose joint truth forces
    /// `f` true — i.e. the minimal cut sets when `f` is a failure
    /// function over component-failure variables.
    ///
    /// Rauzy's algorithm: one memoized pass over the BDD, so the cost
    /// is polynomial in BDD size times output size — this is the route
    /// that scales when explicit top-down expansion (MOCUS) explodes.
    ///
    /// The result is only meaningful for monotone `f` (no negated
    /// variables influence the function); callers guarantee that by
    /// construction (fault trees / RBDs without NOT gates).
    pub fn minimal_solutions(&self, f: NodeId) -> Vec<Vec<u32>> {
        let mut memo: HashMap<NodeId, Vec<std::collections::BTreeSet<u32>>> = HashMap::new();
        let sets = self.min_sol_rec(f, &mut memo);
        let mut out: Vec<Vec<u32>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out
    }

    fn min_sol_rec(
        &self,
        f: NodeId,
        memo: &mut HashMap<NodeId, Vec<std::collections::BTreeSet<u32>>>,
    ) -> Vec<std::collections::BTreeSet<u32>> {
        use std::collections::BTreeSet;
        if f == NodeId::FALSE {
            return Vec::new();
        }
        if f == NodeId::TRUE {
            return vec![BTreeSet::new()];
        }
        if let Some(r) = memo.get(&f) {
            return r.clone();
        }
        let n = self.nodes[f.0 as usize];
        let low = self.min_sol_rec(n.low, memo);
        let high = self.min_sol_rec(n.high, memo);
        let mut result = low.clone();
        for h in high {
            // Keep {v} ∪ h only if no low-solution is a subset of it
            // (those already fire without v).
            if !low.iter().any(|l| l.is_subset(&h)) {
                let mut s = h;
                s.insert(n.var);
                result.push(s);
            }
        }
        memo.insert(f, result.clone());
        result
    }

    /// Enumerates the satisfying paths of `f` as partial assignments
    /// `(var, value)` — used by the sum-of-disjoint-products bound
    /// machinery and for debugging small models.
    ///
    /// The paths are disjoint by construction (they follow distinct BDD
    /// branches), so their probabilities sum to `P(f)`.
    pub fn satisfying_paths(&self, f: NodeId) -> Vec<Vec<(u32, bool)>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.paths_rec(f, &mut prefix, &mut out);
        out
    }

    fn paths_rec(&self, f: NodeId, prefix: &mut Vec<(u32, bool)>, out: &mut Vec<Vec<(u32, bool)>>) {
        if f == NodeId::FALSE {
            return;
        }
        if f == NodeId::TRUE {
            out.push(prefix.clone());
            return;
        }
        let n = self.nodes[f.0 as usize];
        prefix.push((n.var, false));
        self.paths_rec(n.low, prefix, out);
        prefix.pop();
        prefix.push((n.var, true));
        self.paths_rec(n.high, prefix, out);
        prefix.pop();
    }
}
