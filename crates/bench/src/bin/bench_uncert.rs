//! `bench-uncert` — end-to-end uncertainty-propagation benchmark
//! producing the committed `BENCH_uncert.json` performance record.
//!
//! Solves an `"uncertainty"` spec wrapping a birth–death CTMC: every
//! Monte-Carlo sample re-solves the inner chain with rates drawn from
//! gamma priors, on one worker thread and on four. Before any speedup
//! is reported the run asserts the scenario layer's reproducibility
//! guarantee: the solved measures JSON — mean, standard deviation,
//! percentile interval — is bitwise identical at 1, 2, and 4 workers,
//! because sampling is a pure function of `(seed, sample index)`.
//!
//! ```text
//! cargo run --release -p reliab-bench --bin bench-uncert              # full run, writes BENCH_uncert.json
//! cargo run --release -p reliab-bench --bin bench-uncert -- --quick   # CI-sized budget, no file written
//! cargo run --release -p reliab-bench --bin bench-uncert -- --quick --check BENCH_uncert.json
//! ```
//!
//! Options:
//!
//! * `--quick` — smaller chain and sample budget; skips writing the
//!   output file unless `--out` is given.
//! * `--out FILE` — where to write the JSON record (default
//!   `BENCH_uncert.json`; full mode only unless given explicitly).
//! * `--check FILE` — compare against a committed baseline: exit 1 if
//!   the 4-worker time relative to the 1-worker time regressed by more
//!   than 2x the baseline's par-to-seq ratio. The ratio gate is
//!   skipped (with a note) when only one CPU is detected: a par/seq
//!   ratio measured without real parallelism is scheduling noise, not
//!   signal.
//!
//! Exit status: 0 on success, 1 on a `--check` regression or an
//! equivalence failure, 2 on usage errors.

use std::time::Instant;

use reliab_bench::{detected_cpu_cores, profiled_phases};
use reliab_spec::json::{self, JsonValue};
use reliab_spec::{solve_str_with, SolveOptions, SolveReport};

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench-uncert [--quick] [--out FILE] [--check FILE]");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => match it.next() {
                Some(p) => args.out = Some(p.clone()),
                None => usage(2),
            },
            "--check" => match it.next() {
                Some(p) => args.check = Some(p.clone()),
                None => usage(2),
            },
            "-h" | "--help" => usage(0),
            _ => usage(2),
        }
    }
    args
}

/// An `"uncertainty"` spec over an `n`-state birth–death availability
/// chain (the lower half of the states up, the rest degraded), with
/// gamma priors on the first failure and repair rates and `jobs`
/// worker threads.
fn uncert_doc(n: usize, samples: usize, jobs: usize) -> String {
    let states: Vec<String> = (0..n).map(|i| format!("\"s{i}\"")).collect();
    let up: Vec<String> = (0..n / 2).map(|i| format!("\"s{i}\"")).collect();
    // Load factor 0.9: the stationary mass decays slowly, so the
    // availability stays comfortably inside [0, 1] at any chain size.
    let mut transitions = Vec::with_capacity(2 * (n - 1));
    for i in 0..n - 1 {
        transitions.push(format!(
            r#"{{"from": "s{i}", "to": "s{}", "rate": 0.45}}"#,
            i + 1
        ));
        transitions.push(format!(
            r#"{{"from": "s{}", "to": "s{i}", "rate": 0.5}}"#,
            i + 1
        ));
    }
    format!(
        r#"{{"uncertainty": {{
            "model": {{"ctmc": {{"states": [{states}],
                               "transitions": [{transitions}],
                               "up_states": [{up}]}}}},
            "parameters": [
              {{"path": "ctmc.transitions.0.rate",
                "prior": {{"gamma": {{"shape": 9.0, "rate": 20.0}}}}}},
              {{"path": "ctmc.transitions.1.rate",
                "prior": {{"gamma": {{"shape": 10.0, "rate": 20.0}}}}}}],
            "measure": "availability",
            "samples": {samples},
            "seed": 48879,
            "jobs": {jobs},
            "latin_hypercube": true}}}}"#,
        states = states.join(","),
        transitions = transitions.join(","),
        up = up.join(","),
    )
}

/// Minimum self-reported wall time over `reps` runs of `f` — minimum,
/// not mean, because scheduling noise only ever adds time.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> (u128, T)) -> (u128, T) {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..reps {
        let (ns, out) = f();
        if best.as_ref().is_none_or(|(b, _)| ns < *b) {
            best = Some((ns, out));
        }
    }
    best.expect("reps > 0")
}

/// Canonical measures JSON — the whole solved record except stats
/// (which carry wall time and the worker count, the fields allowed to
/// differ between runs).
fn measures_json(report: &SolveReport) -> String {
    report.measures.to_json().to_json()
}

fn main() {
    let args = parse_args();
    let (n_states, samples, reps) = if args.quick {
        (48usize, 96usize, 3)
    } else {
        (96usize, 384usize, 3)
    };
    eprintln!(
        "bench-uncert: {n_states}-state birth-death chain, 2 gamma priors, \
         {samples} Latin-hypercube samples, {reps} reps"
    );

    let opts = SolveOptions::default();

    // Sequential reference: one worker thread.
    let seq_doc = uncert_doc(n_states, samples, 1);
    let (seq_ns, seq_report) = time_min(reps, || {
        let t = Instant::now();
        let report = solve_str_with(&seq_doc, &opts).expect("valid spec");
        (t.elapsed().as_nanos(), report)
    });
    let seq_measures = measures_json(&seq_report);
    eprintln!("  1 worker:  {:.3} ms", seq_ns as f64 / 1e6);

    // Equivalence gate: the threaded sampler must reproduce the
    // one-worker measures bitwise at every probed worker count.
    for jobs in [2usize, 4] {
        let par = solve_str_with(&uncert_doc(n_states, samples, jobs), &opts).expect("valid spec");
        if measures_json(&par) != seq_measures {
            eprintln!("EQUIVALENCE FAILURE: {jobs}-worker propagation differs from sequential");
            std::process::exit(1);
        }
    }

    // Parallel sampler, 4 workers.
    let par_doc = uncert_doc(n_states, samples, 4);
    let (par_ns, _) = time_min(reps, || {
        let t = Instant::now();
        let report = solve_str_with(&par_doc, &opts).expect("valid spec");
        (t.elapsed().as_nanos(), report)
    });
    eprintln!("  4 workers: {:.3} ms", par_ns as f64 / 1e6);

    let speedup = seq_ns as f64 / par_ns as f64;
    let samples_per_sec = samples as f64 / (seq_ns as f64 / 1e9);
    let mean = json::get_path(&seq_report.measures.to_json(), "uncertainty.mean")
        .and_then(JsonValue::as_f64)
        .expect("uncertainty measures carry a mean");
    let cpu_cores = detected_cpu_cores();
    eprintln!("  parallel:  bitwise identical at 2 and 4 workers");
    eprintln!("  rate:      {samples_per_sec:.0} model solves/s sequential");
    eprintln!("  speedup:   {speedup:.2}x ({cpu_cores} CPU detected)");

    // Untimed instrumented pass: per-phase wall-time breakdown of one
    // sequential solve, after every timed measurement is in.
    let phases = profiled_phases(|| {
        let _ = solve_str_with(&seq_doc, &opts);
    });

    let record = json::object(vec![
        ("bench", "uncert".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        ("cpu_cores", JsonValue::Number(cpu_cores as f64)),
        ("states", JsonValue::Number(n_states as f64)),
        ("samples", JsonValue::Number(samples as f64)),
        ("reps", JsonValue::Number(reps as f64)),
        ("seq_ns", JsonValue::Number(seq_ns as f64)),
        ("par_ns", JsonValue::Number(par_ns as f64)),
        ("speedup", JsonValue::Number(speedup)),
        (
            "samples_per_sec_sequential",
            JsonValue::Number(samples_per_sec),
        ),
        ("mean_availability", JsonValue::Number(mean)),
        ("parallel_bitwise_equal", JsonValue::Bool(true)),
        ("phases", phases),
    ]);

    if let Some(baseline_path) = &args.check {
        if cpu_cores <= 1 {
            eprintln!("  check skipped: {cpu_cores} CPU detected, par/seq speedup ratio is noise");
        } else {
            match check_regression(baseline_path, seq_ns as f64, par_ns as f64) {
                Ok(msg) => eprintln!("  {msg}"),
                Err(msg) => {
                    eprintln!("REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }

    let out_path = match (&args.out, args.quick) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_uncert.json".to_owned()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = record.to_json_pretty();
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  wrote {path}");
    } else {
        println!("{}", record.to_json_pretty());
    }
}

/// Compares this run against a committed baseline record. Machines
/// differ, so the comparison is relative: the ratio of parallel to
/// sequential time on *this* machine must not exceed 2x the same ratio
/// in the baseline. (Lower is better for the ratio; a ratio blowing up
/// means the threaded sampler stopped scaling.)
fn check_regression(path: &str, seq_ns: f64, par_ns: f64) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path} is missing numeric field '{key}'"))
    };
    let base_ratio = field("par_ns")? / field("seq_ns")?;
    let ratio = par_ns / seq_ns;
    if ratio > 2.0 * base_ratio {
        Err(format!(
            "par/seq ratio {ratio:.3} exceeds 2x baseline ratio {base_ratio:.3}"
        ))
    } else {
        Ok(format!(
            "check ok: par/seq ratio {ratio:.3} within 2x of baseline {base_ratio:.3}"
        ))
    }
}
