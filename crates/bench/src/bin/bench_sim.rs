//! `bench-sim` — end-to-end discrete-event simulation benchmark
//! producing the committed `BENCH_sim.json` performance record.
//!
//! Runs a fixed replication budget of the wide workstation-farm model
//! (see [`reliab_bench::wide_wfs_simulator`]; 100 components, 50-of-99
//! workstations in series with a file server, lognormal repairs) on the
//! sequential driver and on the 4-worker work-stealing driver. Before
//! any speedup is reported the run asserts the PR's reproducibility
//! guarantee: the full `SimReport` — point estimate, CI, event count,
//! trajectory — is bitwise identical at 1, 2, and 4 workers.
//!
//! ```text
//! cargo run --release -p reliab-bench --bin bench-sim              # full run, writes BENCH_sim.json
//! cargo run --release -p reliab-bench --bin bench-sim -- --quick   # CI-sized budget, no file written
//! cargo run --release -p reliab-bench --bin bench-sim -- --quick --check BENCH_sim.json
//! ```
//!
//! Options:
//!
//! * `--quick` — 64 replications with fewer repetitions; skips writing
//!   the output file unless `--out` is given.
//! * `--out FILE` — where to write the JSON record (default
//!   `BENCH_sim.json`; full mode only unless given explicitly).
//! * `--check FILE` — compare against a committed baseline: exit 1 if
//!   the parallel driver's time relative to the sequential driver
//!   regressed by more than 2x the baseline's par-to-seq ratio. The
//!   ratio gate is skipped (with a note) when only one CPU is
//!   detected: a par/seq ratio measured without real parallelism is
//!   scheduling noise, not signal.
//!
//! Exit status: 0 on success, 1 on a `--check` regression or an
//! equivalence failure, 2 on usage errors.

use std::time::Instant;

use reliab_bench::{detected_cpu_cores, profiled_phases, wide_wfs_simulator};
use reliab_sim::{Measure, SimOptions, SimReport};
use reliab_spec::json::{self, JsonValue};

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench-sim [--quick] [--out FILE] [--check FILE]");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => match it.next() {
                Some(p) => args.out = Some(p.clone()),
                None => usage(2),
            },
            "--check" => match it.next() {
                Some(p) => args.check = Some(p.clone()),
                None => usage(2),
            },
            "-h" | "--help" => usage(0),
            _ => usage(2),
        }
    }
    args
}

/// Minimum self-reported wall time over `reps` runs of `f` — minimum,
/// not mean, because scheduling noise only ever adds time.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> (u128, T)) -> (u128, T) {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..reps {
        let (ns, out) = f();
        if best.as_ref().is_none_or(|(b, _)| ns < *b) {
            best = Some((ns, out));
        }
    }
    best.expect("reps > 0")
}

/// Everything in a `SimReport` except `workers` — which records the
/// thread count and is the one field allowed to differ between runs.
fn results_equal(a: &SimReport, b: &SimReport) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.workers = 0;
    b.workers = 0;
    a == b
}

fn main() {
    let args = parse_args();
    let (replications, reps) = if args.quick {
        (64usize, 3)
    } else {
        (512usize, 3)
    };
    const N_WS: usize = 99;
    const K: usize = 50;
    const HORIZON: f64 = 2_000.0;
    eprintln!(
        "bench-sim: {}-component farm ({K}-of-{N_WS} + file server), \
         availability to t = {HORIZON}, {replications} replications, {reps} reps",
        N_WS + 1
    );

    // Simulator construction is identical for both routes and stays off
    // the clock. The budget is fixed (adaptive stopping off, one round)
    // so every timed run does exactly the same event-level work.
    let sim = wide_wfs_simulator(N_WS, K);
    let measure = Measure::Availability { horizon: HORIZON };
    let mut base_opts = SimOptions::default()
        .with_seed(0xBE9C_0002)
        .with_rel_precision(0.0)
        .with_max_replications(replications);
    base_opts.min_replications = replications;
    base_opts.round_replications = replications;

    // Sequential reference driver.
    let seq_opts = base_opts.clone();
    let (seq_ns, seq_report) = time_min(reps, || {
        let t = Instant::now();
        let report = sim.simulate(measure, &seq_opts).expect("valid simulation");
        (t.elapsed().as_nanos(), report)
    });
    eprintln!(
        "  sequential: {:.3} ms ({} events, point {:.6})",
        seq_ns as f64 / 1e6,
        seq_report.events,
        seq_report.interval.point
    );

    // Equivalence gate: the parallel driver must reproduce the
    // sequential report bitwise at every probed worker count.
    for jobs in [2usize, 4] {
        let par = sim
            .simulate(measure, &base_opts.clone().with_jobs(jobs))
            .expect("valid simulation");
        if !results_equal(&par, &seq_report) {
            eprintln!("EQUIVALENCE FAILURE: {jobs}-worker simulation differs from sequential");
            std::process::exit(1);
        }
    }

    // Parallel driver, 4 workers.
    let par_opts = base_opts.clone().with_jobs(4);
    let (par_ns, par_report) = time_min(reps, || {
        let t = Instant::now();
        let report = sim.simulate(measure, &par_opts).expect("valid simulation");
        (t.elapsed().as_nanos(), report)
    });
    eprintln!(
        "  4 workers:  {:.3} ms ({} events)",
        par_ns as f64 / 1e6,
        par_report.events
    );

    let speedup = seq_ns as f64 / par_ns as f64;
    let events_per_sec = seq_report.events as f64 / (seq_ns as f64 / 1e9);
    let cpu_cores = detected_cpu_cores();
    eprintln!("  parallel:   bitwise identical at 2 and 4 workers");
    eprintln!("  throughput: {events_per_sec:.0} events/s sequential");
    eprintln!("  speedup:    {speedup:.2}x ({cpu_cores} CPU detected)");

    // Untimed instrumented pass: per-phase wall-time breakdown of one
    // sequential solve, after every timed measurement is in.
    let phases = profiled_phases(|| {
        let _ = sim.simulate(measure, &seq_opts);
    });

    let record = json::object(vec![
        ("bench", "sim".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        ("cpu_cores", JsonValue::Number(cpu_cores as f64)),
        ("components", JsonValue::Number((N_WS + 1) as f64)),
        ("replications", JsonValue::Number(replications as f64)),
        ("reps", JsonValue::Number(reps as f64)),
        ("seq_ns", JsonValue::Number(seq_ns as f64)),
        ("par_ns", JsonValue::Number(par_ns as f64)),
        ("speedup", JsonValue::Number(speedup)),
        ("events", JsonValue::Number(seq_report.events as f64)),
        (
            "events_per_sec_sequential",
            JsonValue::Number(events_per_sec),
        ),
        ("point", JsonValue::Number(seq_report.interval.point)),
        (
            "ci_half_width",
            JsonValue::Number(seq_report.interval.upper - seq_report.interval.point),
        ),
        ("parallel_bitwise_equal", JsonValue::Bool(true)),
        ("phases", phases),
    ]);

    if let Some(baseline_path) = &args.check {
        if cpu_cores <= 1 {
            eprintln!("  check skipped: {cpu_cores} CPU detected, par/seq speedup ratio is noise");
        } else {
            match check_regression(baseline_path, seq_ns as f64, par_ns as f64) {
                Ok(msg) => eprintln!("  {msg}"),
                Err(msg) => {
                    eprintln!("REGRESSION: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }

    let out_path = match (&args.out, args.quick) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_sim.json".to_owned()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = record.to_json_pretty();
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  wrote {path}");
    } else {
        println!("{}", record.to_json_pretty());
    }
}

/// Compares this run against a committed baseline record. Machines
/// differ, so the comparison is relative: the ratio of parallel to
/// sequential time on *this* machine must not exceed 2x the same ratio
/// in the baseline. (Lower is better for the ratio; a ratio blowing up
/// means the parallel driver stopped scaling.)
fn check_regression(path: &str, seq_ns: f64, par_ns: f64) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path} is missing numeric field '{key}'"))
    };
    let base_ratio = field("par_ns")? / field("seq_ns")?;
    let ratio = par_ns / seq_ns;
    if ratio > 2.0 * base_ratio {
        Err(format!(
            "par/seq ratio {ratio:.3} exceeds 2x baseline ratio {base_ratio:.3}"
        ))
    } else {
        Ok(format!(
            "check ok: par/seq ratio {ratio:.3} within 2x of baseline {base_ratio:.3}"
        ))
    }
}
