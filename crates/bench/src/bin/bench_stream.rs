//! `bench-stream` — streaming large-model solver benchmark producing
//! the committed `BENCH_stream.json` performance record.
//!
//! Solves the steady state of the three-stage tandem queueing net (see
//! [`reliab_bench::tandem_spn`]) at a scale the materialized CSR path
//! cannot fit into the run's memory budget: only the packed marking
//! arena is generated, and the streaming tier regenerates generator
//! rows on demand. Before any number is reported the run asserts
//! equivalence on a reference net: the streamed steady state must match
//! the materialized in-core solver to 1e-8, and a tight budget that
//! forces partial slice caching must reproduce the full-cache result
//! bitwise.
//!
//! ```text
//! cargo run --release -p reliab-bench --bin bench-stream             # full run, writes BENCH_stream.json
//! cargo run --release -p reliab-bench --bin bench-stream -- --quick  # CI-sized net, no file written
//! cargo run --release -p reliab-bench --bin bench-stream -- --quick --check BENCH_stream.json
//! ```
//!
//! Options:
//!
//! * `--quick` — capacity-16 net (4 913 markings) with a scaled-down
//!   budget; skips writing the output file unless `--out` is given.
//! * `--out FILE` — where to write the JSON record (default
//!   `BENCH_stream.json`; full mode only unless given explicitly).
//! * `--check FILE` — compare against a committed baseline: exit 1 if
//!   the stream-to-materialized time ratio on the reference net
//!   regressed by more than 2x relative to the baseline's ratio (the
//!   timing gate is skipped on a single-CPU machine; the memory-ceiling
//!   assertion always runs).
//!
//! Exit status: 0 on success, 1 on a `--check` regression, an
//! equivalence failure or a memory-ceiling violation, 2 on usage
//! errors.

use std::time::Instant;

use reliab_bench::{detected_cpu_cores, profiled_phases, tandem_spn};
use reliab_spec::json::{self, JsonValue};
use reliab_spn::ReachabilityOptions;
use reliab_stream::{steady_state, ArenaRowSource, RowSource, StreamMethod, StreamOptions};

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench-stream [--quick] [--out FILE] [--check FILE]");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => match it.next() {
                Some(p) => args.out = Some(p.clone()),
                None => usage(2),
            },
            "--check" => match it.next() {
                Some(p) => args.check = Some(p.clone()),
                None => usage(2),
            },
            "-h" | "--help" => usage(0),
            _ => usage(2),
        }
    }
    args
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), `None` where the proc filesystem is absent.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// What materializing the same chain would keep resident at its peak:
/// the CSR build holds the triplet buffer and the finished CSR arrays
/// simultaneously, on top of the marking store and the exit-rate
/// vector. Computed from the *measured* arc count, so this is a floor
/// on the real footprint, not a guess.
fn materialized_peak_estimate(states: usize, arcs: u64, source_bytes: usize) -> u64 {
    let triplets = arcs * 16;
    let csr = arcs * 16 + (states as u64 + 1) * 8;
    triplets + csr + source_bytes as u64 + states as u64 * 8
}

fn main() {
    let args = parse_args();
    // Large net: 10^6 tangible markings in full mode. Reference net:
    // the BENCH_reach scale, where the materialized path still fits
    // comfortably and the 1e-8 differential can run.
    let (capacity, ref_capacity) = if args.quick { (16u32, 10u32) } else { (99, 48) };
    let markings = (capacity as usize + 1).pow(3);
    let ref_markings = (ref_capacity as usize + 1).pow(3);
    eprintln!(
        "bench-stream: tandem net, capacity {capacity}, {markings} markings (reference capacity \
         {ref_capacity}, {ref_markings} markings)"
    );

    let sopts = StreamOptions {
        tolerance: 1e-10,
        max_iterations: 100_000,
        method: StreamMethod::Sor,
        ..Default::default()
    };

    // ---- Large net under a budget the materialized path cannot meet.
    let net = tandem_spn(capacity).expect("net builds");
    let ropts = ReachabilityOptions {
        max_markings: markings + 1,
        ..Default::default()
    };
    let t = Instant::now();
    let space = net.tangible_space(&ropts).expect("bounded net");
    let space_ns = t.elapsed().as_nanos();
    assert_eq!(space.num_markings(), markings);
    let arcs = space.stats().arcs as u64;
    let source_bytes = space.resident_bytes();
    let estimate = materialized_peak_estimate(markings, arcs, source_bytes);
    // Budget: stream requirement (source + vectors + slice cache) plus
    // headroom, well below the materialized peak. The arithmetic is
    // asserted, not assumed.
    let stream_floor = source_bytes as u64 + 2 * 8 * markings as u64 + arcs * 16;
    let mem_budget = stream_floor + stream_floor / 8;
    eprintln!(
        "  space: {:.3} ms, {arcs} arcs, source {:.1} MiB; budget {:.1} MiB vs materialized \
         estimate {:.1} MiB",
        space_ns as f64 / 1e6,
        source_bytes as f64 / (1 << 20) as f64,
        mem_budget as f64 / (1 << 20) as f64,
        estimate as f64 / (1 << 20) as f64
    );
    if estimate <= mem_budget {
        eprintln!("SETUP FAILURE: the budget does not exclude the materialized path");
        std::process::exit(1);
    }

    let budget_opts = StreamOptions {
        mem_budget: Some(mem_budget as usize),
        ..sopts
    };
    let mut src = ArenaRowSource::new(&space);
    let t = Instant::now();
    let report = steady_state(&mut src, &budget_opts).expect("stream solve converges");
    let solve_ns = t.elapsed().as_nanos();
    let plan_peak = report.plan.peak_bytes();
    // Headline measure: steady-state mean stage-3 queue length (place
    // index 2 in `tandem_spn`'s declaration order).
    let stage3: f64 = report
        .pi
        .iter()
        .enumerate()
        .map(|(i, &p)| p * f64::from(space.marking(i as u32)[2]))
        .sum();
    eprintln!(
        "  stream solve: {:.3} ms, {} sweeps, residual {:.3e}, {} block(s) ({} cached), plan \
         peak {:.1} MiB, stage3 mean {stage3:.9}",
        solve_ns as f64 / 1e6,
        report.iterations,
        report.residual,
        report.plan.blocks,
        report.plan.cached_blocks,
        plan_peak as f64 / (1 << 20) as f64
    );
    if plan_peak > mem_budget {
        eprintln!("MEMORY FAILURE: plan peak {plan_peak} exceeds budget {mem_budget}");
        std::process::exit(1);
    }
    // Process-level ceiling: the streaming solve must not drag the
    // whole process past budget + fixed overhead (binary, allocator
    // slack, arena-growth transients). Snapshot before the reference
    // gates allocate anything.
    let rss_ceiling = mem_budget + (128 << 20);
    let peak_rss = peak_rss_bytes();
    if let Some(rss) = peak_rss {
        eprintln!(
            "  peak RSS: {:.1} MiB (ceiling {:.1} MiB)",
            rss as f64 / (1 << 20) as f64,
            rss_ceiling as f64 / (1 << 20) as f64
        );
        if rss > rss_ceiling {
            eprintln!("MEMORY FAILURE: peak RSS {rss} exceeds ceiling {rss_ceiling}");
            std::process::exit(1);
        }
    }
    drop(src);
    drop(space);

    // ---- Equivalence gate 1: streamed vs materialized on the
    // reference net, 1e-8.
    let ref_net = tandem_spn(ref_capacity).expect("net builds");
    let ref_ropts = ReachabilityOptions::default();
    let (mat_ns, pi_mat) = {
        let t = Instant::now();
        let solved = ref_net.solve_with(&ref_ropts).expect("bounded net");
        let pi = solved
            .ctmc()
            .steady_state_with(&reliab_markov::SteadyStateMethod::Sor(
                reliab_markov::IterativeOptions {
                    tolerance: sopts.tolerance,
                    max_iterations: sopts.max_iterations,
                    relaxation: 1.0,
                },
            ))
            .expect("materialized solve converges");
        (t.elapsed().as_nanos(), pi)
    };
    let ref_space = ref_net.tangible_space(&ref_ropts).expect("bounded net");
    let mut ref_src = ArenaRowSource::new(&ref_space);
    let t = Instant::now();
    let ref_report = steady_state(&mut ref_src, &sopts).expect("stream solve converges");
    let stream_ns = t.elapsed().as_nanos();
    let mut max_diff = 0.0f64;
    for (mat, streamed) in pi_mat.iter().zip(&ref_report.pi) {
        max_diff = max_diff.max((mat - streamed).abs());
    }
    eprintln!(
        "  reference: materialized {:.3} ms, streamed {:.3} ms, max |Δπ| {max_diff:.3e}",
        mat_ns as f64 / 1e6,
        stream_ns as f64 / 1e6
    );
    if max_diff > 1e-8 {
        eprintln!("EQUIVALENCE FAILURE: streamed π deviates by {max_diff:.3e} > 1e-8");
        std::process::exit(1);
    }

    // ---- Equivalence gate 2: a budget that forces partial slice
    // caching must reproduce the full-cache result bitwise.
    let ref_floor = ref_src.resident_bytes() as u64 + 2 * 8 * ref_markings as u64;
    let tight = StreamOptions {
        // Roughly a third of the slice store fits: multiple blocks,
        // some cached, the rest recomputed every sweep.
        mem_budget: Some((ref_floor + ref_report.plan.slice_bytes / 3) as usize),
        ..sopts
    };
    let tight_report = steady_state(&mut ref_src, &tight).expect("tight solve converges");
    if tight_report.pi != ref_report.pi || tight_report.iterations != ref_report.iterations {
        eprintln!("EQUIVALENCE FAILURE: partial-cache sweep is not bitwise equal to full-cache");
        std::process::exit(1);
    }
    eprintln!(
        "  partial cache: {} blocks ({} cached), bitwise equal",
        tight_report.plan.blocks, tight_report.plan.cached_blocks
    );

    let cpu_cores = detected_cpu_cores();
    let ratio = stream_ns as f64 / mat_ns as f64;
    eprintln!("  stream/materialized solve-time ratio: {ratio:.3} ({cpu_cores} CPU detected)");

    // Untimed instrumented pass over the reference streamed solve.
    let phases = profiled_phases(|| {
        let mut src = ArenaRowSource::new(&ref_space);
        let _ = steady_state(&mut src, &sopts);
    });

    let record = json::object(vec![
        ("bench", "stream".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        ("cpu_cores", JsonValue::Number(cpu_cores as f64)),
        ("capacity", JsonValue::Number(f64::from(capacity))),
        ("markings", JsonValue::Number(markings as f64)),
        ("arcs", JsonValue::Number(arcs as f64)),
        ("mem_budget_bytes", JsonValue::Number(mem_budget as f64)),
        (
            "materialized_estimate_bytes",
            JsonValue::Number(estimate as f64),
        ),
        ("space_ns", JsonValue::Number(space_ns as f64)),
        ("solve_ns", JsonValue::Number(solve_ns as f64)),
        ("iterations", JsonValue::Number(report.iterations as f64)),
        ("residual", JsonValue::Number(report.residual)),
        ("method", report.method.into()),
        ("blocks", JsonValue::Number(report.plan.blocks as f64)),
        (
            "cached_blocks",
            JsonValue::Number(report.plan.cached_blocks as f64),
        ),
        ("plan_peak_bytes", JsonValue::Number(plan_peak as f64)),
        (
            "peak_rss_bytes",
            peak_rss.map_or(JsonValue::Null, |r| JsonValue::Number(r as f64)),
        ),
        ("rss_ceiling_bytes", JsonValue::Number(rss_ceiling as f64)),
        ("stage3_mean_tokens", JsonValue::Number(stage3)),
        ("ref_capacity", JsonValue::Number(f64::from(ref_capacity))),
        ("ref_markings", JsonValue::Number(ref_markings as f64)),
        ("ref_materialized_ns", JsonValue::Number(mat_ns as f64)),
        ("ref_stream_ns", JsonValue::Number(stream_ns as f64)),
        ("ref_max_abs_diff", JsonValue::Number(max_diff)),
        ("partial_cache_bitwise_equal", JsonValue::Bool(true)),
        ("phases", phases),
    ]);

    if let Some(baseline_path) = &args.check {
        match check_regression(baseline_path, mat_ns as f64, stream_ns as f64, cpu_cores) {
            Ok(msg) => eprintln!("  {msg}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }

    let out_path = match (&args.out, args.quick) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_stream.json".to_owned()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = record.to_json_pretty();
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  wrote {path}");
    } else {
        println!("{}", record.to_json_pretty());
    }
}

/// Compares this run against a committed baseline record. Machines
/// differ, so the comparison is relative: the ratio of streamed to
/// materialized solve time on the reference net must not exceed 2x the
/// baseline's ratio. On a single-CPU runner scheduling noise swamps
/// the signal, so — as with the other bench gates — the timing check
/// is skipped there (the equivalence and memory assertions above have
/// already run unconditionally).
fn check_regression(
    path: &str,
    mat_ns: f64,
    stream_ns: f64,
    cpu_cores: usize,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path} is missing numeric field '{key}'"))
    };
    let base_ratio = field("ref_stream_ns")? / field("ref_materialized_ns")?;
    if cpu_cores == 1 {
        return Ok(format!(
            "check skipped: single CPU (baseline ratio {base_ratio:.3} not compared)"
        ));
    }
    let ratio = stream_ns / mat_ns;
    if ratio > 2.0 * base_ratio {
        Err(format!(
            "stream/materialized ratio {ratio:.3} exceeds 2x baseline ratio {base_ratio:.3}"
        ))
    } else {
        Ok(format!(
            "check ok: stream/materialized ratio {ratio:.3} within 2x of baseline {base_ratio:.3}"
        ))
    }
}
