//! `bench-bdd` — end-to-end BDD kernel benchmark producing the
//! committed `BENCH_bdd.json` performance record.
//!
//! Compiles the 10 800-event aircraft-class fault tree (see
//! [`reliab_bench::boeing_class_tree`]) and computes its exact top-event
//! probability on both the frozen pre-rework kernel and the current
//! one, with identical (declaration) variable ordering so both build
//! the same canonical DAG. The run aborts unless the two probabilities
//! are bitwise equal; only then is the speedup reported. A third timed
//! pass rebuilds the tree with the work-partitioned parallel apply at
//! 4 workers and aborts unless its probability bits *and* reduced node
//! count match the sequential build — the 1-vs-N determinism gate. A
//! final, untimed pass with GC disabled records how far the default
//! kernel's collection bounds the peak live-node count.
//!
//! ```text
//! cargo run --release -p reliab-bench --bin bench-bdd              # full run, writes BENCH_bdd.json
//! cargo run --release -p reliab-bench --bin bench-bdd -- --quick   # CI-sized tree, no file written
//! cargo run --release -p reliab-bench --bin bench-bdd -- --quick --check BENCH_bdd.json
//! ```
//!
//! Options:
//!
//! * `--quick` — 150-unit (1 800-event) tree with fewer repetitions;
//!   skips writing the output file unless `--out` is given.
//! * `--out FILE` — where to write the JSON record (default
//!   `BENCH_bdd.json`; full mode only unless given explicitly).
//! * `--check FILE` — compare against a committed baseline: exit 1 if
//!   the new kernel's wall time regressed by more than 3x relative to
//!   the baseline's ratio of new-kernel to legacy-kernel time, or if
//!   the 4-worker pass is more than 1.5x slower than sequential on a
//!   multi-CPU machine (the par timing gate is skipped on one CPU,
//!   where the ratio is pure scheduling noise; the bitwise 1-vs-4
//!   equivalence gate runs unconditionally, check mode or not).
//!
//! Exit status: 0 on success, 1 on a `--check` regression or an
//! equivalence failure, 2 on usage errors.

use std::time::Instant;

use reliab_bench::{
    boeing_class_tree, compile_legacy, detected_cpu_cores, legacy_bdd, profiled_phases,
};
use reliab_ftree::{CompileOptions, VariableOrdering};
use reliab_spec::json::{self, JsonValue};

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench-bdd [--quick] [--out FILE] [--check FILE]");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => match it.next() {
                Some(p) => args.out = Some(p.clone()),
                None => usage(2),
            },
            "--check" => match it.next() {
                Some(p) => args.check = Some(p.clone()),
                None => usage(2),
            },
            "-h" | "--help" => usage(0),
            _ => usage(2),
        }
    }
    args
}

/// Minimum self-reported wall time over `reps` runs of `f` — minimum,
/// not mean, because scheduling noise only ever adds time. The closure
/// times its own measured region so per-rep setup stays off the clock.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> (u128, T)) -> (u128, T) {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..reps {
        let (ns, out) = f();
        if best.as_ref().is_none_or(|(b, _)| ns < *b) {
            best = Some((ns, out));
        }
    }
    best.expect("reps > 0")
}

fn main() {
    let args = parse_args();
    let (units, reps) = if args.quick { (150, 3) } else { (900, 5) };
    let (_, _, probs) = boeing_class_tree(units);
    let nvars = probs.len();
    eprintln!("bench-bdd: {units} units, {nvars} basic events, {reps} reps");

    // Legacy kernel: BDD compile + exact probability. The fault-tree
    // construction itself (string formatting, gate allocation) is
    // identical for both kernels and happens outside the timer.
    let (legacy_ns, (legacy_compile_ns, q_legacy)) = time_min(reps, || {
        let (_, top, probs) = boeing_class_tree(units);
        let t = Instant::now();
        let mut bdd = legacy_bdd::Bdd::new(probs.len() as u32);
        let f = compile_legacy(&mut bdd, &top);
        let compile_ns = t.elapsed().as_nanos();
        let q = bdd.probability(f, &probs).expect("valid probabilities");
        (t.elapsed().as_nanos(), (compile_ns, q))
    });
    eprintln!(
        "  legacy kernel: {:.3} ms ({:.3} compile)",
        legacy_ns as f64 / 1e6,
        legacy_compile_ns as f64 / 1e6
    );

    // New kernel, same ordering, same scope.
    let (new_ns, (new_compile_ns, q_new, new_size, stats)) = time_min(reps, || {
        let (builder, top, probs) = boeing_class_tree(units);
        let t = Instant::now();
        let ft = builder
            .build_with_ordering(top, VariableOrdering::Declaration)
            .expect("tree compiles");
        let compile_ns = t.elapsed().as_nanos();
        let q = ft
            .top_event_probability(&probs)
            .expect("valid probabilities");
        (
            t.elapsed().as_nanos(),
            (compile_ns, q, ft.bdd_size(), ft.bdd_stats()),
        )
    });
    eprintln!(
        "  new kernel:    {:.3} ms ({:.3} compile)",
        new_ns as f64 / 1e6,
        new_compile_ns as f64 / 1e6
    );

    if q_legacy.to_bits() != q_new.to_bits() {
        eprintln!("EQUIVALENCE FAILURE: legacy {q_legacy:.17e} != new {q_new:.17e}");
        std::process::exit(1);
    }
    let speedup = legacy_ns as f64 / new_ns as f64;
    let cpu_cores = detected_cpu_cores();
    eprintln!("  probability:   {q_new:.12e} (bitwise equal)");
    eprintln!("  speedup:       {speedup:.2}x ({cpu_cores} CPU detected)");

    // Work-partitioned parallel apply at 4 workers. The reduced BDD is
    // canonical for a fixed (function, ordering), so both the top-event
    // probability bits and the reduced node count must match the
    // sequential build exactly; this gate runs on every invocation,
    // including single-CPU machines, because it checks determinism, not
    // speed.
    const PAR_JOBS: usize = 4;
    let (par_ns, (q_par, par_size, par_stats)) = time_min(reps, || {
        let (builder, top, probs) = boeing_class_tree(units);
        let opts = CompileOptions::new()
            .with_ordering(VariableOrdering::Declaration)
            .with_bdd_jobs(PAR_JOBS);
        let t = Instant::now();
        let ft = builder.build_with(top, &opts).expect("tree compiles");
        let q = ft
            .top_event_probability(&probs)
            .expect("valid probabilities");
        (t.elapsed().as_nanos(), (q, ft.bdd_size(), ft.bdd_stats()))
    });
    if q_new.to_bits() != q_par.to_bits() || new_size != par_size {
        eprintln!(
            "PARALLEL EQUIVALENCE FAILURE: sequential {q_new:.17e} ({new_size} nodes) \
             != {PAR_JOBS}-worker {q_par:.17e} ({par_size} nodes)"
        );
        std::process::exit(1);
    }
    let par_speedup = new_ns as f64 / par_ns as f64;
    eprintln!(
        "  parallel:      {:.3} ms at {PAR_JOBS} workers ({par_speedup:.2}x vs sequential, \
         {} partitioned applies, {} subproblems; bitwise equal)",
        par_ns as f64 / 1e6,
        par_stats.par_apply_calls,
        par_stats.par_subproblems
    );

    // Untimed instrumented pass: per-phase wall-time breakdown of one
    // compile + evaluation, after every timed measurement is in.
    let phases = profiled_phases(|| {
        let (builder, top, probs) = boeing_class_tree(units);
        let ft = builder
            .build_with_ordering(top, VariableOrdering::Declaration)
            .expect("tree compiles");
        let _ = ft.top_event_probability(&probs);
    });

    // GC pass: same tree with collection disabled, to show how far the
    // default kernel's GC bounds the peak live-node count. (The timed
    // run above uses the default threshold, so `stats` is the GC'd
    // side of the comparison.)
    let (builder, top, _) = boeing_class_tree(units);
    let nogc_opts = CompileOptions::new()
        .with_ordering(VariableOrdering::Declaration)
        .with_gc_node_threshold(usize::MAX);
    let nogc_ft = builder.build_with(top, &nogc_opts).expect("tree compiles");
    let nogc_stats = nogc_ft.bdd_stats();
    eprintln!(
        "  gc(default): peak live {} vs unbounded peak {} ({} runs, {} reclaimed)",
        stats.peak_live_nodes, nogc_stats.peak_live_nodes, stats.gc_runs, stats.gc_reclaimed
    );

    let record = json::object(vec![
        ("bench", "bdd_kernel".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        ("cpu_cores", JsonValue::Number(cpu_cores as f64)),
        ("units", JsonValue::Number(units as f64)),
        ("events", JsonValue::Number(nvars as f64)),
        ("reps", JsonValue::Number(reps as f64)),
        ("legacy_ns", JsonValue::Number(legacy_ns as f64)),
        ("new_ns", JsonValue::Number(new_ns as f64)),
        ("speedup", JsonValue::Number(speedup)),
        ("probability", JsonValue::Number(q_new)),
        ("bitwise_equal", JsonValue::Bool(true)),
        (
            "par",
            json::object(vec![
                ("bdd_jobs", JsonValue::Number(PAR_JOBS as f64)),
                ("par_ns", JsonValue::Number(par_ns as f64)),
                ("speedup_vs_sequential", JsonValue::Number(par_speedup)),
                ("bitwise_equal", JsonValue::Bool(true)),
                (
                    "par_apply_calls",
                    JsonValue::Number(par_stats.par_apply_calls as f64),
                ),
                (
                    "par_subproblems",
                    JsonValue::Number(par_stats.par_subproblems as f64),
                ),
            ]),
        ),
        (
            "new_stats",
            json::object(vec![
                ("bdd_nodes", JsonValue::Number(stats.arena_nodes as f64)),
                ("bdd_size", JsonValue::Number(new_size as f64)),
                (
                    "peak_live_nodes",
                    JsonValue::Number(stats.peak_live_nodes as f64),
                ),
                (
                    "ite_cache_lookups",
                    JsonValue::Number(stats.ite_cache_lookups as f64),
                ),
                (
                    "ite_cache_hits",
                    JsonValue::Number(stats.ite_cache_hits as f64),
                ),
                ("ite_hit_rate", JsonValue::Number(stats.ite_hit_rate())),
            ]),
        ),
        (
            "gc",
            json::object(vec![
                (
                    "peak_live_nodes",
                    JsonValue::Number(stats.peak_live_nodes as f64),
                ),
                (
                    "unbounded_peak_live_nodes",
                    JsonValue::Number(nogc_stats.peak_live_nodes as f64),
                ),
                ("gc_runs", JsonValue::Number(stats.gc_runs as f64)),
                ("gc_reclaimed", JsonValue::Number(stats.gc_reclaimed as f64)),
                ("gc_moved", JsonValue::Number(stats.gc_moved as f64)),
            ]),
        ),
        ("phases", phases),
    ]);

    if let Some(baseline_path) = &args.check {
        match check_regression(baseline_path, legacy_ns as f64, new_ns as f64) {
            Ok(msg) => eprintln!("  {msg}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
        if cpu_cores <= 1 {
            eprintln!(
                "  par timing check skipped: {cpu_cores} CPU detected, par/seq ratio is noise"
            );
        } else if (par_ns as f64) > 1.5 * new_ns as f64 {
            eprintln!(
                "REGRESSION: {PAR_JOBS}-worker pass {:.3} ms is >1.5x sequential {:.3} ms \
                 on a {cpu_cores}-CPU machine",
                par_ns as f64 / 1e6,
                new_ns as f64 / 1e6
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "  par check ok: {PAR_JOBS}-worker/sequential ratio {:.3} within 1.5x",
                par_ns as f64 / new_ns as f64
            );
        }
    }

    let out_path = match (&args.out, args.quick) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_bdd.json".to_owned()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = record.to_json_pretty();
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  wrote {path}");
    } else {
        println!("{}", record.to_json_pretty());
    }
}

/// Compares this run against a committed baseline record. Machines
/// differ, so the comparison is relative: the ratio of new-kernel to
/// legacy-kernel time on *this* machine must not exceed 3x the same
/// ratio in the baseline. Both kernels are single-threaded, so unlike
/// the par/seq gates in `bench-sim` / `bench-uncert` this one stays
/// meaningful on a single-CPU machine. The factor is 3x rather than
/// 2x because the committed baseline is a full-mode (900-unit) run
/// while CI checks quick mode (150 units), and the compact kernel's
/// locality/GC advantage grows with tree size: the quick-mode
/// new/legacy ratio sits near 2x the full-mode ratio even with no
/// regression at all.
fn check_regression(path: &str, legacy_ns: f64, new_ns: f64) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path} is missing numeric field '{key}'"))
    };
    let base_ratio = field("new_ns")? / field("legacy_ns")?;
    let ratio = new_ns / legacy_ns;
    if ratio > 3.0 * base_ratio {
        Err(format!(
            "new/legacy ratio {ratio:.3} exceeds 3x baseline ratio {base_ratio:.3}"
        ))
    } else {
        Ok(format!(
            "check ok: new/legacy ratio {ratio:.3} within 3x of baseline {base_ratio:.3}"
        ))
    }
}
