//! `bench-reach` — end-to-end SPN state-space generation benchmark
//! producing the committed `BENCH_reach.json` performance record.
//!
//! Generates the tangible reachability graph of the three-stage tandem
//! queueing net (see [`reliab_bench::tandem_spn`]; `(capacity + 1)³`
//! markings, immediate routing exercising vanishing elimination) with
//! both the frozen pre-rework generator and the current compact-store
//! generator. Before any speedup is reported the run asserts
//! equivalence: identical tangible marking sets, matching total
//! transition outflow, and — for the parallel path — a CTMC bitwise
//! identical to the sequential reference at every probed worker count.
//!
//! ```text
//! cargo run --release -p reliab-bench --bin bench-reach              # full run, writes BENCH_reach.json
//! cargo run --release -p reliab-bench --bin bench-reach -- --quick   # CI-sized net, no file written
//! cargo run --release -p reliab-bench --bin bench-reach -- --quick --check BENCH_reach.json
//! ```
//!
//! Options:
//!
//! * `--quick` — capacity-16 net (4 913 markings) with fewer
//!   repetitions; skips writing the output file unless `--out` is
//!   given.
//! * `--out FILE` — where to write the JSON record (default
//!   `BENCH_reach.json`; full mode only unless given explicitly).
//! * `--check FILE` — compare against a committed baseline: exit 1 if
//!   the new generator's wall time regressed by more than 2x relative
//!   to the baseline's ratio of new-generator to legacy-generator time.
//!
//! Exit status: 0 on success, 1 on a `--check` regression or an
//! equivalence failure, 2 on usage errors.

use std::time::Instant;

use reliab_bench::legacy_reach::LegacyReachOptions;
use reliab_bench::{detected_cpu_cores, profiled_phases, tandem_legacy, tandem_spn};
use reliab_spec::json::{self, JsonValue};
use reliab_spn::ReachabilityOptions;

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!("usage: bench-reach [--quick] [--out FILE] [--check FILE]");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => match it.next() {
                Some(p) => args.out = Some(p.clone()),
                None => usage(2),
            },
            "--check" => match it.next() {
                Some(p) => args.check = Some(p.clone()),
                None => usage(2),
            },
            "-h" | "--help" => usage(0),
            _ => usage(2),
        }
    }
    args
}

/// Minimum self-reported wall time over `reps` runs of `f` — minimum,
/// not mean, because scheduling noise only ever adds time.
fn time_min<T>(reps: usize, mut f: impl FnMut() -> (u128, T)) -> (u128, T) {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..reps {
        let (ns, out) = f();
        if best.as_ref().is_none_or(|(b, _)| ns < *b) {
            best = Some((ns, out));
        }
    }
    best.expect("reps > 0")
}

/// Sum of all off-diagonal generator rates — a state-numbering-
/// independent fingerprint of the transition structure.
fn total_outflow(ctmc: &reliab_markov::Ctmc) -> f64 {
    let g = ctmc.generator();
    let mut total = 0.0;
    for i in 0..g.nrows() {
        for (j, v) in g.row(i) {
            if j != i {
                total += v;
            }
        }
    }
    total
}

fn main() {
    let args = parse_args();
    let (capacity, reps) = if args.quick { (16u32, 3) } else { (48u32, 3) };
    let expected_markings = (capacity as usize + 1).pow(3);
    eprintln!(
        "bench-reach: tandem net, capacity {capacity}, {expected_markings} markings, {reps} reps"
    );

    // Legacy generator. Net construction is identical for both routes
    // and stays off the clock.
    let legacy_net = tandem_legacy(capacity);
    let legacy_opts = LegacyReachOptions::default();
    let (legacy_ns, legacy_solved) = time_min(reps, || {
        let t = Instant::now();
        let solved = legacy_net.solve_with(&legacy_opts).expect("bounded net");
        (t.elapsed().as_nanos(), solved)
    });
    eprintln!("  legacy generator: {:.3} ms", legacy_ns as f64 / 1e6);

    // New generator, sequential reference path.
    let new_net = tandem_spn(capacity).expect("net builds");
    let (new_ns, new_solved) = time_min(reps, || {
        let t = Instant::now();
        let solved = new_net.solve().expect("bounded net");
        (t.elapsed().as_nanos(), solved)
    });
    let stats = new_solved.reach_stats().clone();
    eprintln!(
        "  new generator:    {:.3} ms ({} markings, {} arcs, {} vanishing eliminated)",
        new_ns as f64 / 1e6,
        stats.markings,
        stats.arcs,
        stats.vanishing_eliminated
    );

    // Equivalence gate 1: identical tangible marking sets (numbering
    // differs between the routes, so compare sorted).
    if new_solved.num_markings() != expected_markings
        || legacy_solved.num_markings() != expected_markings
    {
        eprintln!(
            "EQUIVALENCE FAILURE: marking counts new {} / legacy {} / expected {expected_markings}",
            new_solved.num_markings(),
            legacy_solved.num_markings()
        );
        std::process::exit(1);
    }
    let mut new_markings = new_solved.markings().to_vec();
    let mut legacy_markings = legacy_solved.markings().to_vec();
    new_markings.sort();
    legacy_markings.sort();
    if new_markings != legacy_markings {
        eprintln!("EQUIVALENCE FAILURE: tangible marking sets differ");
        std::process::exit(1);
    }

    // Equivalence gate 2: matching total outflow (summation order
    // differs, so compare to relative fp tolerance).
    let flow_new = total_outflow(new_solved.ctmc());
    let flow_legacy = total_outflow(legacy_solved.ctmc());
    if ((flow_new - flow_legacy) / flow_legacy).abs() > 1e-9 {
        eprintln!("EQUIVALENCE FAILURE: outflow new {flow_new:.17e} != legacy {flow_legacy:.17e}");
        std::process::exit(1);
    }

    // Equivalence gate 3: the parallel path is bitwise identical to the
    // sequential reference.
    for jobs in [2usize, 4] {
        let opts = ReachabilityOptions {
            jobs,
            ..Default::default()
        };
        let par = new_net.solve_with(&opts).expect("bounded net");
        if par.markings() != new_solved.markings()
            || par.ctmc().generator() != new_solved.ctmc().generator()
            || par.initial_distribution() != new_solved.initial_distribution()
        {
            eprintln!("EQUIVALENCE FAILURE: {jobs}-worker generation differs from sequential");
            std::process::exit(1);
        }
    }

    let speedup = legacy_ns as f64 / new_ns as f64;
    let cpu_cores = detected_cpu_cores();
    eprintln!("  outflow:          {flow_new:.12e} (matches legacy)");
    eprintln!("  parallel:         bitwise identical at 2 and 4 workers");
    eprintln!("  speedup:          {speedup:.2}x ({cpu_cores} CPU detected)");

    // Untimed instrumented pass: per-phase wall-time breakdown of one
    // sequential generation, after every timed measurement is in.
    let phases = profiled_phases(|| {
        let _ = new_net.solve();
    });

    let record = json::object(vec![
        ("bench", "reach".into()),
        ("mode", if args.quick { "quick" } else { "full" }.into()),
        ("cpu_cores", JsonValue::Number(cpu_cores as f64)),
        ("capacity", JsonValue::Number(f64::from(capacity))),
        ("markings", JsonValue::Number(expected_markings as f64)),
        ("reps", JsonValue::Number(reps as f64)),
        ("legacy_ns", JsonValue::Number(legacy_ns as f64)),
        ("new_ns", JsonValue::Number(new_ns as f64)),
        ("speedup", JsonValue::Number(speedup)),
        ("total_outflow", JsonValue::Number(flow_new)),
        ("parallel_bitwise_equal", JsonValue::Bool(true)),
        (
            "new_stats",
            json::object(vec![
                ("arcs", JsonValue::Number(stats.arcs as f64)),
                (
                    "vanishing_eliminated",
                    JsonValue::Number(stats.vanishing_eliminated as f64),
                ),
                ("shards", JsonValue::Number(stats.shards as f64)),
                (
                    "max_shard_occupancy",
                    JsonValue::Number(stats.max_shard_occupancy as f64),
                ),
            ]),
        ),
        ("phases", phases),
    ]);

    if let Some(baseline_path) = &args.check {
        match check_regression(baseline_path, legacy_ns as f64, new_ns as f64) {
            Ok(msg) => eprintln!("  {msg}"),
            Err(msg) => {
                eprintln!("REGRESSION: {msg}");
                std::process::exit(1);
            }
        }
    }

    let out_path = match (&args.out, args.quick) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_reach.json".to_owned()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = record.to_json_pretty();
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("  wrote {path}");
    } else {
        println!("{}", record.to_json_pretty());
    }
}

/// Compares this run against a committed baseline record. Machines
/// differ, so the comparison is relative: the ratio of new-generator
/// to legacy-generator time on *this* machine must not exceed 2x the
/// same ratio in the baseline. Both routes are sequential, so unlike
/// the par/seq gates in `bench-sim` / `bench-uncert` this one stays
/// meaningful on a single-CPU machine.
fn check_regression(path: &str, legacy_ns: f64, new_ns: f64) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let field = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{path} is missing numeric field '{key}'"))
    };
    let base_ratio = field("new_ns")? / field("legacy_ns")?;
    let ratio = new_ns / legacy_ns;
    if ratio > 2.0 * base_ratio {
        Err(format!(
            "new/legacy ratio {ratio:.3} exceeds 2x baseline ratio {base_ratio:.3}"
        ))
    } else {
        Ok(format!(
            "check ok: new/legacy ratio {ratio:.3} within 2x of baseline {base_ratio:.3}"
        ))
    }
}
