//! Regenerates every table/figure of the tutorial reconstruction
//! (experiments E1–E17 in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p reliab-bench --bin repro            # everything
//! cargo run -p reliab-bench --bin repro -- e5 e9   # a subset
//! ```

use std::time::Instant;

use reliab_bench::{scaling_ctmc, scaling_rbd};
use reliab_core::{downtime_minutes_per_year, Result};
use reliab_dist::{Exponential, Lifetime, Weibull};
use reliab_hier::FixedPointOptions;
use reliab_markov::TransientOptions;
use reliab_models::crn::{crn_bounds_sweep, crn_exact_unreliability, crn_mesh};
use reliab_models::multiproc::{
    coverage_ctmc, coverage_mttf_closed_form, multiproc_fault_tree, multiproc_probs,
    MultiprocParams,
};
use reliab_models::rejuv::{optimal_rejuvenation, rejuvenation_measures, RejuvParams};
use reliab_models::router::{router_availability, RouterParams};
use reliab_models::sip::{sip_availability, SipParams};
use reliab_models::two_comp::{two_component_availability, RepairPolicy};
use reliab_models::wfs::{wfs_availability, wfs_ctmc, WfsParams};
use reliab_rbd::{Block, RbdBuilder};
use reliab_semimarkov::renewal::{optimal_policy_age, policy_measures, PolicyCosts};
use reliab_sim::SystemSimulator;
use reliab_spn::SpnBuilder;
use reliab_uncert::{propagate, rate_posterior, PropagationOptions};

type Experiment = (&'static str, fn() -> Result<()>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all: Vec<Experiment> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e19", e19),
    ];
    let selected: Vec<_> = if args.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|(n, _)| args.contains(&n.to_string()))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; expected ids e1..e19");
        std::process::exit(2);
    }
    for (name, f) in selected {
        println!(
            "\n================ {} ================",
            name.to_uppercase()
        );
        if let Err(e) = f() {
            eprintln!("{name} FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// E1 — WFS availability table (RBD vs CTMC).
fn e1() -> Result<()> {
    println!("workstations & file server: steady-state availability");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "ws_mttf", "ws_mttr", "fs_mttf", "fs_mttr", "A (RBD)", "A (CTMC)", "min/yr"
    );
    for (ws_mttr, fs_mttr) in [(4.0, 2.0), (12.0, 2.0), (4.0, 8.0), (24.0, 24.0)] {
        let p = WfsParams {
            ws_mttr,
            fs_mttr,
            ..Default::default()
        };
        let a_rbd = wfs_availability(&p)?;
        let (ctmc, up) = wfs_ctmc(&p)?;
        let a_ctmc = ctmc.steady_state_probability_of(&up)?;
        println!(
            "{:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>12.8} {:>12.8} {:>12.2}",
            p.ws_mttf,
            ws_mttr,
            p.fs_mttf,
            fs_mttr,
            a_rbd,
            a_ctmc,
            downtime_minutes_per_year(a_rbd)?
        );
    }
    Ok(())
}

/// E2 — k-of-n reliability curves.
fn e2() -> Result<()> {
    println!("R(t) of k-of-n systems, exponential components (lambda = 1e-3/h)");
    let d = Exponential::new(1e-3)?;
    let configs = [(1usize, 2usize), (2, 3), (3, 5), (2, 4)];
    print!("{:>8}", "t (h)");
    for (k, n) in configs {
        print!(" {:>10}", format!("{k}-of-{n}"));
    }
    println!();
    for t in (0..=10).map(|i| i as f64 * 200.0) {
        print!("{t:>8.0}");
        for (k, n) in configs {
            let mut b = RbdBuilder::new();
            let c = b.components("c", n);
            let rbd = b.build(Block::k_of_n_components(k, &c))?;
            let lifetimes: Vec<&dyn Lifetime> = vec![&d; n];
            print!(" {:>10.6}", rbd.reliability(&lifetimes, t)?);
        }
        println!();
    }
    Ok(())
}

/// E3 — multiprocessor fault tree: cut sets, probability, importance.
fn e3() -> Result<()> {
    let p = MultiprocParams::default();
    let (mut ft, _) = multiproc_fault_tree(&p)?;
    let probs = multiproc_probs(&p);
    let q = ft.top_event_probability(&probs)?;
    let bound = ft.rare_event_bound(&probs, 10_000)?;
    println!("fault-tolerant multiprocessor (2 CPUs, 2-of-3 memories, bus)");
    println!("  exact top-event probability: {q:.6e}");
    println!("  rare-event upper bound:      {bound:.6e}");
    println!("  minimal cut sets:");
    for cut in ft.minimal_cut_sets(10_000)? {
        let names: Vec<&str> = cut.events().iter().map(|&e| ft.event_name(e)).collect();
        println!("    {{{}}}", names.join(", "));
    }
    println!(
        "  {:<8} {:>10} {:>12} {:>16}",
        "event", "birnbaum", "criticality", "fussell-vesely"
    );
    for m in ft.importance(&probs)? {
        println!(
            "  {:<8} {:>10.5} {:>12.5} {:>16.5}",
            m.component, m.birnbaum, m.criticality, m.fussell_vesely
        );
    }
    Ok(())
}

/// E4 — CRN bounding sweep.
fn e4() -> Result<()> {
    let g = crn_mesh(3, 4)?;
    let q = 1e-3;
    println!(
        "mesh CRN ({} nodes, {} edges), q = {q}: truncation sweep",
        g.num_nodes(),
        g.num_edges()
    );
    let exact = crn_exact_unreliability(&g, q)?;
    println!("  exact unreliability: {exact:.6e}");
    println!(
        "  {:>6} {:>9} {:>13} {:>13} {:>11}",
        "order", "cuts", "lower", "upper", "gap"
    );
    for row in crn_bounds_sweep(&g, q, &[2, 3, 4, 5, 6])? {
        println!(
            "  {:>6} {:>9} {:>13.6e} {:>13.6e} {:>11.2e}",
            row.max_order,
            row.cut_sets_used,
            row.bounds.lower,
            row.bounds.upper,
            row.bounds.gap()
        );
    }
    Ok(())
}

/// E5 — two-component availability: shared vs independent repair.
fn e5() -> Result<()> {
    println!("two-component parallel system: repair-dependence penalty");
    println!(
        "{:>8} {:>8} {:>13} {:>13} {:>11} {:>11}",
        "lambda", "mu", "A (indep)", "A (shared)", "m/y indep", "m/y shared"
    );
    for (l, m) in [(0.001, 1.0), (0.01, 1.0), (0.1, 1.0), (0.1, 0.5)] {
        let ind = two_component_availability(l, m, RepairPolicy::Independent)?;
        let sh = two_component_availability(l, m, RepairPolicy::SharedCrew)?;
        println!(
            "{l:>8} {m:>8} {:>13.9} {:>13.9} {:>11.3} {:>11.3}",
            ind.parallel_availability,
            sh.parallel_availability,
            ind.parallel_downtime_min_per_year,
            sh.parallel_downtime_min_per_year
        );
    }
    Ok(())
}

/// E6 — transient reliability: uniformization vs simulation.
fn e6() -> Result<()> {
    // 1-of-2 parallel system with independent repair; system dies when
    // both components are simultaneously down.
    let (lambda, mu) = (2e-3, 0.1);
    println!("1-of-2 repairable system: R(t) by uniformization vs simulation");
    let mut b = reliab_markov::CtmcBuilder::new();
    let s0 = b.state("2up");
    let s1 = b.state("1up");
    let s2 = b.state("0up");
    b.transition(s0, s1, 2.0 * lambda)?;
    b.transition(s1, s0, mu)?;
    b.transition(s1, s2, lambda)?;
    let ctmc = b.build()?;
    let p0 = ctmc.point_mass(s0);

    let mut sim = SystemSimulator::new(|s: &[bool]| s[0] || s[1]);
    for _ in 0..2 {
        sim.component(
            Box::new(Exponential::new(lambda)?),
            Box::new(Exponential::new(mu)?),
        );
    }
    println!(
        "{:>9} {:>14} {:>12} {:>24}",
        "t (h)", "R(t) analytic", "R(t) sim", "sim 95% CI"
    );
    for &t in &[100.0, 500.0, 1000.0, 2500.0, 5000.0, 10_000.0] {
        let r = ctmc.reliability_at(&p0, &[s2], t)?;
        let est = sim.reliability(t, 3000, 42)?;
        println!(
            "{t:>9.0} {r:>14.8} {:>12.4} [{:>9.4}, {:>9.4}]",
            est.interval.point, est.interval.lower, est.interval.upper
        );
    }
    // Ablation: steady-state detection on stiff transient solve.
    let stiff = reliab_bench::birth_death(40, 1.0, 50.0)?;
    let init = {
        let mut v = vec![0.0; 40];
        v[0] = 1.0;
        v
    };
    let with = stiff.transient_with(
        &init,
        10_000.0,
        &TransientOptions {
            epsilon: 1e-10,
            steady_state_detection: Some(1e-12),
        },
    )?;
    let without = stiff.transient_with(
        &init,
        10_000.0,
        &TransientOptions {
            epsilon: 1e-10,
            steady_state_detection: None,
        },
    )?;
    let diff = with
        .iter()
        .zip(&without)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("steady-state-detection ablation on a stiff chain: max |Δπ| = {diff:.2e}");
    Ok(())
}

/// E7 — MTTF vs coverage.
fn e7() -> Result<()> {
    let lambda = 1e-3;
    println!("2-CPU MTTF vs failover coverage (lambda = {lambda}/h, no repair)");
    println!(
        "{:>9} {:>12} {:>14} {:>10}",
        "coverage", "MTTF (CTMC)", "closed form", "rel err"
    );
    for &c in &[0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
        let (ctmc, s2, _, sf) = coverage_ctmc(lambda, c, None)?;
        let mttf = ctmc.mttf(&ctmc.point_mass(s2), &[sf])?;
        let cf = coverage_mttf_closed_form(lambda, c);
        println!(
            "{c:>9.3} {mttf:>12.2} {cf:>14.2} {:>10.1e}",
            (mttf - cf).abs() / cf
        );
    }
    Ok(())
}

/// E8 — SRN/GSPN: state-space sizes and queueing measures.
fn e8() -> Result<()> {
    println!("M/M/2/K as an SRN: tangible markings and measures vs K");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>12}",
        "K", "markings", "throughput", "E[tokens]", "P(full)"
    );
    for k in [2u32, 4, 8, 16, 32] {
        let mut b = SpnBuilder::new();
        let q = b.place("queue", 0);
        let arrive = b.timed("arrive", 1.5);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(arrive, q, k);
        let serve = b.timed_fn("serve", |m: &Vec<u32>| f64::from(m[0].min(2)));
        b.input_arc(serve, q, 1);
        let spn = b.build()?;
        let solved = spn.solve()?;
        let tput = solved.throughput(serve)?;
        let en = solved.expected_tokens(q)?;
        let pfull = solved.steady_state_expected_reward(|m| if m[0] == k { 1.0 } else { 0.0 })?;
        println!(
            "{k:>4} {:>10} {tput:>12.6} {en:>12.4} {pfull:>12.6}",
            solved.num_markings()
        );
    }
    Ok(())
}

/// E9 — software rejuvenation: downtime vs interval + optimum.
fn e9() -> Result<()> {
    let p = RejuvParams::default();
    println!("software rejuvenation (renewal-reward MRGP)");
    println!(
        "{:>10} {:>14} {:>16} {:>10}",
        "delta (h)", "availability", "downtime (m/y)", "P(crash)"
    );
    for &d in &[24.0, 48.0, 96.0, 168.0, 336.0, 720.0, 8760.0] {
        let m = rejuvenation_measures(&p, d)?;
        println!(
            "{d:>10.0} {:>14.7} {:>16.1} {:>10.4}",
            m.availability,
            downtime_minutes_per_year(m.availability)?,
            m.failure_probability
        );
    }
    let (d_opt, m_opt) = optimal_rejuvenation(&p, 4.0, 8760.0)?;
    println!(
        "optimum: delta* = {d_opt:.1} h, availability {:.7}, downtime {:.1} m/y",
        m_opt.availability,
        downtime_minutes_per_year(m_opt.availability)?
    );
    Ok(())
}

/// E10 — router hierarchical downtime budget.
fn e10() -> Result<()> {
    let r = router_availability(&RouterParams::default())?;
    println!("carrier-router downtime budget (hierarchical RBD-over-CTMC)");
    println!(
        "  {:<18} {:>13} {:>14}",
        "subsystem", "availability", "min/yr"
    );
    for s in &r.subsystems {
        println!(
            "  {:<18} {:>13.8} {:>14.3}",
            s.name, s.availability, s.downtime_min_per_year
        );
    }
    println!(
        "  {:<18} {:>13.8} {:>14.3}",
        "TOTAL", r.system_availability, r.system_downtime_min_per_year
    );
    Ok(())
}

/// E11 — SIP fixed point: convergence behaviour.
fn e11() -> Result<()> {
    println!("load-coupled cluster (fixed point): convergence vs damping & tolerance");
    println!(
        "{:>9} {:>10} {:>12} {:>14} {:>12}",
        "damping", "tol", "iterations", "A (server)", "A (system)"
    );
    for &(damping, tol) in &[
        (1.0, 1e-6),
        (1.0, 1e-10),
        (1.0, 1e-12),
        (0.5, 1e-10),
        (0.25, 1e-10),
    ] {
        let r = sip_availability(
            &SipParams::default(),
            &FixedPointOptions {
                damping,
                tolerance: tol,
                ..Default::default()
            },
        )?;
        println!(
            "{damping:>9.2} {tol:>10.0e} {:>12} {:>14.9} {:>12.8}",
            r.iterations, r.server_availability, r.system_availability
        );
    }
    let r = sip_availability(&SipParams::default(), &FixedPointOptions::default())?;
    println!(
        "fixed point: load/server = {:.2} req/s, effective lambda = {:.6}/h",
        r.load_per_server, r.effective_lambda
    );
    Ok(())
}

/// E12 — parametric uncertainty: availability CIs vs test-data volume.
fn e12() -> Result<()> {
    println!("uncertainty propagation: two-component availability, gamma posterior on lambda");
    println!(
        "{:>10} {:>12} {:>12} {:>22} {:>10}",
        "failures", "test hours", "mean A", "95% CI", "width"
    );
    for &(fails, hours) in &[(1u32, 2_000.0), (5u32, 10_000.0), (50u32, 100_000.0)] {
        let posterior = rate_posterior(fails, hours)?;
        let r = propagate(
            &[Box::new(posterior)],
            |p| {
                Ok(
                    two_component_availability(p[0], 1.0, RepairPolicy::SharedCrew)?
                        .parallel_availability,
                )
            },
            &PropagationOptions {
                samples: 4000,
                ..Default::default()
            },
        )?;
        println!(
            "{fails:>10} {hours:>12.0} {:>12.8} [{:>9.7}, {:>9.7}] {:>10.2e}",
            r.mean,
            r.interval.lower,
            r.interval.upper,
            r.interval.upper - r.interval.lower
        );
    }
    Ok(())
}

/// E13 — preventive maintenance under Weibull wear-out.
fn e13() -> Result<()> {
    println!("age-replacement policy: Weibull(shape, scale 1000h) TTF, repair 48h, PM 4h");
    println!(
        "{:>7} {:>12} {:>14} {:>12}",
        "shape", "delta* (h)", "availability", "A(no PM)"
    );
    for &shape in &[1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let ttf = Weibull::new(shape, 1000.0)?;
        let (d_opt, m) = optimal_policy_age(&ttf, 48.0, 4.0, 10.0, 50_000.0)?;
        let no_pm = policy_measures(&ttf, 48.0, 4.0, 49_999.0, &PolicyCosts::default())?;
        let d_show = if d_opt > 40_000.0 {
            "none".to_owned()
        } else {
            format!("{d_opt:.0}")
        };
        println!(
            "{shape:>7.1} {d_show:>12} {:>14.7} {:>12.7}",
            m.availability, no_pm.availability
        );
    }
    Ok(())
}

/// E14 — the largeness wall: RBD vs flat CTMC on the same system.
fn e14() -> Result<()> {
    println!("state-space explosion: series-of-parallel-pairs system, both routes");
    println!(
        "{:>6} {:>11} {:>12} {:>12} {:>12} {:>12}",
        "pairs", "components", "BDD nodes", "RBD (µs)", "CTMC states", "CTMC (µs)"
    );
    for n in [2usize, 3, 4, 5, 6, 7] {
        let (rbd, avail) = scaling_rbd(n)?;
        let t0 = Instant::now();
        let a_rbd = rbd.availability(&avail)?;
        let t_rbd = t0.elapsed().as_micros();

        let (ctmc, up) = scaling_ctmc(n)?;
        let t0 = Instant::now();
        let a_ctmc = ctmc.steady_state_probability_of(&up)?;
        let t_ctmc = t0.elapsed().as_micros();
        assert!((a_rbd - a_ctmc).abs() < 1e-8);
        println!(
            "{n:>6} {:>11} {:>12} {t_rbd:>12} {:>12} {t_ctmc:>12}",
            2 * n,
            rbd.bdd_size(),
            ctmc.num_states()
        );
    }
    println!("(availabilities agree to 1e-8 on every row)");
    Ok(())
}

/// E15 — common-cause failures: the redundancy floor.
fn e15() -> Result<()> {
    use reliab_ftree::{CcfGroup, FaultTreeBuilder, FtNode};
    println!("beta-factor CCF: n-parallel group, q = 0.01 per unit");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "n", "beta = 0", "beta = 0.01", "beta = 0.05", "beta = 0.10"
    );
    for n in [2usize, 3, 4, 6, 8] {
        print!("{n:>4}");
        for beta in [0.0, 0.01, 0.05, 0.10] {
            let mut b = FaultTreeBuilder::new();
            let g = CcfGroup::new(&mut b, "unit", n)?;
            let ft = b.build(FtNode::and(g.members()))?;
            let mut probs = vec![0.0; ft.num_events()];
            g.assign_probabilities(&mut probs, 0.01, beta)?;
            print!(" {:>14.3e}", ft.top_event_probability(&probs)?);
        }
        println!();
    }
    println!("(columns with beta > 0 floor at ~beta*q no matter how large n grows)");
    Ok(())
}

/// E16 — RAID MTTDL table.
fn e16() -> Result<()> {
    use reliab_models::raid::{raid5_mttdl_approx, raid_mttdl, RaidParams};
    println!("RAID MTTDL (disk MTTF 100k h, rebuild 10 h)");
    println!(
        "{:>6} {:>10} {:>16} {:>16} {:>16}",
        "disks", "tolerance", "MTTDL (h)", "MTTDL (yr)", "approx (h)"
    );
    for &(n, tol) in &[(4usize, 1usize), (8, 1), (16, 1), (8, 2), (16, 2)] {
        let p = RaidParams {
            n_disks: n,
            tolerance: tol,
            lambda: 1e-5,
            mu: 0.1,
        };
        let mttdl = raid_mttdl(&p)?;
        let approx = if tol == 1 {
            format!("{:>16.3e}", raid5_mttdl_approx(n, 1e-5, 0.1))
        } else {
            format!("{:>16}", "-")
        };
        println!(
            "{n:>6} {tol:>10} {mttdl:>16.3e} {:>16.1} {approx}",
            mttdl / 8760.0
        );
    }
    Ok(())
}

/// E17 — two-node HA cluster: coverage and failover-speed sweeps.
fn e17() -> Result<()> {
    use reliab_models::cluster::{cluster_availability, ClusterParams};
    println!("two-node HA cluster: downtime vs coverage (failover 30 s)");
    println!(
        "{:>9} {:>13} {:>12} {:>10} {:>10} {:>10}",
        "coverage", "availability", "min/yr", "%failover", "%manual", "%double"
    );
    for &c in &[0.5, 0.8, 0.9, 0.95, 0.99, 1.0] {
        let r = cluster_availability(&ClusterParams {
            coverage: c,
            ..Default::default()
        })?;
        println!(
            "{c:>9.2} {:>13.8} {:>12.2} {:>10.3} {:>10.3} {:>10.3}",
            r.availability,
            r.downtime_min_per_year,
            r.downtime_share_failover,
            r.downtime_share_uncovered,
            r.downtime_share_double
        );
    }
    println!("\ndowntime vs failover speed (coverage 0.95)");
    println!(
        "{:>16} {:>13} {:>12}",
        "switchover", "availability", "min/yr"
    );
    for &(label, rate) in &[
        ("10 min", 6.0),
        ("1 min", 60.0),
        ("30 s", 120.0),
        ("1 s", 3600.0),
    ] {
        let r = cluster_availability(&ClusterParams {
            failover_rate: rate,
            ..Default::default()
        })?;
        println!(
            "{label:>16} {:>13.8} {:>12.2}",
            r.availability, r.downtime_min_per_year
        );
    }
    Ok(())
}

/// E18 — latent failures and periodic inspection (safety systems).
fn e18() -> Result<()> {
    use reliab_semimarkov::renewal::{inspection_measures, optimal_inspection_interval};
    let ttf = Weibull::new(2.0, 2000.0)?;
    println!("standby safety unit, Weibull(2, 2000h) TTF, 1h inspections, 24h repair");
    println!(
        "{:>10} {:>14} {:>18} {:>14}",
        "tau (h)", "availability", "detect delay (h)", "cycle (h)"
    );
    for &tau in &[10.0, 50.0, 150.0, 500.0, 1500.0, 5000.0] {
        let m = inspection_measures(&ttf, tau, 1.0, 24.0)?;
        println!(
            "{tau:>10.0} {:>14.6} {:>18.1} {:>14.0}",
            m.availability, m.mean_detection_delay, m.cycle_length
        );
    }
    let (tau_opt, m) = optimal_inspection_interval(&ttf, 1.0, 24.0, 1.0, 20_000.0)?;
    println!(
        "optimal inspection interval: {tau_opt:.0} h -> availability {:.6}",
        m.availability
    );
    Ok(())
}

/// E19 — insensitivity: steady-state availability of independently
/// repaired components depends on repair distributions only through
/// their means.
fn e19() -> Result<()> {
    use reliab_dist::{LogNormal, Pareto};
    use reliab_models::wfs::{wfs_availability, WfsParams};
    let p = WfsParams::default();
    let analytic = wfs_availability(&p)?;
    println!("WFS availability with non-exponential repair, same means (insensitivity)");
    println!("  analytic (means only): {analytic:.6}");
    println!("{:>22} {:>12} {:>26}", "repair law", "simulated", "95% CI");

    let make_sim = |ws_ttr: Box<dyn Lifetime>, fs_ttr: Box<dyn Lifetime>| -> Result<_> {
        let mut sim = SystemSimulator::new(|s: &[bool]| (s[0] || s[1]) && s[2]);
        for _ in 0..2 {
            sim.component(
                Box::new(Exponential::from_mean(p.ws_mttf)?),
                dyn_clone_ttr(&*ws_ttr)?,
            );
        }
        sim.component(Box::new(Exponential::from_mean(p.fs_mttf)?), fs_ttr);
        sim.availability(400_000.0, 24, 7)
    };
    // Helper clones a repair law per workstation by re-fitting its
    // mean/cv² (all our laws are cheap to reconstruct).
    fn dyn_clone_ttr(d: &dyn Lifetime) -> Result<Box<dyn Lifetime>> {
        Ok(
            reliab_dist::fit_two_moments(d.mean(), d.cv_squared().clamp(0.02, 50.0))?
                .into_lifetime(),
        )
    }

    for (label, ws_ttr, fs_ttr) in [
        (
            "exponential",
            Box::new(Exponential::from_mean(p.ws_mttr)?) as Box<dyn Lifetime>,
            Box::new(Exponential::from_mean(p.fs_mttr)?) as Box<dyn Lifetime>,
        ),
        (
            "lognormal cv2 = 4",
            Box::new(LogNormal::from_mean_cv2(p.ws_mttr, 4.0)?),
            Box::new(LogNormal::from_mean_cv2(p.fs_mttr, 4.0)?),
        ),
        (
            "pareto shape 2.5",
            Box::new(Pareto::new(2.5, p.ws_mttr * 1.5)?),
            Box::new(Pareto::new(2.5, p.fs_mttr * 1.5)?),
        ),
    ] {
        let est = make_sim(ws_ttr, fs_ttr)?;
        println!(
            "{label:>22} {:>12.6} [{:>11.6}, {:>11.6}]",
            est.interval.point, est.interval.lower, est.interval.upper
        );
    }
    println!("(all CIs cover the analytic value: availability is mean-only)");
    Ok(())
}
