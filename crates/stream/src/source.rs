//! Row sources: the on-demand generator-row contract and its two
//! implementations (SPN marking arena, materialized CSR).

use reliab_core::{Error, Result};
use reliab_markov::Ctmc;
use reliab_obs as obs;
use reliab_spn::{RowBuffer, TangibleSpace};

/// On-demand access to the rows of a CTMC generator.
///
/// The contract every streaming solver relies on:
///
/// * States are numbered `0..num_states()`.
/// * [`RowSource::row`] writes the **off-diagonal** arcs of row `i` —
///   `(target, rate)` with `target != i`, every `rate` positive and
///   finite. Parallel arcs to the same target may stay separate; the
///   solvers sum them.
/// * Repeated calls for the same `i` must produce the **identical**
///   sequence (same order, same bit patterns) — the streaming tier's
///   recompute-instead-of-spill policy and its bitwise block-count
///   independence both rest on this.
/// * The exit rate of state `i` is the sum of its row, accumulated in
///   emission order (this is how the solvers recover the generator's
///   diagonal without storing it).
pub trait RowSource {
    /// Number of states of the chain.
    fn num_states(&self) -> usize;

    /// Writes the off-diagonal arcs of row `i` into `out` (the solver
    /// clears nothing — implementations must clear `out` first).
    ///
    /// # Errors
    ///
    /// Implementation-specific: rate evaluation or row regeneration
    /// failures.
    fn row(&mut self, i: u32, out: &mut Vec<(u32, f64)>) -> Result<()>;

    /// Bytes resident in the source's own backing store, as counted by
    /// the memory planner (excludes transient per-row scratch).
    fn resident_bytes(&self) -> usize;
}

/// Adapter over an already-materialized [`Ctmc`]: streams the CSR
/// generator's off-diagonal rows. Exists so every streaming solver can
/// be differential-tested against the exact in-core path on the same
/// chain.
#[derive(Debug)]
pub struct CsrRowSource<'a> {
    ctmc: &'a Ctmc,
}

impl<'a> CsrRowSource<'a> {
    /// Wraps a materialized chain.
    #[must_use]
    pub fn new(ctmc: &'a Ctmc) -> Self {
        CsrRowSource { ctmc }
    }
}

impl RowSource for CsrRowSource<'_> {
    fn num_states(&self) -> usize {
        self.ctmc.num_states()
    }

    fn row(&mut self, i: u32, out: &mut Vec<(u32, f64)>) -> Result<()> {
        out.clear();
        let i = i as usize;
        for (j, v) in self.ctmc.generator().row(i) {
            if j != i {
                out.push((j as u32, v));
            }
        }
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        // CSR generator (row_ptr + col_idx + values) plus the exit-rate
        // vector; state names are irrelevant to the solvers and not
        // counted.
        let g = self.ctmc.generator();
        (g.nrows() + 1) * 8 + g.nnz() * 16 + self.ctmc.exit_rates().len() * 8
    }
}

/// Row regeneration straight from the packed SPN marking arena: fires
/// the enabled timed transitions of marking `i`, eliminates vanishing
/// successors on the fly, and resolves targets through the arena's
/// intern table — reproducing the materialized generator's per-row arc
/// stream bit for bit, without the arcs ever being stored.
#[derive(Debug)]
pub struct ArenaRowSource<'a, 'b> {
    space: &'a TangibleSpace<'b>,
    buf: RowBuffer,
}

impl<'a, 'b> ArenaRowSource<'a, 'b> {
    /// Wraps a tangible marking space (see
    /// [`reliab_spn::Spn::tangible_space`]).
    #[must_use]
    pub fn new(space: &'a TangibleSpace<'b>) -> Self {
        ArenaRowSource {
            space,
            buf: RowBuffer::new(),
        }
    }

    /// The underlying marking space.
    #[must_use]
    pub fn space(&self) -> &'a TangibleSpace<'b> {
        self.space
    }
}

impl RowSource for ArenaRowSource<'_, '_> {
    fn num_states(&self) -> usize {
        self.space.num_markings()
    }

    fn row(&mut self, i: u32, out: &mut Vec<(u32, f64)>) -> Result<()> {
        // Lend the caller's vector to the regeneration buffer so the
        // arcs land in `out` without a copy.
        std::mem::swap(out, &mut self.buf.arcs);
        let result = self.space.successors(i, &mut self.buf);
        std::mem::swap(out, &mut self.buf.arcs);
        result
    }

    fn resident_bytes(&self) -> usize {
        self.space.resident_bytes()
    }
}

/// Exit rates and uniformization constant recovered by one full pass
/// over a [`RowSource`] — the streaming stand-in for the materialized
/// builder's stored diagonal.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RateScan {
    /// Total outflow per state (`-q_ii`), accumulated in row emission
    /// order — bitwise identical to the materialized builder's
    /// `exit_rates()`.
    pub exit: Vec<f64>,
    /// Uniformization rate: `max(exit) * 1.02` plus a tiny floor, the
    /// same formula as the in-core uniformization path.
    pub q: f64,
    /// Off-diagonal arcs seen (parallel arcs counted separately).
    pub arcs: u64,
    /// Widest row encountered.
    pub max_row: usize,
}

/// Scans every row once, validating the [`RowSource`] contract and
/// computing [`RateScan`].
///
/// # Errors
///
/// Returns [`Error::Model`] for an empty source or a contract violation
/// (self-loop, out-of-range target, non-positive or non-finite rate),
/// and propagates row-regeneration failures.
pub fn scan_rates(src: &mut dyn RowSource) -> Result<RateScan> {
    let _span = obs::span("stream.scan");
    let n = src.num_states();
    if n == 0 {
        return Err(Error::model("row source has no states"));
    }
    let mut exit = vec![0.0f64; n];
    let mut arcs = 0u64;
    let mut max_row = 0usize;
    let mut row: Vec<(u32, f64)> = Vec::new();
    for (i, exit_i) in exit.iter_mut().enumerate() {
        src.row(i as u32, &mut row)?;
        arcs += row.len() as u64;
        max_row = max_row.max(row.len());
        for &(j, r) in &row {
            if j as usize >= n {
                return Err(Error::model(format!(
                    "row {i} targets state {j}, but the source has only {n} states"
                )));
            }
            if j as usize == i {
                return Err(Error::model(format!(
                    "row {i} contains a self-loop; row sources must emit off-diagonal arcs only"
                )));
            }
            if !(r > 0.0 && r.is_finite()) {
                return Err(Error::model(format!(
                    "rate {r} on arc {i} -> {j} must be positive and finite"
                )));
            }
            *exit_i += r;
        }
    }
    let max = exit.iter().fold(0.0f64, |a, &b| a.max(b));
    // Mirror of the in-core uniformization rate: 2% slack keeps the
    // uniformized DTMC aperiodic, the floor avoids dividing by zero on
    // an absorbing-only chain.
    let q = max * 1.02 + 1e-300;
    obs::event(
        "stream.scan.done",
        &[
            ("states", n.into()),
            ("arcs", arcs.into()),
            ("max_row", max_row.into()),
        ],
    );
    Ok(RateScan {
        exit,
        q,
        arcs,
        max_row,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_markov::CtmcBuilder;

    fn cyclic(n: usize) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
        for i in 0..n {
            b.transition(ids[i], ids[(i + 1) % n], 1.0 + i as f64)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn csr_source_streams_offdiagonal_rows() {
        let c = cyclic(4);
        let mut src = CsrRowSource::new(&c);
        assert_eq!(src.num_states(), 4);
        let mut row = Vec::new();
        src.row(2, &mut row).unwrap();
        assert_eq!(row, vec![(3, 3.0)]);
        assert!(src.resident_bytes() > 0);
    }

    #[test]
    fn scan_recovers_exit_rates_bitwise() {
        let c = cyclic(5);
        let mut src = CsrRowSource::new(&c);
        let scan = scan_rates(&mut src).unwrap();
        assert_eq!(scan.exit, c.exit_rates());
        assert_eq!(scan.arcs, 5);
        assert_eq!(scan.max_row, 1);
        let expected_q = c.exit_rates().iter().fold(0.0f64, |a, &b| a.max(b)) * 1.02 + 1e-300;
        assert_eq!(scan.q.to_bits(), expected_q.to_bits());
    }

    struct BadSource {
        arc: (u32, f64),
    }
    impl RowSource for BadSource {
        fn num_states(&self) -> usize {
            2
        }
        fn row(&mut self, i: u32, out: &mut Vec<(u32, f64)>) -> Result<()> {
            out.clear();
            if i == 0 {
                out.push(self.arc);
            } else {
                out.push((0, 1.0));
            }
            Ok(())
        }
        fn resident_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn scan_rejects_contract_violations() {
        for arc in [(0u32, 1.0f64), (5, 1.0), (1, 0.0), (1, -2.0), (1, f64::NAN)] {
            let mut bad = BadSource { arc };
            assert!(scan_rates(&mut bad).is_err(), "arc {arc:?}");
        }
        let mut ok = BadSource { arc: (1, 2.5) };
        let scan = scan_rates(&mut ok).unwrap();
        assert_eq!(scan.exit, vec![2.5, 1.0]);
    }
}
