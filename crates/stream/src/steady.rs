//! Block-partitioned steady-state iteration over a [`RowSource`].
//!
//! The generator is consumed column-block by column-block: each block's
//! **column slice** — the arcs whose *target* lies in the block, listed
//! in row-scan order and stably sorted by target — is either cached
//! across sweeps or recomputed from the row source every sweep,
//! whichever the memory plan allows. The Gauss–Seidel/SOR sweep itself
//! always walks states in global order and consumes each column's
//! entries in the same (row-scan, emission) sequence regardless of
//! where block boundaries fall, so the iterates — and therefore the
//! result — are **bitwise identical** at any block count and any
//! admitting memory budget. Caching is purely a wall-time decision.

use crate::plan::{plan_steady, MemoryPlan, PlanOutcome, StreamMethod, StreamOptions};
use crate::source::{scan_rates, RateScan, RowSource};
use reliab_core::{Error, Result};
use reliab_obs as obs;

/// A steady-state distribution plus streaming-solver telemetry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SteadyStreamReport {
    /// The stationary distribution (sums to 1).
    pub pi: Vec<f64>,
    /// `"stream-sor"` or `"stream-power"`.
    pub method: &'static str,
    /// Sweeps / iterations performed.
    pub iterations: usize,
    /// Convergence residual of the final sweep (relative `∞`-norm
    /// change for SOR, absolute for power — same semantics as the
    /// in-core iterative solvers).
    pub residual: f64,
    /// Final-sweep residual per column block, on the same scale as
    /// `residual` — the per-shard view of convergence.
    pub block_residuals: Vec<f64>,
    /// The memory plan the solve ran under (`cached_blocks` filled in).
    pub plan: MemoryPlan,
}

/// One block's column slice: `(j_local, source_state, rate)` — the arcs
/// targeting the block, grouped by local target. Entries of one column
/// appear in the row-scan/emission order of the source, which is the
/// invariant the bitwise block-independence guarantee rests on.
type Slice = Vec<(u32, u32, f64)>;

/// Solves `π Q = 0`, `Σ π = 1` over a row source under the options'
/// memory budget.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] — bad options, a non-ergodic diagonal
///   (SOR), or a budget too small for an exact solve (escalate to
///   [`crate::bounded_steady_reward`]).
/// * [`Error::Convergence`] — iteration budget exhausted.
/// * Row-source errors propagate.
pub fn steady_state(src: &mut dyn RowSource, opts: &StreamOptions) -> Result<SteadyStreamReport> {
    steady_state_observed(src, opts, &mut |_, _| {})
}

/// [`steady_state`] with a per-sweep observer `observer(sweep,
/// residual)` (1-based sweep number, residual as tested against the
/// tolerance). The observer must not panic.
///
/// # Errors
///
/// See [`steady_state`].
pub fn steady_state_observed(
    src: &mut dyn RowSource,
    opts: &StreamOptions,
    observer: &mut dyn FnMut(usize, f64),
) -> Result<SteadyStreamReport> {
    opts.validate()?;
    let _span = obs::span("stream.steady");
    let scan = scan_rates(src)?;
    let n = src.num_states();
    let mut plan = match plan_steady(n, scan.arcs, src.resident_bytes(), opts) {
        PlanOutcome::Exact(p) => p,
        PlanOutcome::NeedsBounds { required, budget } => {
            return Err(Error::invalid(format!(
                "memory budget of {budget} bytes cannot hold the exact iteration state \
                 ({required} bytes of row source + vectors); raise the budget or use the \
                 aggregation bounds path"
            )))
        }
    };

    // Blocks are contiguous index ranges of equal width; the last may
    // be short. Re-derive the effective count from the width so the
    // reported plan matches what the sweep actually does.
    let bs = n.div_ceil(plan.blocks);
    let nblocks = n.div_ceil(bs);
    plan.blocks = nblocks;

    let (cached, cached_count) = build_cached_prefix(src, n, bs, nblocks, &plan)?;
    plan.cached_blocks = cached_count;
    obs::event(
        "stream.plan",
        &[
            ("states", n.into()),
            ("arcs", scan.arcs.into()),
            ("blocks", nblocks.into()),
            ("cached_blocks", cached_count.into()),
            ("source_bytes", plan.source_bytes.into()),
            ("slice_bytes", plan.slice_bytes.into()),
        ],
    );

    let report = match opts.method {
        StreamMethod::Auto | StreamMethod::Sor => {
            sor_sweeps(src, &scan, plan, opts, cached, observer)
        }
        StreamMethod::Power => power_iterations(src, &scan, plan, opts, cached, observer),
    }?;
    obs::counter_add("stream.steady.solves", 1);
    obs::counter_add("stream.steady.iterations", report.iterations as u64);
    Ok(report)
}

/// Builds the column slices of blocks `0..prefix` in a single scan of
/// the source, where `prefix` is how many leading blocks the cache pool
/// is estimated to hold (all of them when the whole slice store fits).
fn build_cached_prefix(
    src: &mut dyn RowSource,
    n: usize,
    bs: usize,
    nblocks: usize,
    plan: &MemoryPlan,
) -> Result<(Vec<Option<Slice>>, usize)> {
    let prefix = if plan.slice_bytes <= plan.cache_bytes {
        nblocks
    } else {
        // Estimate per-block bytes from the total; keep one block's
        // worth of headroom as recompute scratch.
        let per_block = (plan.slice_bytes / nblocks as u64).max(1);
        let fit = plan.cache_bytes.saturating_sub(per_block) / per_block;
        usize::try_from(fit).unwrap_or(nblocks).min(nblocks)
    };
    let mut cached: Vec<Option<Slice>> = (0..nblocks)
        .map(|b| if b < prefix { Some(Vec::new()) } else { None })
        .collect();
    if prefix > 0 {
        let mut row: Vec<(u32, f64)> = Vec::new();
        for i in 0..n {
            src.row(i as u32, &mut row)?;
            for &(j, r) in &row {
                let b = j as usize / bs;
                if let Some(slice) = cached[b].as_mut() {
                    slice.push((j - (b * bs) as u32, i as u32, r));
                }
            }
        }
        for slice in cached.iter_mut().flatten() {
            slice.sort_by_key(|t| t.0);
        }
    }
    Ok((cached, prefix))
}

/// Rebuilds one block's column slice from the source — byte-identical
/// to the cached construction: arcs collected in row-scan order, then
/// stably sorted by local target.
fn rebuild_slice(
    src: &mut dyn RowSource,
    n: usize,
    lo: usize,
    hi: usize,
    row: &mut Vec<(u32, f64)>,
    out: &mut Slice,
) -> Result<()> {
    out.clear();
    for i in 0..n {
        src.row(i as u32, row)?;
        for &(j, r) in row.iter() {
            if (j as usize) >= lo && (j as usize) < hi {
                out.push((j - lo as u32, i as u32, r));
            }
        }
    }
    out.sort_by_key(|t| t.0);
    Ok(())
}

fn sor_sweeps(
    src: &mut dyn RowSource,
    scan: &RateScan,
    plan: MemoryPlan,
    opts: &StreamOptions,
    cached: Vec<Option<Slice>>,
    observer: &mut dyn FnMut(usize, f64),
) -> Result<SteadyStreamReport> {
    let n = plan.states;
    let bs = n.div_ceil(plan.blocks);
    // Gauss–Seidel divides by -q_jj = the exit rate; a zero exit rate
    // is an absorbing state, which an ergodic steady state cannot have.
    for (j, &e) in scan.exit.iter().enumerate() {
        if e <= 0.0 {
            return Err(Error::invalid(format!(
                "generator diagonal q[{j}][{j}] = {} must be negative",
                if e == 0.0 { 0.0 } else { -e }
            )));
        }
    }

    let mut pi = vec![1.0 / n as f64; n];
    let omega = opts.relaxation;
    let mut block_res = vec![0.0f64; plan.blocks];
    let mut scratch: Slice = Vec::new();
    let mut row: Vec<(u32, f64)> = Vec::new();
    for iter in 0..opts.max_iterations {
        let mut max_change = 0.0f64;
        let mut max_val = 0.0f64;
        for (b, maybe) in cached.iter().enumerate() {
            let lo = b * bs;
            let hi = (lo + bs).min(n);
            let slice: &Slice = if let Some(s) = maybe {
                s
            } else {
                rebuild_slice(src, n, lo, hi, &mut row, &mut scratch)?;
                &scratch
            };
            let mut cursor = 0usize;
            let mut block_change = 0.0f64;
            for j in lo..hi {
                let jl = (j - lo) as u32;
                // pi_j_new = (sum_{i != j} pi_i q_ij) / (-q_jj), with the
                // partial sum consuming column j's entries in the
                // blocking-independent row-scan order.
                let mut acc = 0.0;
                while cursor < slice.len() && slice[cursor].0 == jl {
                    let (_, i, r) = slice[cursor];
                    acc += pi[i as usize] * r;
                    cursor += 1;
                }
                let new = acc / scan.exit[j];
                let relaxed = omega * new + (1.0 - omega) * pi[j];
                let change = (relaxed - pi[j]).abs();
                max_change = max_change.max(change);
                block_change = block_change.max(change);
                pi[j] = relaxed;
                max_val = max_val.max(relaxed.abs());
            }
            block_res[b] = block_change;
            if obs::trace_enabled() {
                obs::event(
                    "stream.block",
                    &[
                        ("sweep", (iter + 1).into()),
                        ("block", b.into()),
                        ("residual", block_change.into()),
                    ],
                );
            }
        }
        // Normalize each sweep to keep the iterate bounded.
        let total: f64 = pi.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(Error::numerical(
                "singular system: SOR iterate collapsed; chain may be reducible",
            ));
        }
        for p in &mut pi {
            *p /= total;
        }
        if max_val > 0.0 {
            let rel = max_change / max_val;
            observer(iter + 1, rel);
            obs::event(
                "stream.iteration",
                &[
                    ("method", "stream-sor".into()),
                    ("iter", (iter + 1).into()),
                    ("residual", rel.into()),
                ],
            );
            if rel < opts.tolerance {
                for r in &mut block_res {
                    *r /= max_val;
                }
                return Ok(SteadyStreamReport {
                    pi,
                    method: "stream-sor",
                    iterations: iter + 1,
                    residual: rel,
                    block_residuals: block_res,
                    plan,
                });
            }
        }
        if iter + 1 == opts.max_iterations {
            return Err(Error::Convergence {
                what: "streaming SOR steady-state".into(),
                iterations: opts.max_iterations,
                residual: max_change / max_val.max(f64::MIN_POSITIVE),
            });
        }
    }
    unreachable!("loop returns before exhausting")
}

fn power_iterations(
    src: &mut dyn RowSource,
    scan: &RateScan,
    plan: MemoryPlan,
    opts: &StreamOptions,
    cached: Vec<Option<Slice>>,
    observer: &mut dyn FnMut(usize, f64),
) -> Result<SteadyStreamReport> {
    let n = plan.states;
    let bs = n.div_ceil(plan.blocks);
    let q = scan.q;
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut block_res = vec![0.0f64; plan.blocks];
    let mut scratch: Slice = Vec::new();
    let mut row: Vec<(u32, f64)> = Vec::new();
    for iter in 0..opts.max_iterations {
        // next = P^T pi for the uniformized DTMC P = I + Q/q, assembled
        // per column block (column sums are blocking-independent).
        for (b, maybe) in cached.iter().enumerate() {
            let lo = b * bs;
            let hi = (lo + bs).min(n);
            let slice: &Slice = if let Some(s) = maybe {
                s
            } else {
                rebuild_slice(src, n, lo, hi, &mut row, &mut scratch)?;
                &scratch
            };
            let mut cursor = 0usize;
            for (j, nj) in next.iter_mut().enumerate().take(hi).skip(lo) {
                let jl = (j - lo) as u32;
                let mut acc = 0.0;
                while cursor < slice.len() && slice[cursor].0 == jl {
                    let (_, i, r) = slice[cursor];
                    acc += pi[i as usize] * r;
                    cursor += 1;
                }
                *nj = pi[j] * (1.0 - scan.exit[j] / q) + acc / q;
            }
        }
        let total: f64 = next.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(Error::numerical(
                "singular system: power iterate collapsed; matrix may not be stochastic",
            ));
        }
        for v in &mut next {
            *v /= total;
        }
        let mut change = 0.0f64;
        for (b, res) in block_res.iter_mut().enumerate() {
            let lo = b * bs;
            let hi = (lo + bs).min(n);
            let mut bc = 0.0f64;
            for j in lo..hi {
                bc = bc.max((pi[j] - next[j]).abs());
            }
            *res = bc;
            change = change.max(bc);
        }
        std::mem::swap(&mut pi, &mut next);
        observer(iter + 1, change);
        obs::event(
            "stream.iteration",
            &[
                ("method", "stream-power".into()),
                ("iter", (iter + 1).into()),
                ("residual", change.into()),
            ],
        );
        if change < opts.tolerance {
            return Ok(SteadyStreamReport {
                pi,
                method: "stream-power",
                iterations: iter + 1,
                residual: change,
                block_residuals: block_res,
                plan,
            });
        }
        if iter + 1 == opts.max_iterations {
            return Err(Error::Convergence {
                what: "streaming power method".into(),
                iterations: opts.max_iterations,
                residual: change,
            });
        }
    }
    unreachable!("loop returns before exhausting")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CsrRowSource;
    use reliab_markov::{Ctmc, CtmcBuilder, IterativeOptions, SteadyStateMethod};

    fn birth_death(n: usize, lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
        for i in 0..n - 1 {
            b.transition(ids[i], ids[i + 1], lambda).unwrap();
            b.transition(ids[i + 1], ids[i], mu).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn sor_matches_materialized_sor() {
        let c = birth_death(40, 1.0, 2.5);
        let exact = c
            .steady_state_with(&SteadyStateMethod::Sor(IterativeOptions::default()))
            .unwrap();
        let mut src = CsrRowSource::new(&c);
        let report = steady_state(&mut src, &StreamOptions::default()).unwrap();
        assert_eq!(report.method, "stream-sor");
        for (i, (p, e)) in report.pi.iter().zip(&exact).enumerate() {
            assert!((p - e).abs() < 1e-10, "state {i}");
        }
        assert!((report.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(report.iterations > 0);
        assert_eq!(report.block_residuals.len(), report.plan.blocks);
    }

    #[test]
    fn power_matches_sor() {
        let c = birth_death(12, 2.0, 3.0);
        let mut src = CsrRowSource::new(&c);
        let sor = steady_state(&mut src, &StreamOptions::default()).unwrap();
        let power = steady_state(
            &mut src,
            &StreamOptions {
                method: StreamMethod::Power,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(power.method, "stream-power");
        for i in 0..12 {
            assert!((sor.pi[i] - power.pi[i]).abs() < 1e-8, "state {i}");
        }
    }

    #[test]
    fn results_are_bitwise_identical_at_any_block_count() {
        let c = birth_death(53, 1.7, 2.2);
        let mut src = CsrRowSource::new(&c);
        let reference = steady_state(&mut src, &StreamOptions::default()).unwrap();
        for blocks in [2, 3, 7, 16, 53, 200] {
            for method in [StreamMethod::Sor, StreamMethod::Power] {
                let r = steady_state(
                    &mut src,
                    &StreamOptions {
                        blocks: Some(blocks),
                        method,
                        ..Default::default()
                    },
                )
                .unwrap();
                if method == StreamMethod::Sor {
                    assert_eq!(
                        r.pi, reference.pi,
                        "blocks = {blocks}: SOR must be bitwise block-independent"
                    );
                    assert_eq!(r.iterations, reference.iterations);
                }
                assert!((r.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn results_are_bitwise_identical_at_any_admitting_budget() {
        let c = birth_death(30, 1.0, 1.9);
        let mut src = CsrRowSource::new(&c);
        let reference = steady_state(&mut src, &StreamOptions::default()).unwrap();
        let floor = src.resident_bytes() + 2 * 8 * 30;
        for extra in [0, 100, 1000, 1 << 20] {
            let r = steady_state(
                &mut src,
                &StreamOptions {
                    mem_budget: Some(floor + extra),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(r.pi, reference.pi, "budget = floor + {extra}");
        }
    }

    #[test]
    fn hopeless_budget_is_rejected() {
        let c = birth_death(30, 1.0, 1.9);
        let mut src = CsrRowSource::new(&c);
        let err = steady_state(
            &mut src,
            &StreamOptions {
                mem_budget: Some(16),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("memory budget"));
    }

    #[test]
    fn absorbing_chain_is_rejected_by_sor() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let sink = b.state("sink");
        b.transition(a, sink, 1.0).unwrap();
        let c = b.build().unwrap();
        let mut src = CsrRowSource::new(&c);
        assert!(steady_state(&mut src, &StreamOptions::default()).is_err());
    }

    #[test]
    fn iteration_budget_exhaustion_reports_convergence_error() {
        let c = birth_death(40, 1.0, 1.01);
        let mut src = CsrRowSource::new(&c);
        let err = steady_state(
            &mut src,
            &StreamOptions {
                max_iterations: 2,
                tolerance: 1e-15,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::Convergence { iterations: 2, .. }));
    }
}
