//! # reliab-stream
//!
//! The out-of-core ("largeness tolerance") solver tier: transient and
//! steady-state solution of CTMCs **too large to materialize** as a
//! sparse matrix. The tutorial's answer to state-space explosion is to
//! generate rows on demand, iterate in blocks, and fall back to
//! certified bounds when even the iteration vectors do not fit — this
//! crate implements all three rungs of that ladder:
//!
//! * [`RowSource`] — the one-method contract the whole tier is built
//!   on: produce the off-diagonal generator row of one state on demand.
//!   [`ArenaRowSource`] regenerates rows directly from the packed SPN
//!   marking arena ([`reliab_spn::TangibleSpace`]), firing enabled
//!   transitions per marking and eliminating vanishing states on the
//!   fly; [`CsrRowSource`] adapts an already-materialized
//!   [`reliab_markov::Ctmc`], so every streaming solver is
//!   differential-testable against the exact in-core path.
//! * [`transient`] — on-the-fly uniformization (Jensen's method with
//!   Poisson tail control and steady-state detection): a two-vector
//!   recurrence that never stores a matrix.
//! * [`steady_state`] — block-partitioned Gauss–Seidel/SOR and power
//!   iteration. Column slices of the generator are built per block and
//!   either cached or recomputed each sweep under a caller-supplied
//!   memory budget ([`StreamOptions::mem_budget`]); the sweep follows
//!   the global state order, so results are **bitwise identical** at
//!   any block count and any admitting budget.
//! * [`bounded_steady_reward`] — aggregation-based bounding when the
//!   budget cannot even hold the iteration vectors: a small macro-state
//!   chain brackets a steady-state reward between
//!   [`reliab_bounds::Bounds`].
//!
//! ```
//! use reliab_markov::CtmcBuilder;
//! use reliab_stream::{steady_state, CsrRowSource, StreamOptions};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let mut b = CtmcBuilder::new();
//! let up = b.state("up");
//! let down = b.state("down");
//! b.transition(up, down, 0.001)?;
//! b.transition(down, up, 0.1)?;
//! let ctmc = b.build()?;
//! let mut src = CsrRowSource::new(&ctmc);
//! let report = steady_state(&mut src, &StreamOptions::default())?;
//! let exact = ctmc.steady_state()?;
//! assert!((report.pi[0] - exact[0]).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bound;
mod plan;
mod source;
mod steady;
mod transient;

pub use bound::{bounded_steady_reward, macro_states_for_budget, BoundedSteadyReport};
pub use plan::{plan_steady, plan_transient, MemoryPlan, PlanOutcome, StreamMethod, StreamOptions};
pub use source::{scan_rates, ArenaRowSource, CsrRowSource, RateScan, RowSource};
pub use steady::{steady_state, steady_state_observed, SteadyStreamReport};
pub use transient::{transient, StreamTransientReport};

use reliab_core::Error;

/// Converts numeric-layer failures into the workspace error type.
pub(crate) fn num_err(e: reliab_numeric::NumericError) -> Error {
    match e {
        reliab_numeric::NumericError::NoConvergence {
            what,
            iterations,
            residual,
        } => Error::Convergence {
            what,
            iterations,
            residual,
        },
        other => Error::numerical(other.to_string()),
    }
}
