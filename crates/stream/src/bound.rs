//! Aggregation-based bounding: the last rung of the largeness-tolerance
//! ladder, for budgets that cannot even hold the iteration vectors.
//!
//! States are grouped into contiguous macro-states; the generator is
//! aggregated in one streaming pass under a uniform conditional
//! distribution per group, and the small macro-chain is solved exactly
//! by GTH. A steady-state reward is then bracketed by paying every
//! macro-state its worst-case and best-case per-state reward:
//! `Σ π̂_I · min_{i∈I} r(i) ≤ E[r] ≤ Σ π̂_I · max_{i∈I} r(i)`.
//!
//! The bracket is exact when the partition is ordinarily lumpable (the
//! aggregated chain is then the exact quotient); otherwise `π̂` is the
//! uniform-weighting approximation and the bracket is a structured
//! estimate, not a certificate — it is reported as [`Bounds`] so
//! downstream consumers carry the gap instead of a false point value.

use crate::num_err;
use crate::source::RowSource;
use reliab_bounds::Bounds;
use reliab_core::{Error, Result};
use reliab_numeric::{gth_steady_state, DenseMatrix};
use reliab_obs as obs;

/// An aggregated steady-state reward bracket.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BoundedSteadyReport {
    /// The reward bracket.
    pub bounds: Bounds,
    /// Macro-states actually used (the requested count, clamped).
    pub macro_states: usize,
    /// Stationary distribution of the aggregated macro-chain.
    pub pi_macro: Vec<f64>,
}

/// Largest macro-state count whose dense `M × M` aggregated generator
/// fits in `budget` bytes, clamped to `[2, 4096]`.
#[must_use]
pub fn macro_states_for_budget(budget: usize) -> usize {
    let m = ((budget / 8) as f64).sqrt() as usize;
    m.clamp(2, 4096)
}

/// Brackets the steady-state expectation of the per-state reward
/// `reward(i)` using `macro_states` contiguous aggregation groups.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a zero macro-state count or
/// a non-finite reward; numerical errors propagate from the macro-chain
/// GTH solve; row-source errors propagate.
pub fn bounded_steady_reward(
    src: &mut dyn RowSource,
    macro_states: usize,
    reward: &mut dyn FnMut(u32) -> f64,
) -> Result<BoundedSteadyReport> {
    let _span = obs::span("stream.bounds");
    if macro_states == 0 {
        return Err(Error::invalid("macro-state count must be > 0"));
    }
    let n = src.num_states();
    if n == 0 {
        return Err(Error::model("row source has no states"));
    }
    let gs = n.div_ceil(macro_states.min(n));
    let m = n.div_ceil(gs);
    let group_size = |g: usize| -> f64 { (gs.min(n - g * gs)) as f64 };

    // Aggregate the generator in one streaming pass: uniform
    // conditional weight 1/|I| inside each group.
    let mut qhat = DenseMatrix::zeros(m, m);
    let mut row: Vec<(u32, f64)> = Vec::new();
    for i in 0..n {
        src.row(i as u32, &mut row)?;
        let gi = i / gs;
        let w = 1.0 / group_size(gi);
        for &(j, r) in &row {
            let gj = j as usize / gs;
            if gj != gi {
                qhat.set(gi, gj, qhat.get(gi, gj) + r * w);
            }
        }
    }
    for g in 0..m {
        let mut out = 0.0;
        for h in 0..m {
            if h != g {
                out += qhat.get(g, h);
            }
        }
        qhat.set(g, g, -out);
    }

    let pi_macro = if m == 1 {
        vec![1.0]
    } else {
        gth_steady_state(&qhat).map_err(num_err)?
    };

    // Reward extremes per group: one pass over the states, no rows.
    let mut lower = 0.0;
    let mut upper = 0.0;
    for (g, &pi_g) in pi_macro.iter().enumerate() {
        let lo = g * gs;
        let hi = (lo + gs).min(n);
        let mut rmin = f64::INFINITY;
        let mut rmax = f64::NEG_INFINITY;
        for i in lo..hi {
            let r = reward(i as u32);
            if !r.is_finite() {
                return Err(Error::invalid(format!(
                    "reward of state {i} is {r}; rewards must be finite"
                )));
            }
            rmin = rmin.min(r);
            rmax = rmax.max(r);
        }
        lower += pi_g * rmin;
        upper += pi_g * rmax;
    }

    let bounds = Bounds { lower, upper };
    obs::event(
        "stream.bounds",
        &[
            ("states", n.into()),
            ("macro_states", m.into()),
            ("lower", lower.into()),
            ("upper", upper.into()),
        ],
    );
    Ok(BoundedSteadyReport {
        bounds,
        macro_states: m,
        pi_macro,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CsrRowSource;
    use crate::{steady_state, StreamOptions};
    use reliab_markov::{Ctmc, CtmcBuilder};

    fn birth_death(n: usize, lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
        for i in 0..n - 1 {
            b.transition(ids[i], ids[i + 1], lambda).unwrap();
            b.transition(ids[i + 1], ids[i], mu).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn full_resolution_bracket_is_tight_and_exact() {
        // One state per macro-state: the aggregation is trivially
        // lumpable, so the bracket collapses onto the exact value.
        let c = birth_death(10, 1.0, 2.0);
        let mut src = CsrRowSource::new(&c);
        let exact = steady_state(&mut src, &StreamOptions::default()).unwrap();
        let expected: f64 = exact.pi.iter().enumerate().map(|(i, p)| i as f64 * p).sum();
        let r = bounded_steady_reward(&mut src, 10, &mut |i| f64::from(i)).unwrap();
        assert_eq!(r.macro_states, 10);
        assert!(r.bounds.gap() < 1e-12);
        assert!((r.bounds.midpoint() - expected).abs() < 1e-9);
    }

    #[test]
    fn coarse_bracket_contains_the_lumped_answer_and_orders() {
        let c = birth_death(12, 1.0, 1.0);
        let mut src = CsrRowSource::new(&c);
        let r = bounded_steady_reward(&mut src, 3, &mut |i| f64::from(i)).unwrap();
        assert_eq!(r.macro_states, 3);
        assert!(r.bounds.lower <= r.bounds.upper);
        assert!(r.bounds.gap() > 0.0);
        assert!((r.pi_macro.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Symmetric chain: reward bracket straddles the true mean 5.5.
        assert!(r.bounds.contains(5.5));
    }

    #[test]
    fn constant_reward_has_zero_gap() {
        let c = birth_death(9, 2.0, 3.0);
        let mut src = CsrRowSource::new(&c);
        let r = bounded_steady_reward(&mut src, 2, &mut |_| 4.25).unwrap();
        assert!((r.bounds.lower - 4.25).abs() < 1e-12);
        assert!((r.bounds.upper - 4.25).abs() < 1e-12);
    }

    #[test]
    fn inputs_validated() {
        let c = birth_death(4, 1.0, 1.0);
        let mut src = CsrRowSource::new(&c);
        assert!(bounded_steady_reward(&mut src, 0, &mut |_| 1.0).is_err());
        assert!(bounded_steady_reward(&mut src, 2, &mut |_| f64::NAN).is_err());
    }

    #[test]
    fn macro_budget_helper_is_clamped() {
        assert_eq!(macro_states_for_budget(0), 2);
        assert_eq!(macro_states_for_budget(8 * 100 * 100), 100);
        assert_eq!(macro_states_for_budget(usize::MAX / 2), 4096);
    }
}
