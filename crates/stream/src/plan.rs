//! Options and memory planning for the streaming solvers.
//!
//! The planner decides, from the model size and the caller's byte
//! budget, how many column blocks the steady-state sweep uses and how
//! much of the slice store may stay cached (the rest is recomputed from
//! the [`crate::RowSource`] every sweep). Planning affects **wall time
//! only** — the sweep follows the global state order whatever the plan
//! says, so results are bitwise identical at any block count and any
//! admitting budget.

use reliab_core::{Error, Result};

/// Iterative method used by [`crate::steady_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMethod {
    /// Pick automatically (currently always SOR/Gauss–Seidel).
    #[default]
    Auto,
    /// Block Gauss–Seidel / SOR on the generator columns.
    Sor,
    /// Power iteration on the uniformized DTMC.
    Power,
}

/// Options shared by the streaming solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Convergence tolerance (same semantics as the in-core iterative
    /// solvers: relative `∞`-norm change for SOR, absolute for power).
    pub tolerance: f64,
    /// Sweep / iteration budget.
    pub max_iterations: usize,
    /// SOR relaxation factor in `(0, 2)`; `1.0` is plain Gauss–Seidel.
    pub relaxation: f64,
    /// Steady-state method.
    pub method: StreamMethod,
    /// Byte budget for everything the solver holds beyond the row
    /// source itself is derived from this **total** budget (row source
    /// included). `None` means unlimited: one fully cached block.
    pub mem_budget: Option<usize>,
    /// Explicit column-block count for the steady-state sweep;
    /// `None` lets the planner derive it from the budget. Exposed for
    /// the block-invariance property tests.
    pub blocks: Option<usize>,
    /// Poisson truncation error for [`crate::transient`].
    pub epsilon: f64,
    /// Steady-state detection threshold for [`crate::transient`]
    /// (`None` disables the optimization).
    pub steady_state_detection: Option<f64>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
            relaxation: 1.0,
            method: StreamMethod::Auto,
            mem_budget: None,
            blocks: None,
            epsilon: 1e-10,
            steady_state_detection: Some(1e-12),
        }
    }
}

impl StreamOptions {
    pub(crate) fn validate(&self) -> Result<()> {
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(Error::invalid(format!(
                "tolerance must be positive, got {}",
                self.tolerance
            )));
        }
        if self.max_iterations == 0 {
            return Err(Error::invalid("max_iterations must be > 0"));
        }
        if !(self.relaxation > 0.0 && self.relaxation < 2.0) {
            return Err(Error::invalid(format!(
                "SOR relaxation must lie in (0, 2), got {}",
                self.relaxation
            )));
        }
        if let Some(b) = self.blocks {
            if b == 0 {
                return Err(Error::invalid("block count must be > 0"));
            }
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(Error::invalid(format!(
                "epsilon must lie in (0,1), got {}",
                self.epsilon
            )));
        }
        if let Some(d) = self.steady_state_detection {
            if d.is_nan() || d <= 0.0 {
                return Err(Error::invalid(format!(
                    "steady-state detection threshold must be positive, got {d}"
                )));
            }
        }
        Ok(())
    }
}

/// Bytes per stored column-slice entry: `(j_local: u32, i: u32, rate: f64)`.
pub(crate) const SLICE_ENTRY_BYTES: u64 = 16;

/// Hard ceiling on the auto-derived block count: beyond this the
/// per-sweep recompute overhead dwarfs any memory saving.
const MAX_AUTO_BLOCKS: usize = 4096;

/// The streaming solver's memory layout for one solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MemoryPlan {
    /// Chain size.
    pub states: usize,
    /// Off-diagonal arcs (parallel arcs counted separately).
    pub arcs: u64,
    /// Column blocks in the steady-state sweep (1 for transient).
    pub blocks: usize,
    /// Blocks whose column slice stays cached across sweeps; the
    /// remaining `blocks - cached_blocks` are recomputed from the row
    /// source every sweep. Filled in by the solver once actual slice
    /// sizes are known.
    pub cached_blocks: usize,
    /// Bytes resident in the row source itself.
    pub source_bytes: usize,
    /// Bytes of iteration vectors (`π`, exit rates, scratch).
    pub vector_bytes: usize,
    /// Estimated bytes of the full column-slice store (`arcs · 16`).
    pub slice_bytes: u64,
    /// Bytes available for cached slices after source + vectors.
    pub cache_bytes: u64,
    /// The caller's total budget, if any.
    pub budget: Option<usize>,
}

impl MemoryPlan {
    /// Conservative peak-resident estimate for this plan: source,
    /// vectors, cached slices, and (if any block is recomputed) one
    /// average block of scratch.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        let (cached, scratch) = if self.slice_bytes <= self.cache_bytes {
            (self.slice_bytes, 0)
        } else {
            // Mirror of the solver's prefix-caching policy: cache whole
            // average-sized blocks, keeping one block of headroom as
            // recompute scratch.
            let per_block = (self.slice_bytes / self.blocks.max(1) as u64).max(1);
            let fit = self.cache_bytes.saturating_sub(per_block) / per_block;
            (per_block * fit.min(self.blocks as u64), per_block)
        };
        self.source_bytes as u64 + self.vector_bytes as u64 + cached + scratch
    }
}

/// What the planner decided for a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutcome {
    /// The budget admits an exact streaming solve.
    Exact(MemoryPlan),
    /// The budget cannot even hold the row source plus the iteration
    /// vectors — escalate to [`crate::bounded_steady_reward`].
    NeedsBounds {
        /// Minimum bytes an exact solve would need.
        required: usize,
        /// The caller's budget.
        budget: usize,
    },
}

fn plan(
    states: usize,
    arcs: u64,
    source_bytes: usize,
    vector_bytes: usize,
    blockable: bool,
    opts: &StreamOptions,
) -> PlanOutcome {
    let slice_bytes = arcs * SLICE_ENTRY_BYTES;
    let required = source_bytes + vector_bytes;
    let cache_bytes = match opts.mem_budget {
        None => u64::MAX,
        Some(b) => {
            if b < required {
                return PlanOutcome::NeedsBounds {
                    required,
                    budget: b,
                };
            }
            (b - required) as u64
        }
    };
    let blocks = if !blockable {
        1
    } else if let Some(b) = opts.blocks {
        b.min(states.max(1))
    } else if slice_bytes <= cache_bytes {
        1
    } else {
        // Target an average block slice of at most half the spare
        // bytes, so one block can always be recomputed into scratch
        // while another stays cached.
        let target = (cache_bytes / 2).max(1);
        usize::try_from(slice_bytes.div_ceil(target))
            .unwrap_or(MAX_AUTO_BLOCKS)
            .clamp(2, MAX_AUTO_BLOCKS.min(states.max(2)))
    };
    PlanOutcome::Exact(MemoryPlan {
        states,
        arcs,
        blocks,
        cached_blocks: 0,
        source_bytes,
        vector_bytes,
        slice_bytes,
        cache_bytes,
        budget: opts.mem_budget,
    })
}

/// Plans a steady-state solve: iteration vectors are `π` + exit rates
/// (+ one scratch vector for power iteration).
#[must_use]
pub fn plan_steady(
    states: usize,
    arcs: u64,
    source_bytes: usize,
    opts: &StreamOptions,
) -> PlanOutcome {
    let vectors = match opts.method {
        StreamMethod::Power => 3 * 8 * states,
        StreamMethod::Auto | StreamMethod::Sor => 2 * 8 * states,
    };
    plan(states, arcs, source_bytes, vectors, true, opts)
}

/// Plans a transient solve: the two-vector uniformization recurrence
/// plus the accumulator and exit rates (`4n` doubles); rows are always
/// streamed, never cached, so there is no block decision to make.
#[must_use]
pub fn plan_transient(
    states: usize,
    arcs: u64,
    source_bytes: usize,
    opts: &StreamOptions,
) -> PlanOutcome {
    plan(states, arcs, source_bytes, 4 * 8 * states, false, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_one_cached_block() {
        let opts = StreamOptions::default();
        match plan_steady(1000, 5000, 64_000, &opts) {
            PlanOutcome::Exact(p) => {
                assert_eq!(p.blocks, 1);
                assert_eq!(p.slice_bytes, 5000 * 16);
                assert!(p.cache_bytes > p.slice_bytes);
            }
            PlanOutcome::NeedsBounds { .. } => panic!("unlimited budget must plan exact"),
        }
    }

    #[test]
    fn tight_budget_partitions_into_blocks() {
        let opts = StreamOptions {
            // source 0, vectors 2*8*1000 = 16k; slices 80k; budget
            // leaves 24k spare -> ~7 blocks.
            mem_budget: Some(40_000),
            ..Default::default()
        };
        match plan_steady(1000, 5000, 0, &opts) {
            PlanOutcome::Exact(p) => {
                assert!(p.blocks > 1, "blocks = {}", p.blocks);
                assert!(p.peak_bytes() <= 40_000, "peak = {}", p.peak_bytes());
            }
            PlanOutcome::NeedsBounds { .. } => panic!("budget admits the vectors"),
        }
    }

    #[test]
    fn hopeless_budget_escalates_to_bounds() {
        let opts = StreamOptions {
            mem_budget: Some(10_000),
            ..Default::default()
        };
        match plan_steady(1000, 5000, 0, &opts) {
            PlanOutcome::NeedsBounds { required, budget } => {
                assert_eq!(required, 16_000);
                assert_eq!(budget, 10_000);
            }
            PlanOutcome::Exact(_) => panic!("10k cannot hold 16k of vectors"),
        }
    }

    #[test]
    fn explicit_block_count_is_respected_and_clamped() {
        let opts = StreamOptions {
            blocks: Some(7),
            ..Default::default()
        };
        match plan_steady(1000, 5000, 0, &opts) {
            PlanOutcome::Exact(p) => assert_eq!(p.blocks, 7),
            PlanOutcome::NeedsBounds { .. } => panic!(),
        }
        let opts = StreamOptions {
            blocks: Some(50),
            ..Default::default()
        };
        match plan_steady(3, 2, 0, &opts) {
            PlanOutcome::Exact(p) => assert_eq!(p.blocks, 3),
            PlanOutcome::NeedsBounds { .. } => panic!(),
        }
    }

    #[test]
    fn options_validate() {
        assert!(StreamOptions::default().validate().is_ok());
        for bad in [
            StreamOptions {
                tolerance: 0.0,
                ..Default::default()
            },
            StreamOptions {
                max_iterations: 0,
                ..Default::default()
            },
            StreamOptions {
                relaxation: 2.0,
                ..Default::default()
            },
            StreamOptions {
                blocks: Some(0),
                ..Default::default()
            },
            StreamOptions {
                epsilon: 1.0,
                ..Default::default()
            },
            StreamOptions {
                steady_state_detection: Some(0.0),
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }
}
