//! Streaming transient solution by on-the-fly uniformization.
//!
//! Jensen's method with Poisson tail control, exactly as the in-core
//! solver — but the uniformized matrix–vector product is evaluated by
//! scattering each regenerated row into the next iterate, so nothing
//! beyond the two recurrence vectors and the accumulator is ever
//! stored. The recurrence, truncation, steady-state detection, and
//! final clamp/renormalize mirror `Ctmc::transient_report`, keeping the
//! streaming path differential-testable to tight tolerances.

use crate::num_err;
use crate::plan::{plan_transient, MemoryPlan, PlanOutcome, StreamOptions};
use crate::source::{scan_rates, RowSource};
use reliab_core::{Error, Result};
use reliab_numeric::poisson_weights;
use reliab_obs as obs;

/// A transient distribution plus streaming-uniformization telemetry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StreamTransientReport {
    /// The state-probability vector at the requested time.
    pub distribution: Vec<f64>,
    /// Streaming matrix–vector products performed (each one full pass
    /// over the row source).
    pub matvecs: usize,
    /// Number of significant Poisson terms in the truncated sum.
    pub poisson_terms: usize,
    /// If steady-state detection fired, the term index at which the
    /// uniformized iterate stopped changing.
    pub converged_at: Option<usize>,
    /// The memory plan the solve ran under.
    pub plan: MemoryPlan,
}

/// State-probability vector at time `t`, starting from `initial`, by
/// on-the-fly uniformization over a row source.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a bad distribution, negative
/// `t`, bad options, or a memory budget below the row source plus the
/// recurrence vectors; numerical errors propagate from the
/// Poisson-weight computation; row-source errors propagate.
pub fn transient(
    src: &mut dyn RowSource,
    initial: &[f64],
    t: f64,
    opts: &StreamOptions,
) -> Result<StreamTransientReport> {
    let _span = obs::span("stream.transient");
    opts.validate()?;
    let n = src.num_states();
    check_distribution(initial, n)?;
    if t.is_nan() || t < 0.0 || !t.is_finite() {
        return Err(Error::invalid(format!(
            "time must be finite and >= 0, got {t}"
        )));
    }
    let scan = scan_rates(src)?;
    let plan = match plan_transient(n, scan.arcs, src.resident_bytes(), opts) {
        PlanOutcome::Exact(p) => p,
        PlanOutcome::NeedsBounds { required, budget } => {
            return Err(Error::invalid(format!(
                "memory budget of {budget} bytes cannot hold the transient recurrence \
                 ({required} bytes of row source + vectors); raise the budget"
            )))
        }
    };
    let identity = |matvecs: usize| StreamTransientReport {
        distribution: initial.to_vec(),
        matvecs,
        poisson_terms: 0,
        converged_at: None,
        plan,
    };
    if t == 0.0 {
        return Ok(identity(0));
    }
    let q = scan.q;
    if q <= 1e-299 {
        // No transitions at all: distribution never moves.
        return Ok(identity(0));
    }
    let w = poisson_weights(q * t, opts.epsilon).map_err(num_err)?;

    let mut v = initial.to_vec();
    let mut next = vec![0.0f64; n];
    let mut out = vec![0.0f64; n];
    let mut row: Vec<(u32, f64)> = Vec::new();
    let mut converged_at: Option<usize> = None;
    let mut matvecs = 0usize;

    // One uniformized step `next = v · P`, P = I + Q/q, scattered row
    // by row — the streaming counterpart of the CSR `vecmat`.
    macro_rules! step {
        () => {{
            for x in next.iter_mut() {
                *x = 0.0;
            }
            for i in 0..n {
                let vi = v[i];
                if vi == 0.0 {
                    continue;
                }
                next[i] += vi * (1.0 - scan.exit[i] / q);
                src.row(i as u32, &mut row)?;
                for &(j, r) in &row {
                    next[j as usize] += vi * (r / q);
                }
            }
            matvecs += 1;
        }};
    }

    // Advance to the left truncation point, checking for early
    // steady-state en route.
    for _k in 0..w.left {
        step!();
        if let Some(thresh) = opts.steady_state_detection {
            if max_abs_diff(&v, &next) < thresh {
                std::mem::swap(&mut v, &mut next);
                converged_at = Some(0);
                break;
            }
        }
        std::mem::swap(&mut v, &mut next);
    }

    if converged_at.is_none() {
        for idx in 0..w.weights.len() {
            let wk = w.weights[idx];
            for i in 0..n {
                out[i] += wk * v[i];
            }
            if idx + 1 < w.weights.len() {
                step!();
                if let Some(thresh) = opts.steady_state_detection {
                    if max_abs_diff(&v, &next) < thresh {
                        std::mem::swap(&mut v, &mut next);
                        converged_at = Some(idx + 1);
                        break;
                    }
                }
                std::mem::swap(&mut v, &mut next);
            }
        }
    }

    if let Some(start) = converged_at {
        // The iterate has converged: the remaining Poisson mass all
        // multiplies (approximately) the same vector.
        let consumed: f64 = w.weights[..start].iter().sum();
        let remaining = 1.0 - consumed;
        for i in 0..n {
            out[i] += remaining * v[i];
        }
    }

    // Clean round-off: clamp and renormalize.
    let mut total = 0.0;
    for o in &mut out {
        *o = o.max(0.0);
        total += *o;
    }
    if total > 0.0 {
        for o in &mut out {
            *o /= total;
        }
    }
    obs::event(
        "stream.transient.point",
        &[
            ("t", t.into()),
            ("matvecs", matvecs.into()),
            ("poisson_terms", w.weights.len().into()),
        ],
    );
    obs::counter_add("stream.transient.points", 1);
    obs::counter_add("stream.transient.matvecs", matvecs as u64);
    Ok(StreamTransientReport {
        distribution: out,
        matvecs,
        poisson_terms: w.weights.len(),
        converged_at,
        plan,
    })
}

fn check_distribution(p: &[f64], n: usize) -> Result<()> {
    if p.len() != n {
        return Err(Error::invalid(format!(
            "distribution length {} != number of states {n}",
            p.len()
        )));
    }
    let mut total = 0.0;
    for (i, &v) in p.iter().enumerate() {
        if !(0.0..=1.0).contains(&v) || v.is_nan() {
            return Err(Error::invalid(format!(
                "distribution entry {i} = {v} must lie in [0, 1]"
            )));
        }
        total += v;
    }
    if (total - 1.0).abs() > 1e-9 {
        return Err(Error::invalid(format!(
            "distribution sums to {total}, expected 1"
        )));
    }
    Ok(())
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CsrRowSource;
    use reliab_markov::{Ctmc, CtmcBuilder, TransientOptions};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, lambda).unwrap();
        b.transition(down, up, mu).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_in_core_uniformization() {
        let c = two_state(0.4, 1.7);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let mut src = CsrRowSource::new(&c);
        for &t in &[0.0, 0.1, 0.5, 1.0, 5.0, 50.0] {
            let streamed = transient(&mut src, &p0, t, &StreamOptions::default()).unwrap();
            let exact = c.transient(&p0, t).unwrap();
            for (i, (s, e)) in streamed.distribution.iter().zip(&exact).enumerate() {
                assert!((s - e).abs() < 1e-12, "t = {t}, state {i}");
            }
        }
    }

    #[test]
    fn telemetry_matches_in_core_solver() {
        // Stiff chain: steady-state detection must fire at the same
        // term index as the in-core solver, with the same matvec count.
        let c = two_state(1e-4, 100.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let mut src = CsrRowSource::new(&c);
        let streamed = transient(&mut src, &p0, 1000.0, &StreamOptions::default()).unwrap();
        let exact = c
            .transient_report(&p0, 1000.0, &TransientOptions::default())
            .unwrap();
        assert_eq!(streamed.matvecs, exact.matvecs);
        assert_eq!(streamed.poisson_terms, exact.poisson_terms);
        assert_eq!(streamed.converged_at, exact.converged_at);
        assert!(streamed.converged_at.is_some());
    }

    #[test]
    fn inputs_validated() {
        let c = two_state(1.0, 1.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let mut src = CsrRowSource::new(&c);
        assert!(transient(&mut src, &p0, -1.0, &StreamOptions::default()).is_err());
        assert!(transient(&mut src, &[0.5, 0.6], 1.0, &StreamOptions::default()).is_err());
        assert!(transient(&mut src, &[0.5], 1.0, &StreamOptions::default()).is_err());
        let bad = StreamOptions {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(transient(&mut src, &p0, 1.0, &bad).is_err());
    }

    #[test]
    fn t_zero_is_identity_and_costs_nothing() {
        let c = two_state(1.0, 1.0);
        let p0 = vec![0.25, 0.75];
        let mut src = CsrRowSource::new(&c);
        let r = transient(&mut src, &p0, 0.0, &StreamOptions::default()).unwrap();
        assert_eq!(r.distribution, p0);
        assert_eq!(r.matvecs, 0);
    }

    #[test]
    fn budget_below_vectors_is_rejected() {
        let c = two_state(1.0, 1.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let mut src = CsrRowSource::new(&c);
        let opts = StreamOptions {
            mem_budget: Some(8),
            ..Default::default()
        };
        assert!(transient(&mut src, &p0, 1.0, &opts).is_err());
    }
}
