//! Property tests for the streaming solver tier: on randomly generated
//! bounded SPNs, the arena row source must reproduce the materialized
//! generator exactly, the streaming solvers must agree with the in-core
//! path to tight tolerances, and the streamed results must be bitwise
//! identical at any block count and any admitting memory budget.
//!
//! Net generation is seeded and self-contained so any failure
//! reproduces from the seed in the assertion message (same scheme as
//! the `reliab-spn` reachability property tests).

use reliab_markov::{IterativeOptions, SteadyStateMethod, TransientOptions};
use reliab_spn::{PlaceId, ReachabilityOptions, SpnBuilder};
use reliab_stream::{
    scan_rates, steady_state, transient, ArenaRowSource, CsrRowSource, RowSource, StreamMethod,
    StreamOptions,
};

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64(&mut self) -> f64 {
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A random bounded SPN on 2–4 places: a capped token source, random
/// timed movers, and immediate transitions that strictly decrease the
/// token count (so vanishing chains terminate).
fn random_spn(seed: u64) -> reliab_spn::Spn {
    let mut rng = Rng(seed);
    let mut b = SpnBuilder::new();
    let num_places = 2 + rng.below(3) as usize;
    let cap = 3 + rng.below(3) as u32;
    let places: Vec<PlaceId> = (0..num_places)
        .map(|i| {
            let tokens = rng.below(3) as u32;
            b.place(&format!("p{i}"), tokens)
        })
        .collect();
    let pick = |rng: &mut Rng| places[rng.below(num_places as u64) as usize];

    let source = b.timed("t_src", 0.5 + rng.f64());
    let src_place = pick(&mut rng);
    b.output_arc(source, src_place, 1);
    b.inhibitor_arc(source, src_place, cap);

    let num_timed = 2 + rng.below(3);
    for k in 0..num_timed {
        let t = b.timed(&format!("t{k}"), 0.2 + 2.0 * rng.f64());
        let from = pick(&mut rng);
        let to = pick(&mut rng);
        b.input_arc(t, from, 1);
        if to != from {
            b.output_arc(t, to, 1);
            b.inhibitor_arc(t, to, cap);
        }
    }

    let num_immediate = rng.below(3);
    for k in 0..num_immediate {
        let t = b.immediate(&format!("i{k}"), 0.1 + rng.f64(), rng.below(2) as u32);
        let a = pick(&mut rng);
        let bp = pick(&mut rng);
        if a == bp {
            b.input_arc(t, a, 2);
        } else {
            b.input_arc(t, a, 1);
            b.input_arc(t, bp, 1);
        }
        if rng.below(2) == 0 {
            let out = pick(&mut rng);
            b.output_arc(t, out, 1);
            b.inhibitor_arc(t, out, cap + 2);
        }
    }

    b.build().expect("random net is well-formed")
}

#[test]
fn arena_source_matches_csr_source_on_random_nets() {
    for seed in 0..30u64 {
        let spn = random_spn(seed);
        let ropts = ReachabilityOptions::default();
        let solved = spn.solve_with(&ropts).expect("bounded net solves");
        let space = spn.tangible_space(&ropts).expect("space generates");
        let mut arena = ArenaRowSource::new(&space);
        let mut csr = CsrRowSource::new(solved.ctmc());

        // Exit rates recovered from regenerated rows must be bitwise
        // identical to the materialized builder's stored diagonal: the
        // arena emits the same unmerged arc stream the builder summed.
        let a = scan_rates(&mut arena).unwrap();
        assert_eq!(a.exit, solved.ctmc().exit_rates(), "seed {seed}");
        // The CSR adapter sums *merged* (column-sorted) rows, so its
        // exits agree only to round-off where parallel arcs exist.
        let c = scan_rates(&mut csr).unwrap();
        for (j, (&ce, &me)) in c.exit.iter().zip(solved.ctmc().exit_rates()).enumerate() {
            assert!(
                (ce - me).abs() <= 1e-12 * me.max(1.0),
                "seed {seed}, state {j}: {ce} vs {me}"
            );
        }
        assert!(
            (a.q - c.q).abs() <= 1e-12 * a.q.max(1.0),
            "seed {seed}: {} vs {}",
            a.q,
            c.q
        );
        assert!(a.arcs >= c.arcs, "seed {seed}: CSR merges parallel arcs");
    }
}

#[test]
fn streaming_steady_state_matches_materialized_path() {
    let mut compared = 0usize;
    for seed in 0..30u64 {
        let spn = random_spn(seed);
        let ropts = ReachabilityOptions::default();
        let solved = spn.solve_with(&ropts).unwrap();
        let space = spn.tangible_space(&ropts).unwrap();
        let mut arena = ArenaRowSource::new(&space);

        let exact = solved
            .ctmc()
            .steady_state_with(&SteadyStateMethod::Sor(IterativeOptions::default()));
        let streamed = steady_state(&mut arena, &StreamOptions::default());
        match (&exact, &streamed) {
            (Ok(e), Ok(s)) => {
                compared += 1;
                for (i, (e_i, s_i)) in e.iter().zip(&s.pi).enumerate() {
                    assert!(
                        (e_i - s_i).abs() < 1e-8,
                        "seed {seed}, state {i}: {e_i} vs {s_i}"
                    );
                }
            }
            (Err(_), Err(_)) => {}
            _ => panic!(
                "seed {seed}: solvability differs (exact {exact:?} vs streamed {streamed:?})"
            ),
        }
    }
    assert!(compared >= 10, "only {compared} nets were solvable");
}

#[test]
fn streaming_transient_matches_materialized_path() {
    for seed in 0..20u64 {
        let spn = random_spn(seed);
        let ropts = ReachabilityOptions::default();
        let solved = spn.solve_with(&ropts).unwrap();
        let space = spn.tangible_space(&ropts).unwrap();
        let mut arena = ArenaRowSource::new(&space);
        let n = space.num_markings();

        let mut p0 = vec![0.0f64; n];
        for &(i, p) in space.initial_pairs() {
            p0[i as usize] += p;
        }
        for &t in &[0.0, 0.3, 2.0, 25.0] {
            let exact = solved
                .ctmc()
                .transient_with(&p0, t, &TransientOptions::default())
                .unwrap();
            let streamed = transient(&mut arena, &p0, t, &StreamOptions::default()).unwrap();
            for (i, (e_i, s_i)) in exact.iter().zip(&streamed.distribution).enumerate() {
                assert!(
                    (e_i - s_i).abs() < 1e-8,
                    "seed {seed}, t {t}, state {i}: {e_i} vs {s_i}"
                );
            }
        }
    }
}

#[test]
fn stream_results_are_bitwise_invariant_to_blocks_and_budget() {
    for seed in [1u64, 4, 9, 13, 22] {
        let spn = random_spn(seed);
        let ropts = ReachabilityOptions::default();
        let space = spn.tangible_space(&ropts).unwrap();
        let mut arena = ArenaRowSource::new(&space);
        let n = space.num_markings();

        let reference = match steady_state(&mut arena, &StreamOptions::default()) {
            Ok(r) => r,
            Err(_) => continue, // absorbing / non-converging net: skip
        };
        for blocks in [1usize, 2, 5, 32, 1000] {
            for method in [StreamMethod::Sor, StreamMethod::Power] {
                let r = steady_state(
                    &mut arena,
                    &StreamOptions {
                        blocks: Some(blocks),
                        method,
                        ..Default::default()
                    },
                );
                if method == StreamMethod::Sor {
                    let r = r.unwrap();
                    assert_eq!(
                        r.pi, reference.pi,
                        "seed {seed}, blocks {blocks}: SOR not block-invariant"
                    );
                    assert_eq!(r.iterations, reference.iterations, "seed {seed}");
                } else if let Ok(r) = r {
                    // Power may legitimately fail to converge where SOR
                    // succeeds; when it converges it must agree loosely.
                    for i in 0..n {
                        assert!(
                            (r.pi[i] - reference.pi[i]).abs() < 1e-6,
                            "seed {seed}, blocks {blocks}, state {i}"
                        );
                    }
                }
            }
        }
        // Any budget that admits the model must leave the result
        // bitwise unchanged, whatever mix of cached and recomputed
        // blocks it produces.
        let floor = arena.resident_bytes() + 2 * 8 * n;
        for extra in [0usize, 64, 512, 4096, 1 << 22] {
            let r = steady_state(
                &mut arena,
                &StreamOptions {
                    mem_budget: Some(floor + extra),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                r.pi, reference.pi,
                "seed {seed}, budget floor+{extra}: not budget-invariant"
            );
        }
    }
}
