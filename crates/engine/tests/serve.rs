//! Concurrency harness for the `reliab-serve` daemon: every shipped
//! spec is fired at an in-process server from many client threads at
//! once, and each response's measures must be **byte-for-byte**
//! identical to the committed CLI golden snapshot in `tests/golden/`
//! — on the memo-miss path (first solve) and the memo-hit path (every
//! repeat) alike. A separate test locks the CLI's `--connect` client
//! mode to its local-solve output, bytes and exit code both.

use reliab_engine::serve::{http_request, HttpResponse, KeepAliveClient, ServeConfig, Server};
use reliab_spec::json::{self, JsonValue};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig::default();
    mutate(&mut config);
    Server::bind(config).expect("ephemeral bind succeeds")
}

fn post(addr: &str, path: &str, body: &str) -> HttpResponse {
    http_request(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        body,
    )
    .expect("request reaches the daemon")
}

fn get(addr: &str, path: &str) -> HttpResponse {
    http_request(addr, "GET", path, &[], "").expect("request reaches the daemon")
}

/// Waits for the daemon to report an empty queue and no in-flight
/// solves — the "no leaked queue slots" invariant.
fn assert_drains(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (queued, in_flight) = server.queue_stats();
        if queued == 0 && in_flight == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "queue never drained: {queued} queued, {in_flight} in flight"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Spec names shipped in `specs/`, sorted. The ≥10⁶-marking streaming
/// exemplar is excluded: solving it takes minutes in a debug build and
/// its headline golden is not in the batch snapshot format (it is
/// covered by `bench-stream` and the env-gated golden_cli test).
fn spec_names(root: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(root.join("specs"))
        .expect("specs/ exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .map(|n| n.trim_end_matches(".json").to_owned())
        .filter(|n| {
            let text = std::fs::read_to_string(root.join("specs").join(format!("{n}.json")))
                .expect("spec readable");
            !matches!(
                reliab_spec::ModelSpec::from_json_str(&text),
                Ok(reliab_spec::ModelSpec::Spn(s)) if s.max_markings.unwrap_or(0) > 200_000
            )
        })
        .collect();
    names.sort();
    names
}

/// The compact serialization of the measures subtree locked in the
/// golden snapshot for `specs/<name>.json`. The daemon and the CLI
/// share one JSON serializer, so comparing these strings compares the
/// wire bytes.
fn golden_measures(root: &Path, name: &str) -> String {
    let text = std::fs::read_to_string(root.join("tests/golden").join(format!("{name}.json")))
        .unwrap_or_else(|e| panic!("golden snapshot for {name} unreadable: {e}"));
    let doc = json::parse(&text).expect("golden snapshot is JSON");
    let entries = doc.as_array().expect("golden snapshot is an array");
    assert_eq!(entries.len(), 1, "one entry per golden snapshot");
    entries[0]
        .get("measures")
        .expect("golden entry has measures")
        .to_json()
}

fn response_measures(response: &HttpResponse) -> String {
    assert_eq!(
        response.status,
        200,
        "solve failed: {}",
        response.body.trim_end()
    );
    let doc = json::parse(&response.body).expect("response is JSON");
    assert_eq!(
        doc.get("kind").and_then(JsonValue::as_str),
        Some("result"),
        "not a result: {}",
        response.body.trim_end()
    );
    doc.get("measures").expect("result has measures").to_json()
}

/// The tentpole differential: 4 client threads each submit **all**
/// shipped specs twice — once as a library reference and once inline —
/// fully concurrently, against a server with 4 solver workers. Every
/// one of the 160 responses must match its golden snapshot bytes.
/// Round one exercises the memo-miss path; every structurally repeated
/// request (same spec from another thread or round) exercises the
/// shared-cache hit path, which must be indistinguishable on the wire.
#[test]
fn concurrent_solves_match_golden_snapshots_byte_for_byte() {
    let root = repo_root();
    let names = spec_names(&root);
    assert!(names.len() >= 10, "expected the 10 shipped specs");
    let golden: Vec<(String, String, String)> = names
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(root.join("specs").join(format!("{name}.json")))
                .expect("spec readable");
            (name.clone(), text, golden_measures(&root, name))
        })
        .collect();

    let server = boot(|c| {
        c.workers = 4;
        c.spec_dir = Some(root.join("specs"));
        c.queue_depth = 256;
        // Heavy debug-mode solves time-sharing few cores can exceed any
        // fixed deadline; correctness, not latency, is under test here.
        c.default_deadline_ms = 0;
    });
    let addr = server.local_addr().to_string();

    const CLIENTS: usize = 4;
    let traces: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let addr = &addr;
            let golden = &golden;
            let traces = &traces;
            scope.spawn(move || {
                for round in 0..2 {
                    // Stagger per-client to vary the interleaving.
                    for (name, text, expected) in
                        golden.iter().cycle().skip(client).take(golden.len())
                    {
                        let body = if round == 0 {
                            format!("{{\"kind\":\"solve\",\"spec\":\"{name}\"}}")
                        } else {
                            text.clone()
                        };
                        let response = post(addr, "/solve", &body);
                        let measures = response_measures(&response);
                        assert_eq!(
                            &measures, expected,
                            "{name} (round {round}, client {client}) diverged from golden bytes"
                        );
                        let trace = response
                            .header("x-trace-id")
                            .expect("solve responses carry a trace id")
                            .to_owned();
                        traces.lock().unwrap().push(trace);
                    }
                }
            });
        }
    });

    let traces = traces.into_inner().unwrap();
    assert_eq!(traces.len(), CLIENTS * 2 * golden.len());
    let distinct: BTreeSet<&String> = traces.iter().collect();
    assert_eq!(
        distinct.len(),
        traces.len(),
        "every request gets its own trace id"
    );

    assert_drains(&server);
    let health = get(&addr, "/healthz");
    let doc = json::parse(&health.body).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(doc.get("shed").and_then(JsonValue::as_f64), Some(0.0));
    server.shutdown();
}

/// One socket, the whole spec library, twice: an HTTP/1.1 keep-alive
/// connection drives every shipped spec through `/solve` sequentially
/// (round one memo-miss, round two memo-hit) without reconnecting, and
/// each response must match the golden snapshot bytes just as the
/// one-shot path does. A final `Connection: close` request must be
/// honored — the response says close and the socket then yields EOF.
#[test]
fn keep_alive_connection_serves_sequential_solves() {
    let root = repo_root();
    let names = spec_names(&root);
    let server = boot(|c| {
        c.workers = 2;
        c.spec_dir = Some(root.join("specs"));
        c.default_deadline_ms = 0;
    });
    let addr = server.local_addr().to_string();

    let mut client = KeepAliveClient::connect(&addr).expect("daemon accepts the connection");
    let mut served = 0u64;
    for round in 0..2 {
        for name in &names {
            let body = format!("{{\"kind\":\"solve\",\"spec\":\"{name}\"}}");
            let response = client
                .request(
                    "POST",
                    "/solve",
                    &[("Content-Type", "application/json")],
                    &body,
                )
                .unwrap_or_else(|e| panic!("{name} (round {round}): keep-alive request: {e}"));
            assert_eq!(
                response.header("connection"),
                Some("keep-alive"),
                "{name}: daemon must hold the connection open"
            );
            assert_eq!(
                response_measures(&response),
                golden_measures(&root, name),
                "{name} (round {round}) diverged from golden bytes over keep-alive"
            );
            served += 1;
        }
    }

    // Non-solve routes ride the same socket; the request counter proves
    // every solve above arrived through it.
    let health = client.request("GET", "/healthz", &[], "").expect("health");
    assert_eq!(health.status, 200);
    let doc = json::parse(&health.body).unwrap();
    assert!(
        doc.get("requests")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            >= served as f64,
        "daemon lost track of keep-alive solves"
    );

    let last = client
        .request(
            "POST",
            "/solve",
            &[
                ("Content-Type", "application/json"),
                ("Connection", "close"),
            ],
            &format!("{{\"kind\":\"solve\",\"spec\":\"{}\"}}", names[0]),
        )
        .expect("final request");
    assert_eq!(last.status, 200);
    assert_eq!(
        last.header("connection"),
        Some("close"),
        "Connection: close must be honored"
    );
    assert!(
        client.request("GET", "/healthz", &[], "").is_err(),
        "daemon must close the socket after Connection: close"
    );

    assert_drains(&server);
    server.shutdown();
}

/// The CLI's `--connect` client mode is output- and exit-code-parity
/// locked against local solving: the whole shipped batch and an
/// unreadable-input error case produce identical stdout bytes.
#[test]
fn cli_connect_mode_matches_local_cli_byte_for_byte() {
    let root = repo_root();
    let server = boot(|c| {
        c.workers = 2;
        c.default_deadline_ms = 0;
    });
    let addr = server.local_addr().to_string();

    let run = |extra: &[&str], inputs: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
            .current_dir(&root)
            .args(extra)
            .arg("--json")
            .args(inputs)
            .output()
            .expect("reliab-cli launches");
        (
            out.status.code().expect("exit code"),
            String::from_utf8(out.stdout).expect("utf-8 stdout"),
        )
    };

    let inputs: Vec<String> = spec_names(&root)
        .iter()
        .map(|n| format!("specs/{n}.json"))
        .collect();
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let (local_code, local_out) = run(&[], &input_refs);
    let (remote_code, remote_out) = run(&["--connect", &addr], &input_refs);
    assert_eq!(local_code, 0);
    assert_eq!(remote_code, 0);
    assert_eq!(
        local_out, remote_out,
        "--connect output differs from local solving"
    );

    // Error parity: a malformed document fails with the same structured
    // error JSON and the same exit code through both front ends.
    let bad = root.join("target/serve-test-bad-input.json");
    std::fs::write(&bad, "this is not a model\n").unwrap();
    let bad = bad.to_string_lossy().into_owned();
    let (local_code, local_out) = run(&[], &[&bad]);
    let (remote_code, remote_out) = run(&["--connect", &addr], &[&bad]);
    assert_eq!(local_code, 1);
    assert_eq!(remote_code, local_code, "exit-code parity broke");
    assert_eq!(local_out, remote_out, "error-document parity broke");
    assert!(local_out.contains("\"invalid_parameter\""));

    assert_drains(&server);
    server.shutdown();
}

/// Library solves (`{"spec": name}`) and inline solves of the same
/// document are the same solve: identical measures, and the library
/// response is additionally stamped with the spec name.
#[test]
fn library_and_inline_solves_agree() {
    let root = repo_root();
    let server = boot(|c| {
        c.workers = 1;
        c.spec_dir = Some(root.join("specs"));
        c.default_deadline_ms = 0;
    });
    let addr = server.local_addr().to_string();

    let text = std::fs::read_to_string(root.join("specs/database_node.json")).unwrap();
    let by_name = post(
        &addr,
        "/solve",
        "{\"kind\":\"solve\",\"spec\":\"database_node\"}",
    );
    let inline = post(&addr, "/solve", &text);
    assert_eq!(response_measures(&by_name), response_measures(&inline));
    let doc = json::parse(&by_name.body).unwrap();
    assert_eq!(
        doc.get("spec").and_then(JsonValue::as_str),
        Some("database_node")
    );

    // Stats ride along only when asked for.
    let with_stats = post(
        &addr,
        "/solve",
        "{\"kind\":\"solve\",\"spec\":\"database_node\",\"stats\":true}",
    );
    let doc = json::parse(&with_stats.body).unwrap();
    assert!(doc.get("stats").is_some(), "stats requested but absent");
    assert!(json::parse(&inline.body).unwrap().get("stats").is_none());

    assert_drains(&server);
    server.shutdown();
}

/// `/batch` solves a JSONL body line-by-line, in order, sharing one
/// admission slot; results match per-line `/solve` answers.
#[test]
fn jsonl_batch_matches_individual_solves() {
    let root = repo_root();
    let server = boot(|c| {
        c.workers = 1;
        c.default_deadline_ms = 0;
    });
    let addr = server.local_addr().to_string();

    let a = std::fs::read_to_string(root.join("specs/database_node.json")).unwrap();
    let b = std::fs::read_to_string(root.join("specs/bridge_network.json")).unwrap();
    let a = json::parse(&a).unwrap().to_json();
    let b = json::parse(&b).unwrap().to_json();
    let batch = post(&addr, "/batch", &format!("{a}\n{b}\nnot a document\n"));
    assert_eq!(batch.status, 200);
    let lines: Vec<&str> = batch.body.lines().collect();
    assert_eq!(lines.len(), 3, "one response line per input line");
    assert_eq!(
        json::parse(lines[0])
            .unwrap()
            .get("measures")
            .unwrap()
            .to_json(),
        response_measures(&post(&addr, "/solve", &a))
    );
    assert_eq!(
        json::parse(lines[1])
            .unwrap()
            .get("measures")
            .unwrap()
            .to_json(),
        response_measures(&post(&addr, "/solve", &b))
    );
    let err = json::parse(lines[2]).unwrap();
    assert_eq!(err.get("kind").and_then(JsonValue::as_str), Some("error"));

    assert_drains(&server);
    server.shutdown();
}

/// `/specs` lists the library with model kinds; `/specs/<name>` serves
/// the exact document text; unknown names are structured 404s.
#[test]
fn spec_library_endpoints() {
    let root = repo_root();
    let server = boot(|c| {
        c.workers = 1;
        c.spec_dir = Some(root.join("specs"));
    });
    let addr = server.local_addr().to_string();

    let listing = get(&addr, "/specs");
    assert_eq!(listing.status, 200);
    let doc = json::parse(&listing.body).unwrap();
    let entries = doc.get("specs").and_then(JsonValue::as_array).unwrap();
    assert!(entries.len() >= 10);
    assert!(entries.iter().any(|e| {
        e.get("name").and_then(JsonValue::as_str) == Some("two_component")
            && e.get("kind").and_then(JsonValue::as_str) == Some("ctmc")
    }));

    let fetched = get(&addr, "/specs/two_component");
    assert_eq!(fetched.status, 200);
    assert_eq!(
        fetched.body,
        std::fs::read_to_string(root.join("specs/two_component.json")).unwrap()
    );

    let missing = get(&addr, "/specs/no_such_model");
    assert_eq!(missing.status, 404);
    let doc = json::parse(&missing.body).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("not_found")
    );

    server.shutdown();
}

/// `/healthz` and `/metrics` respond in both exposition formats, and
/// unknown routes / wrong methods get structured errors.
#[test]
fn observability_and_routing_surface() {
    let server = boot(|c| c.workers = 1);
    let addr = server.local_addr().to_string();

    let health = get(&addr, "/healthz");
    assert_eq!(health.status, 200);
    let doc = json::parse(&health.body).unwrap();
    for field in ["status", "uptime_ms", "queue_depth", "in_flight", "workers"] {
        assert!(doc.get(field).is_some(), "healthz lacks {field}");
    }

    // Generate at least one request metric, then scrape both formats.
    let _ = post(&addr, "/solve", "{\"kind\":\"solve\",\"spec\":\"nope\"}");
    let prom = get(&addr, "/metrics");
    assert_eq!(prom.status, 200);
    assert!(prom
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    assert!(prom.body.contains("serve_http_requests"));
    let as_json = get(&addr, "/metrics?format=json");
    assert_eq!(as_json.status, 200);
    assert!(json::parse(&as_json.body).is_ok(), "JSON exposition parses");
    let bogus = get(&addr, "/metrics?format=xml");
    assert_eq!(bogus.status, 400);

    let missing = get(&addr, "/no/such/route");
    assert_eq!(missing.status, 404);
    let wrong_method = get(&addr, "/solve");
    assert_eq!(wrong_method.status, 400);

    server.shutdown();
}

/// Draining: after `/shutdown` the daemon refuses new work with 503
/// `shutting_down` but still answers health checks as `draining`.
#[test]
fn shutdown_drains_and_sheds_new_work() {
    let root = repo_root();
    let server = boot(|c| {
        c.workers = 1;
        c.spec_dir = Some(root.join("specs"));
    });
    let addr = server.local_addr().to_string();

    assert_eq!(
        post(
            &addr,
            "/solve",
            "{\"kind\":\"solve\",\"spec\":\"two_component\"}"
        )
        .status,
        200
    );
    let draining = post(&addr, "/shutdown", "");
    assert_eq!(draining.status, 200);
    let refused = post(
        &addr,
        "/solve",
        "{\"kind\":\"solve\",\"spec\":\"two_component\"}",
    );
    assert_eq!(refused.status, 503);
    let doc = json::parse(&refused.body).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("shutting_down")
    );
    let health = get(&addr, "/healthz");
    assert_eq!(
        json::parse(&health.body)
            .unwrap()
            .get("status")
            .and_then(JsonValue::as_str),
        Some("draining")
    );
    server.shutdown();
}
