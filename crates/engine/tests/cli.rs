//! End-to-end tests of the `reliab-cli` binary: exit codes under
//! per-file error isolation, and the observability flags (`--trace`,
//! `--profile`, `--record`, `--metrics`).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
}

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn spec(name: &str) -> String {
    specs_dir().join(name).to_string_lossy().into_owned()
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("failed to launch reliab-cli")
}

#[test]
fn good_specs_exit_zero() {
    let out = run(cli().arg(spec("two_component.json")));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(!out.stdout.is_empty());
}

#[test]
fn unreadable_file_exits_nonzero() {
    let out = run(cli().arg("/nonexistent/never-there.json"));
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn one_bad_input_fails_batch_but_solves_the_rest() {
    let dir = std::env::temp_dir().join("reliab-cli-test-mixed");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "this is not json").unwrap();

    let out = run(cli()
        .arg(spec("two_component.json"))
        .arg(bad.to_string_lossy().as_ref()));
    // The good file still produced output...
    assert!(String::from_utf8_lossy(&out.stdout).contains("availability"));
    // ...but the batch as a whole reports failure.
    assert_eq!(out.status.code(), Some(1));

    // Same isolation + exit code under --json.
    let out = run(cli()
        .arg("--json")
        .arg(spec("two_component.json"))
        .arg(bad.to_string_lossy().as_ref()));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("availability"));
    assert!(stdout.contains("error"));
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(run(&mut cli()).status.code(), Some(2));
    assert_eq!(run(cli().arg("--bogus-flag")).status.code(), Some(2));
}

/// Every `--json` failure entry is the shared wire-error document —
/// `kind` / `message` / `path` — and the process exit code is exactly
/// what `WireError::exit_code` assigns to that kind. The daemon serves
/// the same document over HTTP, so this locks CLI/daemon parity from
/// the CLI side (tests/serve.rs locks it from the daemon side).
#[test]
fn structured_errors_carry_kind_message_path_with_exit_parity() {
    use reliab_spec::json::{self, JsonValue};
    use reliab_spec::wire::{ErrorKind, WireError};

    let dir = std::env::temp_dir().join("reliab-cli-test-wire-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let bad_param = dir.join("bad_param.json");
    std::fs::write(
        &bad_param,
        r#"{"rbd": {"components": [{"name": "a", "availability": 1.5}],
                    "structure": "a"}}"#,
    )
    .unwrap();

    let cases = [
        (
            bad_param.to_string_lossy().into_owned(),
            ErrorKind::InvalidParameter,
        ),
        ("/nonexistent/never-there.json".to_owned(), ErrorKind::Io),
    ];
    for (path, kind) in cases {
        let out = run(cli().arg("--json").arg(&path));
        let stdout = String::from_utf8_lossy(&out.stdout);
        let doc = json::parse(stdout.trim()).expect("--json output parses");
        let JsonValue::Array(entries) = &doc else {
            panic!("--json output is not an array: {stdout}");
        };
        let error = entries[0].get("error").expect("entry carries an error");
        assert_eq!(
            error.get("kind").and_then(JsonValue::as_str),
            Some(kind.as_str()),
            "wrong kind for {path}"
        );
        let message = error
            .get("message")
            .and_then(JsonValue::as_str)
            .expect("error carries a message");
        assert!(!message.is_empty());
        assert_eq!(
            error.get("path").and_then(JsonValue::as_str),
            Some(path.as_str()),
            "error must name the failing input"
        );
        // A WireError round-tripped from the printed document must
        // classify to the very exit code the process used.
        let wire = WireError::from_json(error).expect("error document round-trips");
        assert_eq!(wire.kind, kind);
        assert_eq!(out.status.code(), Some(wire.exit_code()), "for {path}");
    }
}

/// `--record`/`--profile` templates containing `{trace}` expand to the
/// run's trace id, so two runs pointed at the same template never
/// clobber each other's artifacts.
#[test]
fn trace_keyed_artifacts_do_not_clobber_across_runs() {
    let dir = std::env::temp_dir().join("reliab-cli-test-trace-keyed");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let template = dir.join("rec-{trace}.jsonl");

    for _ in 0..2 {
        let out = run(cli()
            .arg("--record")
            .arg(template.to_string_lossy().as_ref())
            .arg(spec("two_component.json")));
        assert!(out.status.success(), "stderr: {:?}", out.stderr);
    }

    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        files.len(),
        2,
        "expected two trace-keyed artifacts, got {files:?}"
    );
    for name in &files {
        assert!(
            name.starts_with("rec-") && name.ends_with(".jsonl") && !name.contains("{trace}"),
            "unexpanded template in {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_flag_writes_parseable_jsonl_with_nested_spans() {
    let dir = std::env::temp_dir().join("reliab-cli-test-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");

    let out = run(cli()
        .arg("--trace")
        .arg(trace.to_string_lossy().as_ref())
        .args(
            [
                "two_component.json",
                "multiprocessor.json",
                "bridge_network.json",
                "database_node.json",
            ]
            .map(spec),
        ));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty(), "trace file is empty");
    let mut saw_markov_iteration = false;
    let mut saw_bdd_ite = false;
    let mut saw_lifecycle = false;
    let mut saw_nested_span = false;
    let mut saw_duration = false;
    for line in text.lines() {
        // Minimal JSONL well-formedness: each line is one balanced object.
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        saw_markov_iteration |= line.contains("\"markov.iteration\"");
        saw_bdd_ite |= line.contains("\"bdd.ite\"");
        saw_lifecycle |= line.contains("\"engine.lifecycle\"");
        saw_nested_span |=
            line.contains("\"type\":\"span_start\"") && !line.contains("\"parent\":0");
        saw_duration |= line.contains("\"dur_us\":");
    }
    assert!(saw_markov_iteration, "no markov.iteration events in trace");
    assert!(saw_bdd_ite, "no bdd.ite events in trace");
    assert!(saw_lifecycle, "no engine.lifecycle events in trace");
    assert!(saw_nested_span, "no nested spans in trace");
    assert!(saw_duration, "no span durations in trace");
}

/// Pulls every `"ph":"B"` / `"ph":"E"` event from a Chrome-trace
/// export in document order, returning `(ph, span_id)` pairs.
fn chrome_events(text: &str) -> Vec<(char, u64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"ph\":\"").skip(1) {
        let ph = chunk.chars().next().unwrap();
        let span = chunk
            .split("\"span\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .expect("every trace event carries args.span");
        out.push((ph, span));
    }
    out
}

#[test]
fn profile_flag_writes_balanced_chrome_trace() {
    let dir = std::env::temp_dir().join("reliab-cli-test-profile");
    std::fs::create_dir_all(&dir).unwrap();
    let prof = dir.join("profile.json");

    let out = run(cli()
        .arg("--profile")
        .arg(prof.to_string_lossy().as_ref())
        .arg(spec("tandem_queue.json")));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    let text = std::fs::read_to_string(&prof).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'));
    assert_eq!(trimmed.matches('{').count(), trimmed.matches('}').count());
    assert_eq!(trimmed.matches('[').count(), trimmed.matches(']').count());
    assert!(trimmed.contains("\"traceEvents\":["));

    // Every B has a matching E for the same span, stack-nested: walk
    // the events as a stack per (implicit single) pid and require each
    // E to close the most recent open B on its thread lane.
    let events = chrome_events(trimmed);
    assert!(!events.is_empty(), "no trace events emitted");
    let mut open: Vec<u64> = Vec::new();
    for (ph, span) in &events {
        match ph {
            'B' => open.push(*span),
            'E' => {
                let top = open.pop().expect("E without a matching open B");
                assert_eq!(top, *span, "E closes a span that is not on top");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(open.is_empty(), "unclosed B events: {open:?}");

    // Timestamps are monotone in document order (ties allowed).
    let ts: Vec<u64> = trimmed
        .split("\"ts\":")
        .skip(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps not sorted");

    // The solve's phases show up by name, stamped with a trace id.
    for needle in ["engine.solve", "spec.solve", "spn.reach", "\"trace\":"] {
        assert!(trimmed.contains(needle), "profile missing {needle}");
    }
}

#[test]
fn record_flag_emits_per_iteration_residuals() {
    let dir = std::env::temp_dir().join("reliab-cli-test-record");
    std::fs::create_dir_all(&dir).unwrap();

    // markov + spn levels from the tandem queue; hier from the SIP
    // model; sim from the lognormal spec forced through --method sim.
    let rec = dir.join("record.jsonl");
    let out = run(cli()
        .arg("--record")
        .arg(rec.to_string_lossy().as_ref())
        .args(["tandem_queue.json", "sip_hierarchy.json"].map(spec)));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = std::fs::read_to_string(&rec).unwrap();
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }
    for series in ["markov.iteration", "hier.iteration", "spn.reach.level"] {
        assert!(
            text.contains(&format!("\"series\":\"{series}\"")),
            "record missing series {series}"
        );
    }
    // Residual series really are per-iteration: the hier solve takes
    // several sweeps, each with its own residual field.
    let hier_records = text
        .lines()
        .filter(|l| l.contains("\"series\":\"hier.iteration\"") && l.contains("\"residual\":"))
        .count();
    assert!(
        hier_records >= 2,
        "expected >= 2 hier iterations, got {hier_records}"
    );
    assert!(text.contains("\"series_meta\""));

    let rec_sim = dir.join("record_sim.jsonl");
    let out = run(cli()
        .arg("--method")
        .arg("sim")
        .arg("--record")
        .arg(rec_sim.to_string_lossy().as_ref())
        .arg(spec("wfs_lognormal.json")));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = std::fs::read_to_string(&rec_sim).unwrap();
    assert!(
        text.contains("\"series\":\"sim.round\""),
        "no sim.round series"
    );
    assert!(
        text.contains("\"half_width\":"),
        "sim rounds missing CI trajectory"
    );
}

#[test]
fn metrics_flag_dumps_prometheus_and_json() {
    let dir = std::env::temp_dir().join("reliab-cli-test-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let prom = dir.join("metrics.prom");

    let out = run(cli()
        .arg("--metrics")
        .arg(prom.to_string_lossy().as_ref())
        .args(
            [
                "two_component.json",
                "multiprocessor.json",
                "bridge_network.json",
                "database_node.json",
            ]
            .map(spec),
        ));
    assert!(out.status.success(), "stderr: {:?}", out.stderr);

    let text = std::fs::read_to_string(&prom).unwrap();
    let series: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
    assert!(
        series.len() >= 8,
        "expected >= 8 metric series, got {}: {series:?}",
        series.len()
    );
    for needle in [
        "engine_specs_solved",
        "spec_solves",
        "markov_steady_solves",
        "bdd_ite_lookups",
    ] {
        assert!(text.contains(needle), "metrics dump missing {needle}");
    }

    // JSON format parses shallowly: one object, balanced braces.
    let json_path = dir.join("metrics.json");
    let out = run(cli()
        .arg("--metrics")
        .arg(json_path.to_string_lossy().as_ref())
        .arg("--metrics-format")
        .arg("json")
        .arg(spec("two_component.json")));
    assert!(out.status.success());
    let text = std::fs::read_to_string(&json_path).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('{') && trimmed.ends_with('}'));
    assert_eq!(trimmed.matches('{').count(), trimmed.matches('}').count());
    assert!(trimmed.contains("\"counters\""));
}

#[test]
fn progress_flag_reports_each_input() {
    let out = run(cli()
        .arg("--progress")
        .args(["two_component.json", "database_node.json"].map(spec)));
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[1/2]"), "stderr: {stderr}");
    assert!(stderr.contains("[2/2]"), "stderr: {stderr}");
    assert!(stderr.contains("two_component.json"));
}
