//! Golden snapshot tests: `reliab-cli --json` output for every shipped
//! spec in `specs/` is locked against the files in `tests/golden/` at
//! the repository root.
//!
//! When a change legitimately alters solver output (new measures, a
//! numeric method change), regenerate the snapshots and review the
//! diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p reliab-engine --test golden_cli
//! git diff tests/golden/
//! ```
//!
//! The CLI runs with the repository root as its working directory and
//! is handed the relative `specs/<name>.json` path, so the `"file"`
//! field in the locked output is machine-independent. `--stats` is
//! deliberately not used: it reports wall-clock times.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn cli_json_output_matches_golden_snapshots() {
    let root = repo_root();
    let golden_dir = root.join("tests/golden");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(&golden_dir).unwrap();
    }

    let mut spec_names: Vec<String> = std::fs::read_dir(root.join("specs"))
        .expect("specs/ exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    spec_names.sort();
    assert!(!spec_names.is_empty(), "specs/ is empty");

    let mut failures = Vec::new();
    for name in &spec_names {
        let out = Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
            .current_dir(&root)
            .arg("--json")
            .arg(format!("specs/{name}"))
            .output()
            .expect("failed to launch reliab-cli");
        assert!(
            out.status.success(),
            "specs/{name} failed to solve: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let actual = String::from_utf8(out.stdout).expect("utf-8 output");
        assert!(
            !actual.contains("\"error\""),
            "specs/{name} produced an error record:\n{actual}"
        );

        let golden_path = golden_dir.join(name);
        if update {
            std::fs::write(&golden_path, &actual).unwrap();
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => failures.push(format!(
                "specs/{name}: output differs from tests/golden/{name}\n\
                 --- expected ---\n{expected}\n--- actual ---\n{actual}"
            )),
            Err(_) => failures.push(format!(
                "specs/{name}: no golden snapshot at tests/golden/{name} \
                 (run with UPDATE_GOLDEN=1 to create it)"
            )),
        }
    }

    assert!(
        failures.is_empty(),
        "{} golden mismatch(es); regenerate with \
         `UPDATE_GOLDEN=1 cargo test -p reliab-engine --test golden_cli` \
         and review the diff\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

/// Every golden snapshot corresponds to a shipped spec — catches
/// stale snapshots left behind by a renamed or deleted spec.
#[test]
fn no_orphaned_golden_snapshots() {
    let root = repo_root();
    let golden_dir = root.join("tests/golden");
    let Ok(entries) = std::fs::read_dir(&golden_dir) else {
        return; // no snapshots yet
    };
    for entry in entries {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            root.join("specs").join(&name).exists(),
            "tests/golden/{name} has no matching specs/{name}; delete the stale snapshot"
        );
    }
}
