//! Golden snapshot tests: `reliab-cli --json` output for every shipped
//! spec in `specs/` is locked against the files in `tests/golden/` at
//! the repository root.
//!
//! When a change legitimately alters solver output (new measures, a
//! numeric method change), regenerate the snapshots and review the
//! diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p reliab-engine --test golden_cli
//! git diff tests/golden/
//! ```
//!
//! The CLI runs with the repository root as its working directory and
//! is handed the relative `specs/<name>.json` path, so the `"file"`
//! field in the locked output is machine-independent. `--stats` is
//! deliberately not used: it reports wall-clock times.

use std::path::{Path, PathBuf};
use std::process::Command;

use reliab_spec::json::JsonValue;
use reliab_spec::{json, ModelSpec};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Size cap for the per-test spec sweeps: specs whose declared marking
/// cap exceeds this (the ≥10⁶-marking streaming exemplar) take minutes
/// in a debug build, so they are covered by `bench-stream` and the
/// env-gated [`large_spec_headline_golden`] instead.
const SWEEP_MAX_MARKINGS: usize = 200_000;

fn is_large_spec(text: &str) -> bool {
    matches!(
        ModelSpec::from_json_str(text),
        Ok(ModelSpec::Spn(s)) if s.max_markings.unwrap_or(0) > SWEEP_MAX_MARKINGS
    )
}

#[test]
fn cli_json_output_matches_golden_snapshots() {
    let root = repo_root();
    let golden_dir = root.join("tests/golden");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        std::fs::create_dir_all(&golden_dir).unwrap();
    }

    let mut spec_names: Vec<String> = std::fs::read_dir(root.join("specs"))
        .expect("specs/ exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    spec_names.sort();
    assert!(!spec_names.is_empty(), "specs/ is empty");

    let mut failures = Vec::new();
    for name in &spec_names {
        let text = std::fs::read_to_string(root.join("specs").join(name)).unwrap();
        if is_large_spec(&text) {
            continue;
        }
        let out = Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
            .current_dir(&root)
            .arg("--json")
            .arg(format!("specs/{name}"))
            .output()
            .expect("failed to launch reliab-cli");
        assert!(
            out.status.success(),
            "specs/{name} failed to solve: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let actual = String::from_utf8(out.stdout).expect("utf-8 output");
        assert!(
            !actual.contains("\"error\""),
            "specs/{name} produced an error record:\n{actual}"
        );

        let golden_path = golden_dir.join(name);
        if update {
            std::fs::write(&golden_path, &actual).unwrap();
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => failures.push(format!(
                "specs/{name}: output differs from tests/golden/{name}\n\
                 --- expected ---\n{expected}\n--- actual ---\n{actual}"
            )),
            Err(_) => failures.push(format!(
                "specs/{name}: no golden snapshot at tests/golden/{name} \
                 (run with UPDATE_GOLDEN=1 to create it)"
            )),
        }
    }

    assert!(
        failures.is_empty(),
        "{} golden mismatch(es); regenerate with \
         `UPDATE_GOLDEN=1 cargo test -p reliab-engine --test golden_cli` \
         and review the diff\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

/// Pulls the SPN measures block out of a `--json` batch record.
fn spn_measures(text: &str, what: &str) -> JsonValue {
    let batch = json::parse(text).unwrap_or_else(|e| panic!("{what}: bad JSON: {e}"));
    let JsonValue::Array(records) = &batch else {
        panic!("{what}: expected a batch array");
    };
    records[0]
        .get("measures")
        .and_then(|m| m.get("spn"))
        .unwrap_or_else(|| panic!("{what}: no spn measures in {text}"))
        .clone()
}

/// Walks the `[[name, value], ...]` measure pairs of one family.
fn measure_pairs(measures: &JsonValue, family: &str) -> Vec<(String, f64)> {
    let Some(JsonValue::Array(pairs)) = measures.get(family) else {
        panic!("missing measure family '{family}'");
    };
    pairs
        .iter()
        .map(|p| {
            let JsonValue::Array(kv) = p else {
                panic!("measure pair is not an array");
            };
            (
                kv[0].as_str().expect("measure name").to_owned(),
                kv[1].as_f64().expect("measure value"),
            )
        })
        .collect()
}

/// The streaming tier (`--stream`) must reproduce every locked SPN
/// golden to 1e-8: same marking counts, same measures, different
/// solver route. Bytes are not compared — the tiers legitimately
/// differ in trailing digits — so this sweeps the numbers instead.
#[test]
fn stream_tier_matches_golden_spn_measures() {
    let root = repo_root();
    let mut checked = 0;
    for entry in std::fs::read_dir(root.join("specs")).expect("specs/ exists") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(root.join("specs").join(&name)).unwrap();
        if is_large_spec(&text) || !matches!(ModelSpec::from_json_str(&text), Ok(ModelSpec::Spn(_)))
        {
            continue;
        }
        let golden_path = root.join("tests/golden").join(&name);
        let Ok(golden_text) = std::fs::read_to_string(&golden_path) else {
            continue; // snapshot not created yet; the byte-lock test reports it
        };
        let out = Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
            .current_dir(&root)
            .arg("--json")
            .arg("--stream")
            .arg(format!("specs/{name}"))
            .output()
            .expect("failed to launch reliab-cli");
        assert!(
            out.status.success(),
            "specs/{name} --stream failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let actual = spn_measures(&String::from_utf8(out.stdout).unwrap(), &name);
        let golden = spn_measures(&golden_text, &name);
        assert_eq!(
            actual.get("num_markings").and_then(JsonValue::as_f64),
            golden.get("num_markings").and_then(JsonValue::as_f64),
            "{name}: marking count"
        );
        for family in ["expected_tokens", "throughput"] {
            let a = measure_pairs(&actual, family);
            let g = measure_pairs(&golden, family);
            assert_eq!(a.len(), g.len(), "{name}: {family} arity");
            for ((an, av), (gn, gv)) in a.iter().zip(&g) {
                assert_eq!(an, gn, "{name}: {family} order");
                assert!(
                    (av - gv).abs() <= 1e-8 * gv.abs().max(1.0),
                    "{name}: {family} '{an}': stream {av} vs golden {gv}"
                );
            }
        }
        checked += 1;
    }
    assert!(checked >= 1, "no streamable SPN specs swept");
}

/// Headline golden for the ≥10⁶-marking streaming exemplar
/// (`specs/tandem_large.json`). The full solve takes minutes, so this
/// only runs when `RUN_LARGE_GOLDEN=1` (release builds recommended);
/// regenerate with `UPDATE_GOLDEN=1 RUN_LARGE_GOLDEN=1`. The committed
/// snapshot holds headline measures only — marking count and the two
/// requested steady-state measures — compared at 1e-6 relative, not
/// byte-locked, so tolerance-level drift in a 10⁶-state iteration does
/// not churn the file.
#[test]
fn large_spec_headline_golden() {
    if std::env::var_os("RUN_LARGE_GOLDEN").is_none() {
        eprintln!("skipped: set RUN_LARGE_GOLDEN=1 to solve specs/tandem_large.json");
        return;
    }
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_reliab-cli"))
        .current_dir(&root)
        .arg("--json")
        .arg("specs/tandem_large.json")
        .output()
        .expect("failed to launch reliab-cli");
    assert!(
        out.status.success(),
        "tandem_large failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let measures = spn_measures(&String::from_utf8(out.stdout).unwrap(), "tandem_large");
    let golden_path = root.join("tests/golden/tandem_large.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{}\n", measures.to_json_pretty())).unwrap();
        return;
    }
    let golden = json::parse(&std::fs::read_to_string(&golden_path).expect("golden exists"))
        .expect("golden parses");
    assert_eq!(
        measures.get("num_markings").and_then(JsonValue::as_f64),
        golden.get("num_markings").and_then(JsonValue::as_f64),
        "marking count"
    );
    for family in ["expected_tokens", "throughput"] {
        for ((an, av), (gn, gv)) in measure_pairs(&measures, family)
            .iter()
            .zip(&measure_pairs(&golden, family))
        {
            assert_eq!(an, gn, "{family} order");
            assert!(
                (av - gv).abs() <= 1e-6 * gv.abs().max(1.0),
                "{family} '{an}': {av} vs golden {gv}"
            );
        }
    }
}

/// Every golden snapshot corresponds to a shipped spec — catches
/// stale snapshots left behind by a renamed or deleted spec.
#[test]
fn no_orphaned_golden_snapshots() {
    let root = repo_root();
    let golden_dir = root.join("tests/golden");
    let Ok(entries) = std::fs::read_dir(&golden_dir) else {
        return; // no snapshots yet
    };
    for entry in entries {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            root.join("specs").join(&name).exists(),
            "tests/golden/{name} has no matching specs/{name}; delete the stale snapshot"
        );
    }
}
