//! Fault injection for the `reliab-serve` daemon: slow-loris clients,
//! mid-solve disconnects, admission-queue overflow, oversized bodies,
//! and hot-reload racing in-flight solves. After every abuse the
//! daemon must still be serving with zero queued and zero in-flight
//! jobs — a leaked admission slot would eventually wedge the queue.
//!
//! A property test at the bottom checks the linearizability claim the
//! whole design rests on: any concurrent interleaving of K requests
//! returns exactly the responses sequential submission returns.

use proptest::prelude::*;
use reliab_engine::serve::{http_request, HttpResponse, ServeConfig, Server};
use reliab_spec::json::{self, JsonValue};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn boot(mutate: impl FnOnce(&mut ServeConfig)) -> Server {
    // No default deadline: debug-build solves time-sharing one CPU can
    // legitimately outlast the production default.
    let mut config = ServeConfig {
        default_deadline_ms: 0,
        ..ServeConfig::default()
    };
    mutate(&mut config);
    Server::bind(config).expect("ephemeral bind succeeds")
}

fn post(addr: &str, path: &str, body: &str) -> HttpResponse {
    http_request(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        body,
    )
    .expect("request reaches the daemon")
}

fn get(addr: &str, path: &str) -> HttpResponse {
    http_request(addr, "GET", path, &[], "").expect("request reaches the daemon")
}

fn error_kind(response: &HttpResponse) -> String {
    json::parse(&response.body)
        .expect("error body is JSON")
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(JsonValue::as_str)
        .expect("error body carries a kind")
        .to_owned()
}

fn health_field(addr: &str, field: &str) -> f64 {
    json::parse(&get(addr, "/healthz").body)
        .expect("healthz is JSON")
        .get(field)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("healthz lacks {field}"))
}

/// Polls `/healthz` until `field` reports `want` (daemon-side view of
/// queue/in-flight state), panicking after `secs`.
fn wait_for(addr: &str, field: &str, want: f64, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if (health_field(addr, field) - want).abs() < 0.5 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{field} never reached {want} (still {})",
            health_field(addr, field)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn assert_no_leaked_slots(server: &Server, addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (queued, in_flight) = server.queue_stats();
        if queued == 0 && in_flight == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked admission slots: {queued} queued, {in_flight} in flight"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // And the daemon is still serving.
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(post(addr, "/solve", QUICK_DOC).status, 200);
}

const QUICK_DOC: &str = r#"{"rbd": {
  "components": [{"name": "a", "availability": 0.99},
                 {"name": "b", "availability": 0.98}],
  "structure": {"parallel": ["a", "b"]}}}"#;

/// A deterministically *slow* document: Monte-Carlo uncertainty
/// propagation whose duration scales linearly in `samples`. The seed
/// is varied per use so the engine's memo cache cannot short-circuit
/// the work.
fn slow_doc(seed: u64, samples: usize) -> String {
    format!(
        r#"{{"uncertainty": {{
  "model": {{"ctmc": {{
    "states": ["up", "down"],
    "transitions": [{{"from": "up", "to": "down", "rate": 0.001}},
                    {{"from": "down", "to": "up", "rate": 0.1}}],
    "up_states": ["up"]}}}},
  "parameters": [{{"path": "ctmc.transitions.0.rate",
                   "prior": {{"gamma": {{"shape": 2.0, "rate": 2000.0}}}}}}],
  "samples": {samples}, "seed": {seed}, "jobs": 1}}}}"#
    )
}

/// Samples needed for a slow doc to run roughly 600 ms on this
/// machine, measured once (debug vs. release builds differ ~5x).
fn slow_samples() -> usize {
    static CALIBRATED: OnceLock<usize> = OnceLock::new();
    *CALIBRATED.get_or_init(|| {
        let probe = 4000;
        let t0 = Instant::now();
        reliab_spec::solve_str_with(&slow_doc(999, probe), &reliab_spec::SolveOptions::default())
            .expect("calibration doc solves");
        let per_sample = t0.elapsed().as_secs_f64() / probe as f64;
        ((0.6 / per_sample) as usize).clamp(10_000, 2_000_000)
    })
}

/// Overflow: with one worker and a queue of depth 2, a burst of slow
/// solves fills every slot; the next request is shed with 429
/// `overloaded` *at admission* (it never waits), and once the burst
/// drains the daemon accepts work again with nothing leaked.
#[test]
fn queue_overflow_sheds_429_then_recovers() {
    let server = boot(|c| {
        c.workers = 1;
        c.queue_depth = 2;
    });
    let addr = server.local_addr().to_string();
    // Several times the usual budget: every burst slot must still be
    // occupied once the last client thread gets scheduled, connects,
    // and is admitted — on a single-CPU box that can take a while.
    let samples = slow_samples() * 5;

    std::thread::scope(|scope| {
        let mut busy = Vec::new();
        // Stage the burst: let the first job reach the worker before
        // filling the queue, otherwise all three can land while the
        // worker is still unscheduled and the third is shed early.
        for seed in 0..3u64 {
            let addr = &addr;
            let doc = slow_doc(seed, samples + seed as usize);
            busy.push(scope.spawn(move || post(addr, "/solve", &doc)));
            if seed == 0 {
                wait_for(addr, "in_flight", 1.0, 30);
            }
        }
        // One job on the worker, two waiting: every slot occupied.
        wait_for(&addr, "queue_depth", 2.0, 30);

        let t0 = Instant::now();
        let shed = post(&addr, "/solve", &slow_doc(99, samples));
        assert_eq!(shed.status, 429);
        assert_eq!(error_kind(&shed), "overloaded");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shedding must not wait for capacity"
        );
        assert!(shed.header("retry-after").is_some());

        for handle in busy {
            let response = handle.join().expect("burst client thread");
            assert_eq!(response.status, 200, "queued work still completes");
        }
    });
    assert!(health_field(&addr, "shed") >= 1.0);
    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
}

/// Deadlines: a request stuck behind a slow solve is answered 504
/// `deadline_exceeded` when its budget elapses — whether it is still
/// queued or the solver blew past it — and nothing leaks.
#[test]
fn queued_request_deadline_expires_to_504() {
    let server = boot(|c| {
        c.workers = 1;
        c.queue_depth = 8;
    });
    let addr = server.local_addr().to_string();
    let samples = slow_samples();

    std::thread::scope(|scope| {
        let addr_ref = &addr;
        let doc = slow_doc(7, samples);
        let blocker = scope.spawn(move || post(addr_ref, "/solve", &doc));
        wait_for(&addr, "in_flight", 1.0, 30);

        let body = format!(
            "{{\"kind\":\"solve\",\"model\":{},\"deadline_ms\":50}}",
            QUICK_DOC
        );
        let expired = post(&addr, "/solve", &body);
        assert_eq!(expired.status, 504);
        assert_eq!(error_kind(&expired), "deadline_exceeded");

        assert_eq!(blocker.join().expect("blocker thread").status, 200);
    });
    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
}

/// Oversized bodies are refused 413 up front — before any queue slot
/// or solver time is spent on them.
#[test]
fn oversized_body_rejected_413() {
    let server = boot(|c| {
        c.workers = 1;
        c.max_body_bytes = 2048;
    });
    let addr = server.local_addr().to_string();

    let huge = format!(
        r#"{{"rbd": {{"components": [{{"name": "a", "availability": 0.99}}],
             "structure": "a", "padding": "{}"}}}}"#,
        "x".repeat(64 * 1024)
    );
    let refused = post(&addr, "/solve", &huge);
    assert_eq!(refused.status, 413);
    assert_eq!(error_kind(&refused), "too_large");

    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
}

/// Slow-loris: a client that dribbles headers (or never sends its
/// promised body) is cut off 408 once the read budget elapses, instead
/// of pinning a connection forever.
#[test]
fn slow_loris_client_cut_off_408() {
    let server = boot(|c| {
        c.workers = 1;
        c.read_timeout_ms = 300;
    });
    let addr = server.local_addr().to_string();

    // Headers promise a body that never arrives.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
        .expect("partial request sent");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("daemon answers before closing");
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408, got: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    assert!(response.contains("slow_client"));

    // A drip-fed header line times out the same way.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.write_all(b"POST /so").expect("drip sent");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("daemon answers");
    assert!(response.starts_with("HTTP/1.1 408"));

    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
}

/// Mid-solve disconnect: the client hangs up while its solve runs. The
/// worker's reply goes nowhere — and the daemon must shrug, releasing
/// the slot instead of leaking it.
#[test]
fn mid_solve_disconnect_leaks_nothing() {
    let server = boot(|c| c.workers = 1);
    let addr = server.local_addr().to_string();
    let doc = slow_doc(17, slow_samples());

    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let request = format!(
            "POST /solve HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{doc}",
            doc.len()
        );
        stream.write_all(request.as_bytes()).expect("request sent");
        stream.flush().expect("flushed");
        // Wait until the solve is actually running, then vanish.
        wait_for(&addr, "in_flight", 1.0, 30);
    } // drop = disconnect

    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
}

/// Hot reload racing in-flight solves: while clients hammer a library
/// spec, the file is rewritten and `/reload` fires concurrently. Every
/// response must be a well-formed 200 matching *one of* the two
/// versions — never an error, never a hybrid — and afterwards the
/// library serves the final version.
#[test]
fn hot_reload_races_in_flight_solves() {
    let dir = std::env::temp_dir().join(format!("reliab-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp spec dir");
    let doc_a = QUICK_DOC;
    let doc_b = r#"{"rbd": {
  "components": [{"name": "a", "availability": 0.97},
                 {"name": "b", "availability": 0.96},
                 {"name": "c", "availability": 0.95}],
  "structure": {"series": ["a", {"parallel": ["b", "c"]}]}}}"#;
    std::fs::write(dir.join("unit.json"), doc_a).expect("seed spec");

    let server = boot(|c| {
        c.workers = 2;
        c.queue_depth = 64;
        c.spec_dir = Some(dir.clone());
    });
    let addr = server.local_addr().to_string();

    let expect_a = {
        let r = post(&addr, "/solve", doc_a);
        assert_eq!(r.status, 200);
        json::parse(&r.body)
            .unwrap()
            .get("measures")
            .unwrap()
            .to_json()
    };
    let expect_b = {
        let r = post(&addr, "/solve", doc_b);
        assert_eq!(r.status, 200);
        json::parse(&r.body)
            .unwrap()
            .get("measures")
            .unwrap()
            .to_json()
    };

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for _ in 0..3 {
            let addr = &addr;
            let (expect_a, expect_b) = (&expect_a, &expect_b);
            clients.push(scope.spawn(move || {
                for _ in 0..30 {
                    let response = post(addr, "/solve", "{\"kind\":\"solve\",\"spec\":\"unit\"}");
                    assert_eq!(
                        response.status,
                        200,
                        "reload race broke a solve: {}",
                        response.body.trim_end()
                    );
                    let measures = json::parse(&response.body)
                        .unwrap()
                        .get("measures")
                        .unwrap()
                        .to_json();
                    assert!(
                        &measures == expect_a || &measures == expect_b,
                        "hybrid response during reload: {measures}"
                    );
                }
            }));
        }
        // Flip the library back and forth under the clients' feet.
        for flip in 0..20 {
            let doc = if flip % 2 == 0 { doc_b } else { doc_a };
            std::fs::write(dir.join("unit.json"), doc).expect("rewrite spec");
            let reloaded = post(&addr, "/reload", "");
            assert_eq!(reloaded.status, 200);
            std::thread::sleep(Duration::from_millis(5));
        }
        for c in clients {
            c.join().expect("client thread");
        }
    });

    // Last flip (flip=19, odd) restored doc_a; the library must agree.
    std::fs::write(dir.join("unit.json"), doc_a).expect("rewrite spec");
    assert_eq!(post(&addr, "/reload", "").status, 200);
    let final_solve = post(&addr, "/solve", "{\"kind\":\"solve\",\"spec\":\"unit\"}");
    assert_eq!(
        json::parse(&final_solve.body)
            .unwrap()
            .get("measures")
            .unwrap()
            .to_json(),
        expect_a
    );

    // A broken file is skipped by reload, not served.
    std::fs::write(dir.join("unit.json"), "{broken").expect("rewrite spec");
    assert_eq!(post(&addr, "/reload", "").status, 200);
    let gone = post(&addr, "/solve", "{\"kind\":\"solve\",\"spec\":\"unit\"}");
    assert_eq!(gone.status, 404);

    assert_no_leaked_slots(&server, &addr);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The documents the interleaving property draws from: two distinct
/// valid models plus two failure modes (schema error, model error).
const PROP_DOCS: [&str; 4] = [
    QUICK_DOC,
    r#"{"fault_tree": {
  "events": [{"name": "p", "probability": 0.01},
             {"name": "q", "probability": 0.02}],
  "top": {"and": ["p", "q"]}}}"#,
    r#"{"rbd": {"components": [{"name": "a", "availability": 1.5}],
               "structure": "a"}}"#,
    "definitely not a model",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Linearizability of the admission queue: for any pattern of
    /// document choices, submitting them all concurrently produces
    /// exactly the bodies sequential submission produces — statuses,
    /// measures, and error documents alike.
    #[test]
    fn any_interleaving_matches_sequential_submission(
        pattern in proptest::collection::vec(0usize..PROP_DOCS.len(), 2..10)
    ) {
        let server = boot(|c| {
            c.workers = 3;
            c.queue_depth = 64;
        });
        let addr = server.local_addr().to_string();

        // Sequential baseline: one request at a time, in pattern order.
        let expected: Vec<(u16, String)> = pattern
            .iter()
            .map(|&i| {
                let r = post(&addr, "/solve", PROP_DOCS[i]);
                (r.status, r.body)
            })
            .collect();

        // The same pattern, all at once.
        let concurrent: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = pattern
                .iter()
                .map(|&i| {
                    let addr = &addr;
                    scope.spawn(move || {
                        let r = post(addr, "/solve", PROP_DOCS[i]);
                        (r.status, r.body)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });

        for (slot, (seq, conc)) in expected.iter().zip(&concurrent).enumerate() {
            prop_assert_eq!(
                seq, conc,
                "slot {} (doc {}) diverged under concurrency", slot, pattern[slot]
            );
        }
        let (queued, in_flight) = server.queue_stats();
        prop_assert_eq!((queued, in_flight), (0, 0), "leaked admission slots");
        server.shutdown();
    }
}
