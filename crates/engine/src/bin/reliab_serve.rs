//! `reliab-serve` — the persistent solver daemon.
//!
//! Boots a [`reliab_engine::serve::Server`] and runs until a client
//! posts `/shutdown`, then drains gracefully (queued and in-flight
//! solves complete before exit). See the crate docs and the repository
//! README for the endpoint table.
//!
//! ```text
//! reliab-serve --addr 127.0.0.1:7171 --spec-dir specs --workers 4
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

use reliab_engine::serve::{ServeConfig, Server};
use std::path::PathBuf;

const USAGE: &str = "\
reliab-serve: persistent reliability-model solver daemon

USAGE:
    reliab-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT       Listen address (default 127.0.0.1:7171; port 0 = ephemeral)
    --workers N            Solver worker threads (default: one per CPU)
    --queue-depth N        Admission queue capacity; beyond it requests are shed 429 (default 64)
    --deadline-ms MS       Default per-request deadline; 0 disables (default 30000)
    --max-body BYTES       Largest accepted request body (default 1048576)
    --read-timeout-ms MS   Socket read budget before a slow client is dropped 408 (default 5000)
    --max-connections N    Concurrently open connections (default 256)
    --spec-dir DIR         Serve *.json in DIR as the named spec library (hot-reloadable)
    --artifact-dir DIR     Write per-request telemetry to DIR/record-<trace>.jsonl
    --cache-capacity N     Canonical-form memo cache entries (default 1024)
    -h, --help             Show this help

ENDPOINTS:
    POST /solve      solve one document: {\"kind\":\"solve\",\"model\":{...}} or a bare document
    POST /batch      solve a JSONL batch, one document per line
    GET  /specs      list the spec library        GET /specs/<name>  fetch one
    POST /reload     re-scan the spec library
    GET  /healthz    liveness and drain status
    GET  /metrics    Prometheus exposition (?format=json for JSON quantiles)
    POST /shutdown   drain and exit
";

fn usage(code: i32) -> ! {
    if code == 0 {
        print!("{USAGE}");
    } else {
        eprint!("{USAGE}");
    }
    std::process::exit(code);
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} requires a value");
        usage(2);
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value '{value}' for {flag}");
            usage(2);
        }
    }
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7171".to_owned(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_value::<String>("--addr", args.next()),
            "--workers" => config.workers = parse_value("--workers", args.next()),
            "--queue-depth" => {
                config.queue_depth = parse_value("--queue-depth", args.next());
                if config.queue_depth == 0 {
                    eprintln!("error: --queue-depth must be at least 1");
                    usage(2);
                }
            }
            "--deadline-ms" => {
                config.default_deadline_ms = parse_value("--deadline-ms", args.next())
            }
            "--max-body" => config.max_body_bytes = parse_value("--max-body", args.next()),
            "--read-timeout-ms" => {
                config.read_timeout_ms = parse_value("--read-timeout-ms", args.next());
            }
            "--max-connections" => {
                config.max_connections = parse_value("--max-connections", args.next());
            }
            "--spec-dir" => {
                config.spec_dir = Some(parse_value::<PathBuf>("--spec-dir", args.next()));
            }
            "--artifact-dir" => {
                config.artifact_dir = Some(parse_value::<PathBuf>("--artifact-dir", args.next()));
            }
            "--cache-capacity" => {
                config.cache_capacity = parse_value("--cache-capacity", args.next());
            }
            "-h" | "--help" => usage(0),
            other => {
                eprintln!("error: unknown flag '{other}'");
                usage(2);
            }
        }
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on http://{}", server.local_addr());
    server.wait();
    eprintln!("draining...");
    server.shutdown();
}
