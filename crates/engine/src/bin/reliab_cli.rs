//! `reliab-cli` — solve declarative model specifications from the
//! command line, in parallel.
//!
//! ```text
//! reliab-cli model.json [more.json ...]       # solve files, print results
//! reliab-cli --jobs 4 'specs/*.json'          # parallel batch over a glob
//! reliab-cli --stats model.json               # include solver telemetry
//! reliab-cli --json specs/*.json              # one machine-readable document
//! cat model.json | reliab-cli -               # read a spec from stdin
//! ```
//!
//! Options:
//!
//! * `--jobs N` — worker threads for the batch (0 = one per CPU;
//!   default 0). Results are bitwise identical at any setting.
//! * `--json` — emit a single JSON array covering every input (errors
//!   included per entry) instead of pretty text per file.
//! * `--stats` — include solver telemetry (wall time, iterations,
//!   residuals, BDD table sizes) with each result.
//! * `--method auto|gth|sor|power` — CTMC steady-state method.
//!
//! Exit status: 0 on success, 1 if any file fails to parse or solve,
//! 2 on usage errors.

use reliab_engine::BatchEngine;
use reliab_spec::json::JsonValue;
use reliab_spec::{SolveOptions, SteadySolver};
use std::io::{Read, Write};

/// Writes a line to stdout, exiting quietly when the consumer (e.g.
/// `head`) has closed the pipe.
fn emit(line: &str) {
    let mut out = std::io::stdout();
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: reliab-cli [--jobs N] [--json] [--stats] [--method M] <spec.json|glob|-> ..."
    );
    eprintln!("solves reliab model specifications (rbd / fault_tree / ctmc / rel_graph)");
    eprintln!("  --jobs N    worker threads (0 = one per CPU; default 0)");
    eprintln!("  --json      one machine-readable JSON array for the whole batch");
    eprintln!("  --stats     include solver telemetry with each result");
    eprintln!("  --method M  CTMC steady-state method: auto|gth|sor|power");
    std::process::exit(code);
}

struct Cli {
    jobs: usize,
    json: bool,
    stats: bool,
    method: SteadySolver,
    inputs: Vec<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        jobs: 0,
        json: false,
        stats: false,
        method: SteadySolver::Auto,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(0),
            "--json" => cli.json = true,
            "--stats" => cli.stats = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.jobs = n,
                None => {
                    eprintln!("--jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--method" => {
                cli.method = match it.next().map(String::as_str) {
                    Some("auto") => SteadySolver::Auto,
                    Some("gth") => SteadySolver::Gth,
                    Some("sor") => SteadySolver::Sor,
                    Some("power") => SteadySolver::Power,
                    other => {
                        eprintln!(
                            "--method must be auto|gth|sor|power, got {:?}",
                            other.unwrap_or("<missing>")
                        );
                        usage(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                usage(2);
            }
            other => cli.inputs.push(other.to_owned()),
        }
    }
    if cli.inputs.is_empty() {
        usage(2);
    }
    cli
}

/// Expands `*`/`?` wildcards in the final path component against the
/// directory listing, for shells that pass patterns through verbatim.
/// Non-patterns and patterns with no matches pass through unchanged
/// (the latter surface as file-not-found errors downstream).
fn expand_glob(pattern: &str) -> Vec<String> {
    if !pattern.contains('*') && !pattern.contains('?') {
        return vec![pattern.to_owned()];
    }
    let (dir, name_pat) = match pattern.rsplit_once('/') {
        Some((d, f)) => (d.to_owned(), f),
        None => (".".to_owned(), pattern),
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return vec![pattern.to_owned()];
    };
    let mut matches: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| wildcard_match(name_pat.as_bytes(), name.as_bytes()))
        .map(|name| {
            if dir == "." && !pattern.starts_with("./") {
                name
            } else {
                format!("{dir}/{name}")
            }
        })
        .collect();
    if matches.is_empty() {
        return vec![pattern.to_owned()];
    }
    matches.sort();
    matches
}

fn wildcard_match(pat: &[u8], text: &[u8]) -> bool {
    match (pat.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            wildcard_match(&pat[1..], text) || (!text.is_empty() && wildcard_match(pat, &text[1..]))
        }
        (Some(b'?'), Some(_)) => wildcard_match(&pat[1..], &text[1..]),
        (Some(&p), Some(&t)) if p == t => wildcard_match(&pat[1..], &text[1..]),
        _ => false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    let files: Vec<String> = cli.inputs.iter().flat_map(|i| expand_glob(i)).collect();
    // One slot per input, in input order: the text read from it, or
    // the read error that replaces its result downstream.
    let mut labels = Vec::with_capacity(files.len());
    let mut sources: Vec<std::result::Result<String, String>> = Vec::with_capacity(files.len());
    for f in &files {
        if f == "-" {
            let mut buf = String::new();
            labels.push("<stdin>".to_owned());
            sources.push(match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => Ok(buf),
                Err(e) => Err(e.to_string()),
            });
        } else {
            labels.push(f.clone());
            sources.push(std::fs::read_to_string(f).map_err(|e| e.to_string()));
        }
    }

    let engine = BatchEngine::new()
        .with_jobs(cli.jobs)
        .with_options(SolveOptions::default().with_steady_solver(cli.method));
    let texts: Vec<&String> = sources.iter().filter_map(|s| s.as_ref().ok()).collect();
    let mut reports = engine.solve_texts(&texts).into_iter();

    // Per input slot: a read error, or the next report (solve_texts
    // preserves the order of the readable inputs).
    let slots: Vec<(
        &String,
        std::result::Result<reliab_spec::SolveReport, String>,
    )> = labels
        .iter()
        .zip(&sources)
        .map(|(label, source)| {
            let outcome = match source {
                Err(read_err) => Err(read_err.clone()),
                Ok(_) => match reports.next().expect("one report per readable input") {
                    Ok(r) => Ok(r),
                    Err(e) => Err(e.to_string()),
                },
            };
            (label, outcome)
        })
        .collect();

    let mut failed = false;
    if cli.json {
        let mut entries: Vec<JsonValue> = Vec::new();
        for (label, outcome) in &slots {
            entries.push(match outcome {
                Ok(r) => {
                    let mut fields = vec![
                        ("file", JsonValue::from(label.as_str())),
                        ("measures", r.measures.to_json()),
                    ];
                    if cli.stats {
                        fields.push(("stats", r.stats.to_json()));
                    }
                    reliab_spec::json::object(fields)
                }
                Err(e) => {
                    failed = true;
                    reliab_spec::json::object(vec![
                        ("file", label.as_str().into()),
                        ("error", e.as_str().into()),
                    ])
                }
            });
        }
        emit(&JsonValue::Array(entries).to_json_pretty());
    } else {
        let many = slots.len() > 1;
        for (label, outcome) in &slots {
            match outcome {
                Ok(r) => {
                    if many {
                        emit(&format!("// {label}"));
                    }
                    emit(&r.measures.to_json().to_json_pretty());
                    if cli.stats {
                        emit(&format!("// stats: {}", r.stats.to_json().to_json()));
                    }
                }
                Err(e) => {
                    eprintln!("{label}: {e}");
                    failed = true;
                }
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
