//! `reliab-cli` — solve declarative model specifications from the
//! command line, in parallel.
//!
//! ```text
//! reliab-cli model.json [more.json ...]       # solve files, print results
//! reliab-cli --jobs 4 'specs/*.json'          # parallel batch over a glob
//! reliab-cli --stats model.json               # include solver telemetry
//! reliab-cli --json specs/*.json              # one machine-readable document
//! cat model.json | reliab-cli -               # read a spec from stdin
//! ```
//!
//! Options:
//!
//! * `--jobs N` — worker threads for the batch (0 = one per CPU;
//!   default 0). Results are bitwise identical at any setting.
//! * `--json` — emit a single JSON array covering every input (errors
//!   included per entry) instead of pretty text per file.
//! * `--stats` — include solver telemetry (wall time, iterations,
//!   residuals, BDD table sizes) with each result.
//! * `--method auto|gth|sor|power|sim` — CTMC steady-state method, or
//!   `sim` to force discrete-event simulation for component models
//!   carrying a `sim` block.
//! * `--sim-reps N` — replication cap for simulation (overrides the
//!   spec's `max_replications`).
//! * `--sim-precision X` — relative CI half-width stopping target
//!   (overrides the spec's `rel_precision`; 0 disables adaptive
//!   stopping).
//! * `--sim-seed N` — master seed for simulation (overrides the spec's
//!   `seed`). Results are a pure function of the seed and the model.
//! * `--sim-jobs N` — worker threads for simulation replications (0 =
//!   one per CPU; default 1). Estimates are bitwise identical at any
//!   setting.
//! * `--var-order auto|input|dfs|weighted|sift` — BDD variable
//!   ordering for fault-tree models. `auto` (default) honors the
//!   spec's `var_order` field, falling back to the depth-first
//!   heuristic; `input` reproduces the historical declaration order.
//! * `--ite-cache N` — ITE computed-cache capacity bound, in entries
//!   (0 = kernel default).
//! * `--gc-threshold N` — live BDD nodes before garbage collection
//!   (0 = kernel default).
//! * `--reach-jobs N` — worker threads for SPN state-space generation
//!   (0 = one per CPU; default 1). The generated chain — and therefore
//!   every measure — is bitwise identical at any setting.
//! * `--hier-jobs N` — worker threads for hierarchy fixed-point sweeps
//!   (0 = one per CPU; default 1, or the spec's `jobs`). Results are
//!   bitwise identical at any setting.
//! * `--bdd-jobs N` — worker threads for the BDD kernel's partitioned
//!   parallel apply (fault-tree / RBD / bounds models; 0 = one per
//!   CPU; default 1). The compiled BDD is canonical, so every measure
//!   is bitwise identical at any setting.
//! * `--stream` — force the streaming large-model tier for SPN models:
//!   generator rows are regenerated from the marking arena on demand
//!   instead of being materialized in CSR. Measures match the
//!   materialized path to solver accuracy.
//! * `--mem-budget BYTES` — total byte budget for the streaming tier
//!   (`K`/`M`/`G` suffixes accepted). Also auto-escalates SPN solves to
//!   the streaming tier when the spec's declared marking cap projects
//!   past the budget, and to aggregation bounds when even the streaming
//!   iteration vectors cannot fit.
//! * `--uncert-samples N` — Monte-Carlo samples for uncertainty models
//!   (overrides the spec's `samples`).
//! * `--fixed-point-tol X` — hierarchy fixed-point tolerance (overrides
//!   the spec's `tolerance`).
//! * `--truncation-order N` — cut-set truncation order for bounds
//!   models (overrides the spec's `truncation_order`).
//! * `--trace FILE` — stream the structured trace (spans + events) to
//!   `FILE` as JSON Lines.
//! * `--profile FILE` — write an aggregated phase profile of the solve
//!   as Chrome-trace JSON (loadable in `chrome://tracing` / Perfetto).
//! * `--record FILE` — write per-iteration convergence telemetry
//!   (solver residuals, CI trajectories, frontier growth, ...) as JSON
//!   Lines, bounded per series by the flight recorder's ring capacity.
//! * `--metrics FILE` — dump the metrics registry to `FILE` on exit
//!   (`-` = stderr).
//! * `--metrics-format prometheus|json` — exposition format for
//!   `--metrics` (default `prometheus`).
//! * `--progress` — print per-spec completion to stderr as the batch
//!   runs.
//! * `--connect HOST:PORT` — submit each input to a running
//!   `reliab-serve` daemon instead of solving in-process. Output and
//!   exit codes match local solving; solver tuning flags are ignored
//!   (the daemon's configuration governs).
//!
//! Artifact paths (`--trace` / `--profile` / `--record` / `--metrics`)
//! may contain the literal `{trace}` placeholder, replaced by this
//! invocation's trace id — concurrent invocations sharing a template
//! then never clobber each other's files.
//!
//! Exit status: 0 on success, 2 on usage errors, and otherwise the
//! most severe per-input failure as classified by
//! [`reliab_spec::wire::WireError::exit_code`] (in practice 1).

use reliab_engine::serve::{http_request, keyed_artifact_path};
use reliab_engine::BatchEngine;
use reliab_obs as obs;
use reliab_spec::json::JsonValue;
use reliab_spec::wire::{ErrorKind, SolveResponse, WireError};
use reliab_spec::{json, SolveOptions, SolveReport, SteadySolver, VarOrder};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Stdout writer that goes quiet — without losing the computed exit
/// status — once the consumer (e.g. `head`) closes the pipe.
#[derive(Default)]
struct Emitter {
    closed: bool,
}

impl Emitter {
    fn emit(&mut self, line: &str) {
        if self.closed {
            return;
        }
        if writeln!(std::io::stdout(), "{line}").is_err() {
            self.closed = true;
        }
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: reliab-cli [--jobs N] [--json] [--stats] [--method M] \
         [--var-order O] [--ite-cache N] [--gc-threshold N] [--reach-jobs N] \
         [--sim-reps N] [--sim-precision X] [--sim-seed N] [--sim-jobs N] \
         [--hier-jobs N] [--bdd-jobs N] [--stream] [--mem-budget BYTES] \
         [--uncert-samples N] [--fixed-point-tol X] \
         [--truncation-order N] [--trace FILE] [--profile FILE] \
         [--record FILE] [--metrics FILE] \
         [--metrics-format F] [--progress] [--connect HOST:PORT] \
         <spec.json|glob|-> ..."
    );
    eprintln!("solves reliab model specifications (rbd / fault_tree / ctmc / rel_graph / spn /");
    eprintln!("  hierarchy / semi_markov / uncertainty / bounds)");
    eprintln!("  --jobs N            worker threads (0 = one per CPU; default 0)");
    eprintln!("  --json              one machine-readable JSON array for the whole batch");
    eprintln!("  --stats             include solver telemetry with each result");
    eprintln!("  --method M          steady-state method auto|gth|sor|power, or sim to");
    eprintln!("                      force discrete-event simulation (component models)");
    eprintln!("  --sim-reps N        simulation replication cap (overrides the spec)");
    eprintln!("  --sim-precision X   relative CI half-width target (0 = fixed budget)");
    eprintln!("  --sim-seed N        simulation master seed (overrides the spec)");
    eprintln!("  --sim-jobs N        simulation workers (0 = one per CPU; default 1)");
    eprintln!("  --var-order O       BDD variable ordering: auto|input|dfs|weighted|sift");
    eprintln!("  --ite-cache N       ITE cache capacity in entries (0 = kernel default)");
    eprintln!("  --gc-threshold N    live BDD nodes before GC (0 = kernel default)");
    eprintln!("  --reach-jobs N      SPN state-space workers (0 = one per CPU; default 1)");
    eprintln!("  --hier-jobs N       hierarchy sweep workers (0 = one per CPU; default 1)");
    eprintln!("  --bdd-jobs N        BDD apply workers (0 = one per CPU; default 1)");
    eprintln!("  --stream            stream SPN generator rows from the marking arena");
    eprintln!("                      instead of materializing the CTMC");
    eprintln!("  --mem-budget BYTES  streaming-tier byte budget (K/M/G suffixes; also");
    eprintln!("                      auto-escalates oversized SPN solves to streaming)");
    eprintln!("  --uncert-samples N  uncertainty Monte-Carlo samples (overrides the spec)");
    eprintln!("  --fixed-point-tol X hierarchy fixed-point tolerance (overrides the spec)");
    eprintln!("  --truncation-order N bounds cut-set truncation order (overrides the spec)");
    eprintln!("  --trace FILE        write a JSONL trace of spans/events to FILE");
    eprintln!("  --profile FILE      write a Chrome-trace phase profile to FILE");
    eprintln!("  --record FILE       write per-iteration convergence telemetry (JSONL)");
    eprintln!("  --metrics FILE      dump solver metrics to FILE on exit (- = stderr)");
    eprintln!("  --metrics-format F  metrics exposition: prometheus (default) or json");
    eprintln!("  --progress          report per-spec completion on stderr");
    eprintln!("  --connect HOST:PORT submit inputs to a running reliab-serve daemon");
    eprintln!("  artifact FILE paths may embed {{trace}}, replaced by this run's trace id");
    std::process::exit(code);
}

/// Parses a byte count with an optional `K`/`M`/`G` (or `KiB`-style)
/// suffix: `"268435456"`, `"256M"` and `"256MiB"` all mean the same
/// thing. Binary multiples, matching how the budget is spent.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, multiplier) = match s
        .char_indices()
        .find(|&(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| i)
    {
        None => (s, 1usize),
        Some(split) => {
            let m = match s[split..].trim().to_ascii_uppercase().as_str() {
                "K" | "KB" | "KIB" => 1usize << 10,
                "M" | "MB" | "MIB" => 1 << 20,
                "G" | "GB" | "GIB" => 1 << 30,
                _ => return None,
            };
            (&s[..split], m)
        }
    };
    if digits.is_empty() {
        return None;
    }
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
}

struct Cli {
    jobs: usize,
    json: bool,
    stats: bool,
    method: SteadySolver,
    simulate: bool,
    sim_reps: Option<usize>,
    sim_precision: Option<f64>,
    sim_seed: Option<u64>,
    sim_jobs: usize,
    var_order: VarOrder,
    ite_cache: usize,
    gc_threshold: usize,
    reach_jobs: usize,
    hier_jobs: usize,
    bdd_jobs: usize,
    stream: bool,
    mem_budget: Option<usize>,
    uncert_samples: Option<usize>,
    fixed_point_tol: Option<f64>,
    truncation_order: Option<usize>,
    trace: Option<String>,
    profile: Option<String>,
    record: Option<String>,
    metrics: Option<String>,
    metrics_format: obs::ExpositionFormat,
    progress: bool,
    connect: Option<String>,
    inputs: Vec<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        jobs: 0,
        json: false,
        stats: false,
        method: SteadySolver::Auto,
        simulate: false,
        sim_reps: None,
        sim_precision: None,
        sim_seed: None,
        sim_jobs: 1,
        var_order: VarOrder::Auto,
        ite_cache: 0,
        gc_threshold: 0,
        reach_jobs: 1,
        hier_jobs: 1,
        bdd_jobs: 1,
        stream: false,
        mem_budget: None,
        uncert_samples: None,
        fixed_point_tol: None,
        truncation_order: None,
        trace: None,
        profile: None,
        record: None,
        metrics: None,
        metrics_format: obs::ExpositionFormat::Prometheus,
        progress: false,
        connect: None,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => usage(0),
            "--json" => cli.json = true,
            "--stats" => cli.stats = true,
            "--progress" => cli.progress = true,
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.jobs = n,
                None => {
                    eprintln!("--jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--method" => {
                cli.method = match it.next().map(String::as_str) {
                    Some("auto") => SteadySolver::Auto,
                    Some("gth") => SteadySolver::Gth,
                    Some("sor") => SteadySolver::Sor,
                    Some("power") => SteadySolver::Power,
                    Some("sim") => {
                        cli.simulate = true;
                        SteadySolver::Auto
                    }
                    other => {
                        eprintln!(
                            "--method must be auto|gth|sor|power|sim, got {:?}",
                            other.unwrap_or("<missing>")
                        );
                        usage(2);
                    }
                }
            }
            "--sim-reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.sim_reps = Some(n),
                None => {
                    eprintln!("--sim-reps requires a non-negative integer");
                    usage(2);
                }
            },
            "--sim-precision" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x >= 0.0 => cli.sim_precision = Some(x),
                _ => {
                    eprintln!("--sim-precision requires a non-negative number");
                    usage(2);
                }
            },
            "--sim-seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.sim_seed = Some(n),
                None => {
                    eprintln!("--sim-seed requires a non-negative integer");
                    usage(2);
                }
            },
            "--sim-jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.sim_jobs = n,
                None => {
                    eprintln!("--sim-jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--var-order" => {
                cli.var_order = match it.next().and_then(|v| VarOrder::parse(v)) {
                    Some(order) => order,
                    None => {
                        eprintln!("--var-order must be auto|input|dfs|weighted|sift");
                        usage(2);
                    }
                }
            }
            "--ite-cache" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.ite_cache = n,
                None => {
                    eprintln!("--ite-cache requires a non-negative integer");
                    usage(2);
                }
            },
            "--gc-threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.gc_threshold = n,
                None => {
                    eprintln!("--gc-threshold requires a non-negative integer");
                    usage(2);
                }
            },
            "--reach-jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.reach_jobs = n,
                None => {
                    eprintln!("--reach-jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--hier-jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.hier_jobs = n,
                None => {
                    eprintln!("--hier-jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--bdd-jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.bdd_jobs = n,
                None => {
                    eprintln!("--bdd-jobs requires a non-negative integer");
                    usage(2);
                }
            },
            "--stream" => cli.stream = true,
            "--mem-budget" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => cli.mem_budget = Some(n),
                None => {
                    eprintln!("--mem-budget requires a byte count (K/M/G suffixes accepted)");
                    usage(2);
                }
            },
            "--uncert-samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cli.uncert_samples = Some(n),
                None => {
                    eprintln!("--uncert-samples requires a positive integer");
                    usage(2);
                }
            },
            "--fixed-point-tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 => cli.fixed_point_tol = Some(x),
                _ => {
                    eprintln!("--fixed-point-tol requires a positive number");
                    usage(2);
                }
            },
            "--truncation-order" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => cli.truncation_order = Some(n),
                _ => {
                    eprintln!("--truncation-order requires a positive integer");
                    usage(2);
                }
            },
            "--trace" => match it.next() {
                Some(path) => cli.trace = Some(path.clone()),
                None => {
                    eprintln!("--trace requires a file path");
                    usage(2);
                }
            },
            "--profile" => match it.next() {
                Some(path) => cli.profile = Some(path.clone()),
                None => {
                    eprintln!("--profile requires a file path");
                    usage(2);
                }
            },
            "--record" => match it.next() {
                Some(path) => cli.record = Some(path.clone()),
                None => {
                    eprintln!("--record requires a file path");
                    usage(2);
                }
            },
            "--metrics" => match it.next() {
                Some(path) => cli.metrics = Some(path.clone()),
                None => {
                    eprintln!("--metrics requires a file path (or - for stderr)");
                    usage(2);
                }
            },
            "--metrics-format" => {
                cli.metrics_format = match it.next().and_then(|v| obs::ExpositionFormat::parse(v)) {
                    Some(format) => format,
                    None => {
                        eprintln!("--metrics-format must be prometheus|json");
                        usage(2);
                    }
                }
            }
            "--connect" => match it.next() {
                Some(addr) => cli.connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect requires a HOST:PORT address");
                    usage(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                usage(2);
            }
            other => cli.inputs.push(other.to_owned()),
        }
    }
    if cli.inputs.is_empty() {
        usage(2);
    }
    cli
}

/// Reports per-spec completion (`[done/total] label`) on stderr by
/// listening for the engine's `engine.lifecycle` trace events. Index
/// fields refer to the batch of *readable* inputs, so labels here must
/// come pre-filtered to those slots.
struct ProgressSubscriber {
    labels: Vec<String>,
    done: AtomicUsize,
}

impl ProgressSubscriber {
    fn new(labels: Vec<String>) -> Self {
        ProgressSubscriber {
            labels,
            done: AtomicUsize::new(0),
        }
    }
}

impl obs::Subscriber for ProgressSubscriber {
    fn on_span_start(&self, _span: &obs::SpanInfo) {}
    fn on_span_end(&self, _span: &obs::SpanInfo, _duration: std::time::Duration) {}

    fn on_event(&self, event: &obs::EventInfo<'_>) {
        if event.name != "engine.lifecycle" {
            return;
        }
        let mut index = None;
        let mut stage = None;
        let mut outcome = "";
        for (key, value) in event.fields {
            match (*key, value) {
                ("index", obs::Value::U64(i)) => index = Some(*i as usize),
                ("stage", obs::Value::Str(s)) => stage = Some(*s),
                ("outcome", obs::Value::Str(s)) => outcome = s,
                _ => {}
            }
        }
        if stage != Some("done") {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let label = index
            .and_then(|i| self.labels.get(i))
            .map_or("?", String::as_str);
        eprintln!("[{done}/{}] {label} ({outcome})", self.labels.len());
    }
}

/// Expands `*`/`?` wildcards in the final path component against the
/// directory listing, for shells that pass patterns through verbatim.
/// Non-patterns and patterns with no matches pass through unchanged
/// (the latter surface as file-not-found errors downstream).
fn expand_glob(pattern: &str) -> Vec<String> {
    if !pattern.contains('*') && !pattern.contains('?') {
        return vec![pattern.to_owned()];
    }
    let (dir, name_pat) = match pattern.rsplit_once('/') {
        Some((d, f)) => (d.to_owned(), f),
        None => (".".to_owned(), pattern),
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return vec![pattern.to_owned()];
    };
    let mut matches: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| wildcard_match(name_pat.as_bytes(), name.as_bytes()))
        .map(|name| {
            if dir == "." && !pattern.starts_with("./") {
                name
            } else {
                format!("{dir}/{name}")
            }
        })
        .collect();
    if matches.is_empty() {
        return vec![pattern.to_owned()];
    }
    matches.sort();
    matches
}

fn wildcard_match(pat: &[u8], text: &[u8]) -> bool {
    match (pat.first(), text.first()) {
        (None, None) => true,
        (Some(b'*'), _) => {
            wildcard_match(&pat[1..], text) || (!text.is_empty() && wildcard_match(pat, &text[1..]))
        }
        (Some(b'?'), Some(_)) => wildcard_match(&pat[1..], &text[1..]),
        (Some(&p), Some(&t)) if p == t => wildcard_match(&pat[1..], &text[1..]),
        _ => false,
    }
}

/// The per-input outcome: a locally solved report, a daemon response,
/// or the structured error shared by both front ends.
enum Outcome {
    Local(Box<SolveReport>),
    Remote {
        measures: JsonValue,
        stats: Option<JsonValue>,
    },
    Failed(WireError),
}

/// Submits one input to a `reliab-serve` daemon. Documents that parse
/// locally travel in a `{"kind":"solve"}` envelope (so the stats flag
/// rides along); unparsable text is sent verbatim so the *daemon*
/// produces the error — keeping error kind and message identical to a
/// local solve.
fn solve_remote(addr: &str, label: &str, text: &str, stats: bool) -> Outcome {
    let body = match json::parse(text) {
        Ok(doc) => json::object(vec![
            ("kind", JsonValue::from("solve")),
            ("model", doc),
            ("stats", JsonValue::from(stats)),
        ])
        .to_json(),
        Err(_) => text.to_owned(),
    };
    let response = match http_request(
        addr,
        "POST",
        "/solve",
        &[("Content-Type", "application/json")],
        &body,
    ) {
        Ok(r) => r,
        Err(e) => {
            return Outcome::Failed(WireError::new(
                ErrorKind::Io,
                format!("cannot reach daemon at {addr}: {e}"),
            ))
        }
    };
    match SolveResponse::parse(&response.body) {
        Ok(SolveResponse::Result {
            measures, stats, ..
        }) => Outcome::Remote { measures, stats },
        // A daemon error names the request field it is about, if any;
        // fill in the input label otherwise, as a local solve would.
        Ok(SolveResponse::Error(err)) | Err(err) => Outcome::Failed(if err.path.is_none() {
            err.with_path(label)
        } else {
            err
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    // One trace id spans the whole invocation: the engine propagates it
    // to workers, and `{trace}` templates in artifact paths key on it.
    let trace_id = obs::mint_trace_id();
    let _trace_guard = obs::set_trace_id(trace_id);
    let keyed = |path: &String| keyed_artifact_path(path, trace_id);

    let files: Vec<String> = cli.inputs.iter().flat_map(|i| expand_glob(i)).collect();
    // One slot per input, in input order: the text read from it, or
    // the read error that replaces its result downstream.
    let mut labels = Vec::with_capacity(files.len());
    let mut sources: Vec<std::result::Result<String, String>> = Vec::with_capacity(files.len());
    for f in &files {
        if f == "-" {
            let mut buf = String::new();
            labels.push("<stdin>".to_owned());
            sources.push(match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => Ok(buf),
                Err(e) => Err(e.to_string()),
            });
        } else {
            labels.push(f.clone());
            sources.push(std::fs::read_to_string(f).map_err(|e| e.to_string()));
        }
    }

    if let Some(path) = &cli.trace {
        let path = keyed(path);
        match obs::JsonlSubscriber::create(&path) {
            Ok(sub) => obs::install_subscriber(Arc::new(sub)),
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let profiler = cli.profile.as_ref().map(|_| {
        let p = Arc::new(obs::ProfileSubscriber::new());
        obs::install_subscriber(p.clone());
        p
    });
    let recorder = cli.record.as_ref().map(|_| {
        let r = Arc::new(obs::FlightRecorder::new());
        obs::install_subscriber(r.clone());
        r
    });
    if cli.progress {
        // Lifecycle indices refer to the readable-input batch.
        let readable_labels: Vec<String> = labels
            .iter()
            .zip(&sources)
            .filter(|(_, s)| s.is_ok())
            .map(|(l, _)| l.clone())
            .collect();
        obs::install_subscriber(Arc::new(ProgressSubscriber::new(readable_labels)));
    }
    if cli.metrics.is_some() {
        obs::set_metrics_enabled(true);
    }

    let mut solve_opts = SolveOptions::default()
        .with_steady_solver(cli.method)
        .with_var_order(cli.var_order)
        .with_ite_cache_capacity(cli.ite_cache)
        .with_gc_node_threshold(cli.gc_threshold)
        .with_reach_jobs(cli.reach_jobs)
        .with_simulate(cli.simulate)
        .with_sim_jobs(cli.sim_jobs)
        .with_hier_jobs(cli.hier_jobs)
        .with_bdd_jobs(cli.bdd_jobs)
        .with_stream(cli.stream);
    if let Some(b) = cli.mem_budget {
        solve_opts = solve_opts.with_mem_budget(b);
    }
    if let Some(n) = cli.sim_reps {
        solve_opts = solve_opts.with_sim_replications(n);
    }
    if let Some(x) = cli.sim_precision {
        solve_opts = solve_opts.with_sim_rel_precision(x);
    }
    if let Some(s) = cli.sim_seed {
        solve_opts = solve_opts.with_sim_seed(s);
    }
    if let Some(n) = cli.uncert_samples {
        solve_opts = solve_opts.with_uncert_samples(n);
    }
    if let Some(x) = cli.fixed_point_tol {
        solve_opts = solve_opts.with_fixed_point_tol(x);
    }
    if let Some(n) = cli.truncation_order {
        solve_opts = solve_opts.with_truncation_order(n);
    }
    // Per input slot, in input order: the solved outcome, the daemon's
    // response, or the structured error that replaces it.
    let slots: Vec<(&String, Outcome)> = if let Some(addr) = &cli.connect {
        labels
            .iter()
            .zip(&sources)
            .map(|(label, source)| {
                let outcome = match source {
                    Err(read_err) => Outcome::Failed(
                        WireError::new(ErrorKind::Io, read_err.clone()).with_path(label.clone()),
                    ),
                    Ok(text) => solve_remote(addr, label, text, cli.stats),
                };
                (label, outcome)
            })
            .collect()
    } else {
        let engine = BatchEngine::new()
            .with_jobs(cli.jobs)
            .with_options(solve_opts);
        let texts: Vec<&String> = sources.iter().filter_map(|s| s.as_ref().ok()).collect();
        let mut reports = engine.solve_texts(&texts).into_iter();
        // solve_texts preserves the order of the readable inputs.
        labels
            .iter()
            .zip(&sources)
            .map(|(label, source)| {
                let outcome = match source {
                    Err(read_err) => Outcome::Failed(
                        WireError::new(ErrorKind::Io, read_err.clone()).with_path(label.clone()),
                    ),
                    Ok(_) => match reports.next().expect("one report per readable input") {
                        Ok(r) => Outcome::Local(Box::new(r)),
                        Err(e) => {
                            Outcome::Failed(WireError::from_error(&e).with_path(label.clone()))
                        }
                    },
                };
                (label, outcome)
            })
            .collect()
    };

    // The exit status depends only on the outcomes — graded by the
    // shared wire-error severity table, never on whether stdout stayed
    // open long enough to print them.
    let exit_code = slots
        .iter()
        .filter_map(|(_, outcome)| match outcome {
            Outcome::Failed(err) => Some(err.exit_code()),
            _ => None,
        })
        .max()
        .unwrap_or(0);

    let mut out = Emitter::default();
    if cli.json {
        let mut entries: Vec<JsonValue> = Vec::new();
        for (label, outcome) in &slots {
            entries.push(match outcome {
                Outcome::Local(r) => {
                    let mut fields = vec![
                        ("file", JsonValue::from(label.as_str())),
                        ("measures", r.measures.to_json()),
                    ];
                    if cli.stats {
                        fields.push(("stats", r.stats.to_json()));
                    }
                    json::object(fields)
                }
                Outcome::Remote { measures, stats } => {
                    let mut fields = vec![
                        ("file", JsonValue::from(label.as_str())),
                        ("measures", measures.clone()),
                    ];
                    if let Some(stats) = stats {
                        fields.push(("stats", stats.clone()));
                    }
                    json::object(fields)
                }
                Outcome::Failed(err) => json::object(vec![
                    ("file", label.as_str().into()),
                    ("error", err.to_json()),
                ]),
            });
        }
        out.emit(&JsonValue::Array(entries).to_json_pretty());
    } else {
        let many = slots.len() > 1;
        for (label, outcome) in &slots {
            match outcome {
                Outcome::Local(r) => {
                    if many {
                        out.emit(&format!("// {label}"));
                    }
                    // Headline via the unified measures API: every
                    // model class reports its kind and, when it has
                    // one, its primary scalar.
                    match r.measures.primary_value() {
                        Some(v) => out.emit(&format!("// {}: {v}", r.measures.kind())),
                        None => out.emit(&format!("// {}", r.measures.kind())),
                    }
                    out.emit(&r.measures.to_json().to_json_pretty());
                    if cli.stats {
                        out.emit(&format!("// stats: {}", r.stats.to_json().to_json()));
                    }
                }
                Outcome::Remote { measures, stats } => {
                    if many {
                        out.emit(&format!("// {label}"));
                    }
                    // The daemon ships measures as JSON; the kind
                    // discriminant is a field of the document.
                    match measures.get("kind").and_then(JsonValue::as_str) {
                        Some(kind) => out.emit(&format!("// {kind}")),
                        None => out.emit("// result"),
                    }
                    out.emit(&measures.to_json_pretty());
                    if let Some(stats) = stats {
                        out.emit(&format!("// stats: {}", stats.to_json()));
                    }
                }
                Outcome::Failed(err) => {
                    eprintln!("{label}: [{}] {}", err.kind.as_str(), err.message);
                }
            }
        }
    }

    if let (Some(path), Some(profiler)) = (&cli.profile, &profiler) {
        let path = keyed(path);
        if let Err(e) = std::fs::write(&path, profiler.to_chrome_trace()) {
            eprintln!("cannot write profile file {path}: {e}");
        }
    }
    if let (Some(path), Some(recorder)) = (&cli.record, &recorder) {
        let path = keyed(path);
        if let Err(e) = std::fs::write(&path, recorder.to_jsonl()) {
            eprintln!("cannot write record file {path}: {e}");
        }
    }
    if let Some(target) = &cli.metrics {
        let dump = obs::registry().exposition(cli.metrics_format);
        if target == "-" {
            eprint!("{dump}");
        } else {
            let target = keyed(target);
            if let Err(e) = std::fs::write(&target, &dump) {
                eprintln!("cannot write metrics file {target}: {e}");
            }
        }
    }
    // `process::exit` skips destructors: push buffered trace records
    // out explicitly.
    obs::flush_subscribers();
    std::process::exit(exit_code);
}
