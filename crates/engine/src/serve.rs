//! `reliab-serve`: a persistent solver daemon over the batch engine.
//!
//! The server owns one [`BatchEngine`] for its whole lifetime, so the
//! canonical-form LRU memo cache — and the warmed-up worker threads
//! behind it — are shared across every request: a spec document solved
//! once is answered from cache for every later client that submits the
//! same canonical form. Admission is a bounded FIFO queue; when it is
//! full new work is shed immediately with HTTP 429 rather than queued
//! into unbounded latency, and every request carries a deadline that
//! is enforced while it waits (a request whose deadline elapses in the
//! queue is answered 504 without ever occupying a solver).
//!
//! ## Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/solve` | POST | solve one spec (inline document or library name) |
//! | `/batch` | POST | solve a JSONL batch, one document per line |
//! | `/specs` | GET | list the hot-reloadable spec library |
//! | `/specs/<name>` | GET | fetch one library document |
//! | `/reload` | POST | re-scan the spec library directory |
//! | `/healthz` | GET | liveness + queue/drain status |
//! | `/metrics` | GET | Prometheus exposition (`?format=json` for JSON) |
//! | `/shutdown` | POST | begin a graceful drain (see [`Server::wait`]) |
//!
//! Solve requests and responses use the `"kind"`-discriminated wire
//! schema in [`reliab_spec::wire`]; errors are structured
//! ([`WireError`]) and map onto HTTP statuses through
//! [`WireError::http_status`], the same table the CLI maps onto exit
//! codes — so a spec that fails the same way fails with the same
//! `kind` on both front ends.
//!
//! Every admitted request is stamped with a fresh trace id, returned
//! in the `X-Trace-Id` response header, applied to the solving worker
//! thread (so spans, events, and metrics series stay correlated), and
//! used to key any per-request artifacts — concurrent requests can
//! never interleave writes into one file.

use reliab_obs as obs;
use reliab_spec::wire::{
    error_response, result_response, ErrorKind, RequestSource, SolveRequest, WireError,
};
use reliab_spec::{json, ModelSpec, SolveOptions, SolveReport};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::BatchEngine;

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Substitutes the literal `{trace}` placeholder in an artifact path
/// template with a trace id, so every request (or CLI invocation)
/// writing telemetry artifacts gets its own file instead of clobbering
/// a shared one. Templates without the placeholder pass through
/// unchanged.
#[must_use]
pub fn keyed_artifact_path(template: &str, trace: u64) -> String {
    template.replace("{trace}", &trace.to_string())
}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port `0` binds an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Solver worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Admission queue capacity: requests beyond this many waiting
    /// jobs are shed with HTTP 429.
    pub queue_depth: usize,
    /// Default per-request deadline in milliseconds, applied when a
    /// request does not carry its own (`0` = no default deadline).
    pub default_deadline_ms: u64,
    /// Maximum accepted request body, in bytes (HTTP 413 beyond).
    pub max_body_bytes: usize,
    /// Socket read budget for receiving a request, in milliseconds;
    /// clients that stall longer (slow-loris) are answered HTTP 408
    /// and disconnected.
    pub read_timeout_ms: u64,
    /// Maximum concurrently open connections (HTTP 503 beyond).
    pub max_connections: usize,
    /// Directory of `.json` model documents served as the named spec
    /// library (`/specs`, `{"spec": "<name>"}` requests) and
    /// re-scanned by `/reload`.
    pub spec_dir: Option<PathBuf>,
    /// When set, each request's convergence telemetry is exported to
    /// `record-<trace>.jsonl` in this directory.
    pub artifact_dir: Option<PathBuf>,
    /// Per-solve options applied to every request.
    pub options: SolveOptions,
    /// Memo-cache capacity handed to [`BatchEngine::with_cache_capacity`].
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            default_deadline_ms: 30_000,
            max_body_bytes: 1 << 20,
            read_timeout_ms: 5_000,
            max_connections: 256,
            spec_dir: None,
            artifact_dir: None,
            options: SolveOptions::default(),
            cache_capacity: crate::DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One entry in the hot-reloadable spec library.
#[derive(Debug, Clone)]
struct LibEntry {
    /// Raw document text, handed to the solver verbatim.
    text: String,
    /// Model class (the document's top-level key).
    kind: String,
}

/// One admitted unit of work: a single `/solve` document or a `/batch`
/// of JSONL lines, solved together so the batch shares the engine's
/// memoization fast path.
struct Job {
    texts: Vec<String>,
    /// Library spec name, for single library solves.
    label: Option<String>,
    deadline: Option<Instant>,
    enqueued: Instant,
    trace: u64,
    reply: mpsc::SyncSender<Vec<Result<SolveReport, WireError>>>,
}

struct Shared {
    config: ServeConfig,
    engine: BatchEngine,
    library: RwLock<BTreeMap<String, LibEntry>>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    in_flight: AtomicUsize,
    active_conns: AtomicUsize,
    /// Draining: stop admitting solves (503) but keep serving health
    /// checks and queued work.
    shutting_down: AtomicBool,
    /// Final stop: the acceptor exits and workers exit once the queue
    /// is empty. Set only by [`Server::shutdown`].
    stopped: AtomicBool,
    /// Set by `POST /shutdown`; [`Server::wait`] watches it.
    remote_shutdown: AtomicBool,
    recorder: Option<Arc<obs::FlightRecorder>>,
    epoch: Instant,
    requests: AtomicU64,
    shed: AtomicU64,
    worker_count: usize,
}

impl Shared {
    fn queue_len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A running solver daemon. Dropping the handle without calling
/// [`Server::shutdown`] aborts the background threads unceremoniously;
/// call `shutdown` for a clean drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listen socket, loads the spec library, and spawns the
    /// acceptor and solver workers.
    ///
    /// # Errors
    ///
    /// Returns the socket error when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        obs::set_metrics_enabled(true);
        let recorder = config.artifact_dir.as_ref().map(|dir| {
            let _ = std::fs::create_dir_all(dir);
            let rec = Arc::new(obs::FlightRecorder::new());
            obs::install_subscriber(rec.clone());
            rec
        });
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            config.workers
        };
        let library = config
            .spec_dir
            .as_ref()
            .map(|dir| load_library(dir))
            .unwrap_or_default();
        let engine = BatchEngine::new()
            .with_jobs(1)
            .with_options(config.options.clone())
            .with_cache_capacity(config.cache_capacity);
        let shared = Arc::new(Shared {
            config,
            engine,
            library: RwLock::new(library),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            active_conns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            remote_shutdown: AtomicBool::new(false),
            recorder,
            epoch: Instant::now(),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            worker_count,
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound listen address (resolves the actual port when the
    /// config asked for an ephemeral one).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(queued, in_flight)` — both must drain to zero when the daemon
    /// is idle; a nonzero steady state means a leaked queue slot.
    #[must_use]
    pub fn queue_stats(&self) -> (usize, usize) {
        (
            self.shared.queue_len(),
            self.shared.in_flight.load(Ordering::SeqCst),
        )
    }

    /// Blocks until a client asks the daemon to stop via
    /// `POST /shutdown` (the `reliab-serve` binary then runs
    /// [`Server::shutdown`] to drain).
    pub fn wait(&self) {
        while !self.shared.remote_shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Gracefully drains and stops the daemon: new admissions are
    /// answered 503, queued and in-flight solves complete and are
    /// delivered, then the threads are joined.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Drain: workers keep popping until the queue is empty, and
        // open connections finish writing their responses.
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            let idle = self.shared.queue_len() == 0
                && self.shared.in_flight.load(Ordering::SeqCst) == 0
                && self.shared.active_conns.load(Ordering::SeqCst) == 0;
            if idle {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
    }
}

impl Drop for Server {
    /// A dropped handle (e.g. a panicking test) must not leave a live
    /// daemon behind: signal every thread to stop and unblock the
    /// acceptor, but don't wait — `shutdown` is the graceful path.
    fn drop(&mut self) {
        self.begin_shutdown();
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Scans `dir` for `.json` documents that parse as model specs; files
/// that do not parse are skipped (the daemon must come up even when
/// the library has a broken file in it).
fn load_library(dir: &std::path::Path) -> BTreeMap<String, LibEntry> {
    let mut lib = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return lib;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(spec) = ModelSpec::from_json_str(&text) else {
            continue;
        };
        let kind = match spec.to_json() {
            json::JsonValue::Object(entries) => {
                entries.first().map_or_else(String::new, |(k, _)| k.clone())
            }
            _ => String::new(),
        };
        lib.insert(name.to_owned(), LibEntry { text, kind });
    }
    lib
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
                q = shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        obs::gauge_set("serve.queue_depth", shared.queue_len() as f64);
        let _trace = obs::set_trace_id(job.trace);
        let wait_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
        obs::observe_ms("serve.queue_wait_ms", wait_ms);
        let results = if job.deadline.is_some_and(|d| Instant::now() >= d) {
            obs::counter_add("serve.deadline_exceeded", 1);
            let err = WireError::new(
                ErrorKind::DeadlineExceeded,
                format!("deadline elapsed after {wait_ms:.1} ms in the admission queue"),
            );
            let err = match &job.label {
                Some(label) => err.with_path(label.clone()),
                None => err,
            };
            job.texts.iter().map(|_| Err(err.clone())).collect()
        } else {
            let t0 = Instant::now();
            let texts = job.texts.clone();
            let label = job.label.clone();
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.engine.solve_texts(&texts)
            }));
            obs::observe_ms("serve.solve_ms", t0.elapsed().as_secs_f64() * 1e3);
            match solved {
                Ok(reports) => reports
                    .into_iter()
                    .map(|r| {
                        r.map_err(|e| {
                            let err = WireError::from_error(&e);
                            match &label {
                                Some(l) => err.with_path(l.clone()),
                                None => err,
                            }
                        })
                    })
                    .collect(),
                Err(_) => {
                    obs::counter_add("serve.panics", 1);
                    job.texts
                        .iter()
                        .map(|_| {
                            Err(WireError::new(
                                ErrorKind::Internal,
                                "solver panicked; see server logs",
                            ))
                        })
                        .collect()
                }
            }
        };
        if let (Some(dir), Some(rec)) = (&shared.config.artifact_dir, &shared.recorder) {
            let path = dir.join(keyed_artifact_path("record-{trace}.jsonl", job.trace));
            let _ = std::fs::write(path, rec.to_jsonl_for_trace(job.trace));
        }
        // Release the slot *before* handing the results over: a client
        // that sees its response must never observe its own job still
        // counted in flight. The client may also have hung up; a failed
        // send is not an error and must not leak the slot either.
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send(results);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        if shared.active_conns.load(Ordering::SeqCst) >= shared.config.max_connections {
            let mut stream = stream;
            respond_error(
                &mut stream,
                &WireError::new(ErrorKind::Overloaded, "connection limit reached"),
                None,
                false,
            );
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let shared = shared.clone();
        std::thread::spawn(move || {
            let mut stream = stream;
            handle_connection(&mut stream, &shared);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// A parsed inbound HTTP request.
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    query: Vec<(String, String)>,
    headers: Vec<(String, String)>,
    body: String,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 defaults to keep-alive unless the client sends
    /// `Connection: close`; HTTP/1.0 is one-shot unless it opts in with
    /// `Connection: keep-alive`.
    keep_alive: bool,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one HTTP/1.1 request under the configured read-timeout and
/// body-size budgets. Returns `Ok(None)` when the client closes (or
/// goes idle past the budget, with `idle_ok`) without sending any
/// bytes — the clean end of a keep-alive connection, not an error.
fn read_request(
    stream: &mut TcpStream,
    config: &ServeConfig,
    idle_ok: bool,
) -> Result<Option<Request>, WireError> {
    let budget = Duration::from_millis(config.read_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(budget.min(Duration::from_millis(250))));
    let started = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 16 * 1024 {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                "request headers too large",
            ));
        }
        if started.elapsed() > budget {
            if buf.is_empty() && idle_ok {
                return Ok(None);
            }
            return Err(WireError::new(
                ErrorKind::SlowClient,
                format!("request not received within {} ms", config.read_timeout_ms),
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "connection closed before a full request arrived",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Loop; the total-budget check above decides slow-loris.
            }
            Err(_) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "error reading the request",
                ))
            }
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || target.is_empty() {
        return Err(WireError::new(
            ErrorKind::BadRequest,
            "malformed request line",
        ));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q),
        None => (target.to_owned(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (kv.to_owned(), String::new()),
        })
        .collect();
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        })
        .collect();
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > config.max_body_bytes {
        return Err(WireError::new(
            ErrorKind::TooLarge,
            format!(
                "request body of {content_length} bytes exceeds the {} byte limit",
                config.max_body_bytes
            ),
        ));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        if started.elapsed() > budget {
            return Err(WireError::new(
                ErrorKind::SlowClient,
                format!(
                    "request body not received within {} ms",
                    config.read_timeout_ms
                ),
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "connection closed mid-body",
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "error reading the request body",
                ))
            }
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| WireError::new(ErrorKind::BadRequest, "request body is not UTF-8"))?;
    let connection = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("connection"))
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = if version.eq_ignore_ascii_case("HTTP/1.0") {
        connection.as_deref() == Some("keep-alive")
    } else {
        connection.as_deref() != Some("close")
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    trace: Option<u64>,
    keep_alive: bool,
    body: &str,
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    if let Some(trace) = trace {
        head.push_str(&format!("X-Trace-Id: {trace}\r\n"));
    }
    if status == 429 || status == 503 {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    // The peer may already be gone (mid-solve disconnects are one of
    // the tested degraded modes); a failed write is not our problem.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn respond_error(stream: &mut TcpStream, err: &WireError, trace: Option<u64>, keep_alive: bool) {
    let mut body = error_response(err).to_json();
    body.push('\n');
    write_response(
        stream,
        err.http_status(),
        "application/json",
        trace,
        keep_alive,
        &body,
    );
}

/// Hard cap on requests served over one keep-alive connection, so a
/// single client cannot pin a connection-handler thread forever.
const MAX_REQUESTS_PER_CONNECTION: usize = 1024;

/// Serves HTTP/1.1 requests sequentially over one connection until the
/// client closes or opts out (`Connection: close`, HTTP/1.0), an error
/// breaks request framing, the per-connection request cap is reached,
/// or the daemon stops.
fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        let t0 = Instant::now();
        let request = match read_request(stream, &shared.config, served > 0) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean close between requests
            Err(err) => {
                if err.kind == ErrorKind::SlowClient {
                    obs::counter_add("serve.slow_clients", 1);
                }
                respond_error(stream, &err, None, false);
                // The request was rejected before being fully read (e.g.
                // an oversized body): closing now would RST the connection
                // and destroy the in-flight error response. Read and
                // discard what the client is still sending, briefly and
                // boundedly.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut scratch = [0u8; 4096];
                let mut drained = 0usize;
                while drained < 4 << 20 {
                    match stream.read(&mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => drained += n,
                    }
                }
                return;
            }
        };
        let keep_alive = request.keep_alive
            && served + 1 < MAX_REQUESTS_PER_CONNECTION
            && !shared.stopped.load(Ordering::SeqCst);
        obs::counter_add("serve.http_requests", 1);
        let persist = route(stream, shared, &request, keep_alive);
        obs::observe_ms("serve.request_ms", t0.elapsed().as_secs_f64() * 1e3);
        if !persist {
            return;
        }
    }
}

/// Dispatches one request. Returns whether the connection should be
/// kept open for another request (`keep_alive`, except for
/// `/shutdown`, which always closes after answering).
fn route(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> bool {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(stream, shared, keep_alive),
        ("GET", "/metrics") => handle_metrics(stream, request, keep_alive),
        ("GET", "/specs") => handle_specs(stream, shared, keep_alive),
        ("GET", path) if path.starts_with("/specs/") => {
            handle_spec_get(stream, shared, &path["/specs/".len()..], keep_alive);
        }
        ("POST", "/reload") => handle_reload(stream, shared, keep_alive),
        ("POST", "/solve") => handle_solve(stream, shared, request, keep_alive),
        ("POST", "/batch") => handle_batch(stream, shared, request, keep_alive),
        ("POST", "/shutdown") => {
            write_response(
                stream,
                200,
                "application/json",
                None,
                false,
                "{\"kind\":\"draining\"}\n",
            );
            shared.shutting_down.store(true, Ordering::SeqCst);
            shared.remote_shutdown.store(true, Ordering::SeqCst);
            shared.ready.notify_all();
            return false;
        }
        (_, "/healthz" | "/metrics" | "/specs" | "/reload" | "/solve" | "/batch" | "/shutdown") => {
            respond_error(
                stream,
                &WireError::new(
                    ErrorKind::BadRequest,
                    format!("method {} not allowed here", request.method),
                ),
                None,
                keep_alive,
            );
        }
        (_, path) => {
            respond_error(
                stream,
                &WireError::new(ErrorKind::NotFound, format!("no route {path}")).with_path(path),
                None,
                keep_alive,
            );
        }
    }
    keep_alive
}

fn handle_healthz(stream: &mut TcpStream, shared: &Arc<Shared>, keep_alive: bool) {
    let draining = shared.shutting_down.load(Ordering::SeqCst);
    let body = json::object(vec![
        (
            "status",
            json::JsonValue::from(if draining { "draining" } else { "ok" }),
        ),
        (
            "uptime_ms",
            json::JsonValue::Number(shared.epoch.elapsed().as_millis() as f64),
        ),
        (
            "queue_depth",
            json::JsonValue::Number(shared.queue_len() as f64),
        ),
        (
            "in_flight",
            json::JsonValue::Number(shared.in_flight.load(Ordering::SeqCst) as f64),
        ),
        (
            "workers",
            json::JsonValue::Number(shared.worker_count as f64),
        ),
        (
            "specs",
            json::JsonValue::Number(
                shared
                    .library
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len() as f64,
            ),
        ),
        (
            "requests",
            json::JsonValue::Number(shared.requests.load(Ordering::SeqCst) as f64),
        ),
        (
            "shed",
            json::JsonValue::Number(shared.shed.load(Ordering::SeqCst) as f64),
        ),
    ]);
    let mut text = body.to_json();
    text.push('\n');
    write_response(stream, 200, "application/json", None, keep_alive, &text);
}

fn handle_metrics(stream: &mut TcpStream, request: &Request, keep_alive: bool) {
    let format = match request.query_param("format") {
        None => obs::ExpositionFormat::Prometheus,
        Some(f) => match obs::ExpositionFormat::parse(f) {
            Some(format) => format,
            None => {
                respond_error(
                    stream,
                    &WireError::new(
                        ErrorKind::BadRequest,
                        format!("unknown metrics format '{f}' (prometheus|json)"),
                    )
                    .with_path("format"),
                    None,
                    keep_alive,
                );
                return;
            }
        },
    };
    let body = obs::registry().exposition(format);
    write_response(stream, 200, format.content_type(), None, keep_alive, &body);
}

fn handle_specs(stream: &mut TcpStream, shared: &Arc<Shared>, keep_alive: bool) {
    let lib = shared
        .library
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entries: Vec<json::JsonValue> = lib
        .iter()
        .map(|(name, entry)| {
            json::object(vec![
                ("name", json::JsonValue::from(name.as_str())),
                ("kind", json::JsonValue::from(entry.kind.as_str())),
            ])
        })
        .collect();
    let mut body = json::object(vec![
        ("kind", json::JsonValue::from("specs")),
        ("specs", json::JsonValue::Array(entries)),
    ])
    .to_json();
    body.push('\n');
    write_response(stream, 200, "application/json", None, keep_alive, &body);
}

fn handle_spec_get(stream: &mut TcpStream, shared: &Arc<Shared>, name: &str, keep_alive: bool) {
    let lib = shared
        .library
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match lib.get(name) {
        Some(entry) => {
            let body = entry.text.clone();
            write_response(stream, 200, "application/json", None, keep_alive, &body);
        }
        None => respond_error(
            stream,
            &WireError::new(ErrorKind::NotFound, format!("no library spec '{name}'"))
                .with_path(name),
            None,
            keep_alive,
        ),
    }
}

fn handle_reload(stream: &mut TcpStream, shared: &Arc<Shared>, keep_alive: bool) {
    let Some(dir) = shared.config.spec_dir.clone() else {
        respond_error(
            stream,
            &WireError::new(
                ErrorKind::BadRequest,
                "this daemon was started without a spec library directory",
            ),
            None,
            keep_alive,
        );
        return;
    };
    let fresh = load_library(&dir);
    let count = fresh.len();
    // In-flight solves cloned their document text at admission, so the
    // swap never races a running solve.
    *shared
        .library
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = fresh;
    obs::counter_add("serve.reloads", 1);
    let mut body = json::object(vec![
        ("kind", json::JsonValue::from("reloaded")),
        ("specs", json::JsonValue::Number(count as f64)),
    ])
    .to_json();
    body.push('\n');
    write_response(stream, 200, "application/json", None, keep_alive, &body);
}

/// The channel a worker answers an admitted job on: one result or
/// wire error per input text, in input order.
type ReplyReceiver = mpsc::Receiver<Vec<Result<SolveReport, WireError>>>;

/// Admission: places a job in the bounded queue, or explains why not.
/// Returns the receiver to await, the minted trace id, and the
/// request's deadline.
fn admit(
    shared: &Arc<Shared>,
    texts: Vec<String>,
    label: Option<String>,
    deadline_ms: Option<u64>,
) -> Result<(ReplyReceiver, u64, Option<Instant>), WireError> {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Err(WireError::new(
            ErrorKind::ShuttingDown,
            "daemon is draining; not admitting new work",
        ));
    }
    let deadline_ms = deadline_ms.unwrap_or(shared.config.default_deadline_ms);
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
    let trace = obs::mint_trace_id();
    let (tx, rx) = mpsc::sync_channel(1);
    {
        let mut q = lock(&shared.queue);
        if q.len() >= shared.config.queue_depth {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("serve.shed", 1);
            return Err(WireError::new(
                ErrorKind::Overloaded,
                format!(
                    "admission queue full ({} waiting); retry later",
                    shared.config.queue_depth
                ),
            ));
        }
        q.push_back(Job {
            texts,
            label,
            deadline,
            enqueued: Instant::now(),
            trace,
            reply: tx,
        });
        obs::gauge_set("serve.queue_depth", q.len() as f64);
    }
    shared.ready.notify_one();
    shared.requests.fetch_add(1, Ordering::SeqCst);
    obs::counter_add("serve.requests", 1);
    Ok((rx, trace, deadline))
}

/// Awaits a worker's reply, falling back to a deadline-exceeded error
/// if the solver blows well past the request deadline mid-solve (the
/// solve itself cannot be cancelled; the client is released anyway).
fn await_reply(
    rx: &mpsc::Receiver<Vec<Result<SolveReport, WireError>>>,
    deadline: Option<Instant>,
) -> Vec<Result<SolveReport, WireError>> {
    let grace = Duration::from_millis(250);
    let outcome = match deadline {
        Some(d) => rx.recv_timeout(d.saturating_duration_since(Instant::now()) + grace),
        None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
    };
    match outcome {
        Ok(results) => results,
        Err(_) => vec![Err(WireError::new(
            ErrorKind::DeadlineExceeded,
            "deadline elapsed while the solve was running",
        ))],
    }
}

fn report_to_response(
    result: Result<SolveReport, WireError>,
    label: Option<&str>,
    stats: bool,
) -> (u16, json::JsonValue) {
    match result {
        Ok(report) => (
            200,
            result_response(
                label,
                report.measures.to_json(),
                stats.then(|| report.stats.to_json()),
            ),
        ),
        Err(err) => (err.http_status(), error_response(&err)),
    }
}

fn handle_solve(stream: &mut TcpStream, shared: &Arc<Shared>, request: &Request, keep_alive: bool) {
    let parsed = match SolveRequest::parse(&request.body) {
        Ok(r) => r,
        Err(err) => {
            respond_error(stream, &err, None, keep_alive);
            return;
        }
    };
    let header_deadline = request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok());
    let deadline_ms = parsed.deadline_ms.or(header_deadline);
    let (label, text) = match &parsed.source {
        RequestSource::Inline(text) => (None, text.clone()),
        RequestSource::Library(name) => {
            let lib = shared
                .library
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match lib.get(name) {
                Some(entry) => (Some(name.clone()), entry.text.clone()),
                None => {
                    respond_error(
                        stream,
                        &WireError::new(ErrorKind::NotFound, format!("no library spec '{name}'"))
                            .with_path(name.clone()),
                        None,
                        keep_alive,
                    );
                    return;
                }
            }
        }
    };
    let (rx, trace, deadline) = match admit(shared, vec![text], label.clone(), deadline_ms) {
        Ok(admitted) => admitted,
        Err(err) => {
            respond_error(stream, &err, None, keep_alive);
            return;
        }
    };
    let mut results = await_reply(&rx, deadline);
    let result = results.pop().unwrap_or_else(|| {
        Err(WireError::new(
            ErrorKind::Internal,
            "worker returned no result",
        ))
    });
    let (status, body) = report_to_response(result, label.as_deref(), parsed.stats);
    let mut text = body.to_json();
    text.push('\n');
    write_response(
        stream,
        status,
        "application/json",
        Some(trace),
        keep_alive,
        &text,
    );
}

fn handle_batch(stream: &mut TcpStream, shared: &Arc<Shared>, request: &Request, keep_alive: bool) {
    let texts: Vec<String> = request
        .body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_owned)
        .collect();
    if texts.is_empty() {
        respond_error(
            stream,
            &WireError::new(
                ErrorKind::BadRequest,
                "batch body has no documents (one JSON document per line)",
            ),
            None,
            keep_alive,
        );
        return;
    }
    let stats = request.query_param("stats").is_some_and(|v| v != "false");
    let header_deadline = request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok());
    let (rx, trace, deadline) = match admit(shared, texts, None, header_deadline) {
        Ok(admitted) => admitted,
        Err(err) => {
            respond_error(stream, &err, None, keep_alive);
            return;
        }
    };
    let results = await_reply(&rx, deadline);
    let mut body = String::new();
    for result in results {
        let (_, doc) = report_to_response(result, None, stats);
        body.push_str(&doc.to_json());
        body.push('\n');
    }
    write_response(
        stream,
        200,
        "application/x-ndjson",
        Some(trace),
        keep_alive,
        &body,
    );
}

/// A response from [`http_request`] — the minimal HTTP client shared
/// by the CLI's `--connect` mode and the test harnesses.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers, in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one HTTP/1.1 request against `addr` (e.g. `"127.0.0.1:7171"`)
/// and reads the full response. The connection is one-shot
/// (`Connection: close`); use [`KeepAliveClient`] to reuse a socket
/// across sequential requests.
///
/// # Errors
///
/// Propagates socket errors; a malformed response status line is
/// reported as [`std::io::ErrorKind::InvalidData`].
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    // The server may reject mid-upload (e.g. 413 on an oversized body)
    // and close its read side; the write then fails with a broken pipe
    // but the response is still there to be read — so write errors are
    // tolerated and only an unreadable response is fatal.
    let sent = stream
        .write_all(req.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
    let mut raw = Vec::new();
    match (stream.read_to_end(&mut raw), sent) {
        (Ok(_), _) => {}
        // A connection reset can race an already-delivered response
        // (read_to_end appends what arrived before erroring); salvage
        // the bytes if they hold a complete header section.
        (Err(_), _) if find_header_end(&raw).is_some() => {}
        (Err(read_err), Ok(())) => return Err(read_err),
        (Err(_), Err(write_err)) => return Err(write_err),
    }
    let header_end = find_header_end(&raw).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response has no header end",
        )
    })?;
    let (status, headers) = parse_response_head(&raw[..header_end])?;
    let body = String::from_utf8_lossy(&raw[header_end + 4..]).into_owned();
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Parses an HTTP response status line and headers (names lowercased).
fn parse_response_head(head: &[u8]) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let head = String::from_utf8_lossy(head).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        })
        .collect();
    Ok((status, headers))
}

/// A persistent HTTP/1.1 client connection: one socket reused across
/// sequential requests, each response framed by its `Content-Length`
/// (reading to end-of-stream would block forever on a kept-alive
/// socket). The daemon answers `Connection: keep-alive` until the
/// client sends `Connection: close` or its per-connection request cap
/// is reached.
pub struct KeepAliveClient {
    stream: TcpStream,
    addr: String,
    /// Bytes read past the previous response's body, carried into the
    /// next response's parse so framing survives any read overshoot.
    residue: Vec<u8>,
}

impl KeepAliveClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7171"`).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: &str) -> std::io::Result<KeepAliveClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(KeepAliveClient {
            stream,
            addr: addr.to_owned(),
            residue: Vec::new(),
        })
    }

    /// Performs one request on the persistent connection and reads the
    /// complete response. Pass `("Connection", "close")` in `headers`
    /// to make this the connection's final request.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; an EOF before a complete response is
    /// reported as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.addr,
            body.len()
        );
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;

        let mut raw = std::mem::take(&mut self.residue);
        let mut chunk = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = find_header_end(&raw) {
                break pos;
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a full response header arrived",
                    ))
                }
                n => raw.extend_from_slice(&chunk[..n]),
            }
        };
        let (status, headers) = parse_response_head(&raw[..header_end])?;
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let body_start = header_end + 4;
        while raw.len() < body_start + content_length {
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid response body",
                    ))
                }
                n => raw.extend_from_slice(&chunk[..n]),
            }
        }
        self.residue = raw.split_off(body_start + content_length);
        let body = String::from_utf8_lossy(&raw[body_start..]).into_owned();
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_paths_key_by_trace() {
        assert_eq!(
            keyed_artifact_path("out/record-{trace}.jsonl", 42),
            "out/record-42.jsonl"
        );
        assert_eq!(keyed_artifact_path("plain.jsonl", 42), "plain.jsonl");
    }

    #[test]
    fn header_end_detection() {
        // Returns the index where the blank line starts; the body
        // begins 4 bytes later.
        let raw = b"GET / HTTP/1.1\r\n\r\nbody";
        assert_eq!(find_header_end(raw), Some(14));
        assert_eq!(&raw[14 + 4..], b"body");
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_depth > 0);
        assert!(c.max_body_bytes >= 64 * 1024);
        assert!(c.addr.ends_with(":0"));
    }
}
