//! # reliab-engine
//!
//! Parallel batch solver engine: accepts a batch of model
//! specifications, fans them out across a thread pool, and returns one
//! instrumented [`SolveReport`] per input — in input order, with
//! results bitwise identical to solving sequentially.
//!
//! Every model is solved independently from its spec, so parallelism
//! changes wall time only, never values. A shared memo cache keyed on
//! the canonical form of each spec ([`ModelSpec::canonical_string`])
//! lets structurally identical documents in one batch — common when
//! sweeping a parameter grid that leaves some models unchanged, or
//! when many files share boilerplate sub-models — reuse the solve
//! instead of repeating it.
//!
//! ```
//! use reliab_engine::BatchEngine;
//! use reliab_spec::ModelSpec;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let doc = r#"{"rbd": {
//!     "components": [{"name": "a", "availability": 0.99},
//!                    {"name": "b", "availability": 0.99}],
//!     "structure": {"parallel": ["a", "b"]}}}"#;
//! let specs: Vec<ModelSpec> =
//!     (0..8).map(|_| ModelSpec::from_json_str(doc)).collect::<Result<_, _>>()?;
//! let reports = BatchEngine::new().with_jobs(4).solve(&specs);
//! assert_eq!(reports.len(), 8);
//! for r in &reports {
//!     let report = r.as_ref().unwrap();
//!     assert!(report.measures.availability().unwrap() > 0.999);
//! }
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod serve;

use reliab_core::fxhash::FxHashMap;
use reliab_core::{Error, Result};
use reliab_obs as obs;
use reliab_spec::{ModelSpec, SolveOptions, SolveReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counters describing what a batch run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct BatchStats {
    /// Number of specs solved from scratch.
    pub solved: usize,
    /// Number of specs answered from the memo cache.
    pub memo_hits: usize,
    /// Number of specs that failed.
    pub errors: usize,
    /// Memo-cache entries evicted (ever, on this engine) to respect
    /// [`BatchEngine::with_cache_capacity`].
    pub evictions: usize,
}

/// Memo cache entries are evicted beyond this many by default; see
/// [`BatchEngine::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Bounded memo cache: an `FxHashMap` (keys are canonical spec JSON the
/// process produced itself, so the fast non-DoS-resistant hash is safe)
/// plus a logical clock. Each hit or insert stamps the entry with the
/// current tick; when an insert would exceed `capacity`, the entry with
/// the oldest stamp is dropped (LRU by linear scan — capacities are
/// small enough that the scan is noise next to a solve).
#[derive(Debug, Default)]
struct MemoCache {
    map: FxHashMap<String, (SolveReport, u64)>,
    tick: u64,
    evictions: usize,
}

impl MemoCache {
    fn get(&mut self, key: &str) -> Option<SolveReport> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(report, stamp)| {
            *stamp = tick;
            report.clone()
        })
    }

    fn insert(&mut self, key: String, report: &SolveReport, capacity: usize) {
        self.tick += 1;
        if self.map.contains_key(&key) {
            return;
        }
        if capacity > 0 && self.map.len() >= capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                obs::counter_add("engine.memo.evictions", 1);
            }
        }
        self.map.insert(key, (report.clone(), self.tick));
    }
}

/// A batch solver: configuration plus a memo cache that persists across
/// [`BatchEngine::solve`] calls on the same engine.
#[derive(Debug)]
pub struct BatchEngine {
    jobs: usize,
    options: SolveOptions,
    memoize: bool,
    cache_capacity: usize,
    cache: Mutex<MemoCache>,
    last_stats: Mutex<BatchStats>,
    kind_counts: Mutex<FxHashMap<&'static str, usize>>,
}

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchEngine {
    /// An engine with default [`SolveOptions`], memoization on, and one
    /// worker per available CPU.
    #[must_use]
    pub fn new() -> Self {
        BatchEngine {
            jobs: 0,
            options: SolveOptions::default(),
            memoize: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache: Mutex::new(MemoCache::default()),
            last_stats: Mutex::new(BatchStats::default()),
            kind_counts: Mutex::new(FxHashMap::default()),
        }
    }

    /// Sets the worker count: `0` means one worker per available CPU,
    /// `1` solves sequentially on the calling thread.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the per-solve options applied to every spec in the batch.
    #[must_use]
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Enables or disables the canonical-spec memo cache.
    #[must_use]
    pub fn with_memoization(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// Caps the memo cache at `capacity` entries (`0` = unbounded).
    /// When full, the least-recently-used entry is evicted; evictions
    /// are counted in [`BatchStats::evictions`] and in the
    /// `engine.memo.evictions` metric. Defaults to
    /// [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Counters from the most recent [`BatchEngine::solve`] /
    /// [`BatchEngine::solve_texts`] call.
    #[must_use]
    pub fn last_stats(&self) -> BatchStats {
        let mut stats = *lock(&self.last_stats);
        stats.evictions = lock(&self.cache).evictions;
        stats
    }

    /// Successful solves from the most recent batch, broken down by
    /// model class ([`reliab_spec::SolvedMeasures::kind`]), sorted by
    /// kind. Memo hits count toward the kind they resolved to.
    #[must_use]
    pub fn last_kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = lock(&self.kind_counts)
            .iter()
            .map(|(k, c)| (*k, *c))
            .collect();
        counts.sort_unstable();
        counts
    }

    /// Solves every spec, returning reports in input order. Per-spec
    /// failures occupy their slot as `Err` without disturbing the rest
    /// of the batch.
    pub fn solve(&self, specs: &[ModelSpec]) -> Vec<Result<SolveReport>> {
        let inputs: Vec<Result<&ModelSpec>> = specs.iter().map(Ok).collect();
        self.run(inputs)
    }

    /// Parses and solves a batch of JSON documents. Parse failures
    /// occupy their slot as `Err`; the remaining documents still solve.
    pub fn solve_texts<S: AsRef<str>>(&self, texts: &[S]) -> Vec<Result<SolveReport>> {
        let parsed: Vec<Result<ModelSpec>> = texts
            .iter()
            .map(|t| ModelSpec::from_json_str(t.as_ref()))
            .collect();
        let inputs: Vec<Result<&ModelSpec>> = parsed
            .iter()
            .map(|p| p.as_ref().map_err(clone_err))
            .collect();
        self.run(inputs)
    }

    fn run(&self, inputs: Vec<Result<&ModelSpec>>) -> Vec<Result<SolveReport>> {
        *lock(&self.last_stats) = BatchStats::default();
        lock(&self.kind_counts).clear();
        let workers = self.worker_count(inputs.len());
        // One batch = one request: every span and event below shares
        // the trace id minted here (unless the caller set one already).
        let _trace = obs::ensure_trace_id();
        let batch_span = obs::span("engine.batch");
        let batch_id = batch_span.id();
        obs::event(
            "engine.batch",
            &[("inputs", inputs.len().into()), ("workers", workers.into())],
        );
        obs::gauge_set("engine.workers", workers as f64);
        if obs::trace_enabled() {
            for idx in 0..inputs.len() {
                obs::event(
                    "engine.lifecycle",
                    &[("index", idx.into()), ("stage", "queued".into())],
                );
            }
        }
        let mut results: Vec<(usize, Result<SolveReport>)> = if workers <= 1 {
            inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| (i, self.solve_one(i, input)))
                .collect()
        } else {
            let inputs = &inputs;
            let next = AtomicUsize::new(0);
            let trace = obs::current_trace_id();
            let mut collected = Vec::with_capacity(inputs.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            // Workers are fresh threads: re-parent their
                            // spans under the batch span explicitly and
                            // re-apply the dispatching trace id.
                            let _trace = obs::set_trace_id(trace);
                            let _worker = obs::span_with_parent("engine.worker", batch_id);
                            let busy_start = obs::metrics_enabled().then(Instant::now);
                            let mut local = Vec::new();
                            loop {
                                let idx = next.fetch_add(1, Ordering::Relaxed);
                                if idx >= inputs.len() {
                                    if let Some(t0) = busy_start {
                                        obs::observe_ms(
                                            "engine.worker_busy_ms",
                                            t0.elapsed().as_secs_f64() * 1e3,
                                        );
                                    }
                                    return local;
                                }
                                let input = inputs[idx].as_ref().copied().map_err(clone_err);
                                local.push((idx, self.solve_one(idx, input)));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    collected.extend(h.join().expect("batch worker panicked"));
                }
            });
            collected
        };
        obs::counter_add("engine.batches", 1);
        results.sort_by_key(|(idx, _)| *idx);
        results.into_iter().map(|(_, r)| r).collect()
    }

    fn worker_count(&self, batch_len: usize) -> usize {
        let jobs = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.jobs
        };
        jobs.min(batch_len)
    }

    fn solve_one(&self, idx: usize, input: Result<&ModelSpec>) -> Result<SolveReport> {
        let _span = obs::span("engine.solve");
        lifecycle(idx, "start", None);
        let spec = match input {
            Ok(spec) => spec,
            Err(e) => {
                lock(&self.last_stats).errors += 1;
                obs::counter_add("engine.errors", 1);
                lifecycle(idx, "done", Some("err"));
                return Err(e);
            }
        };
        let key = if self.memoize {
            let key = spec.canonical_string();
            if let Some(hit) = lock(&self.cache).get(&key) {
                lock(&self.last_stats).memo_hits += 1;
                *lock(&self.kind_counts)
                    .entry(hit.measures.kind())
                    .or_insert(0) += 1;
                obs::counter_add("engine.memo.hits", 1);
                lifecycle(idx, "done", Some("memo"));
                return Ok(hit);
            }
            obs::counter_add("engine.memo.misses", 1);
            Some(key)
        } else {
            None
        };
        let result = reliab_spec::solve_with(spec, &self.options);
        match &result {
            Ok(report) => {
                let kind = report.measures.kind();
                lock(&self.last_stats).solved += 1;
                *lock(&self.kind_counts).entry(kind).or_insert(0) += 1;
                obs::counter_add("engine.specs.solved", 1);
                obs::counter_add(&format!("engine.specs.solved.{kind}"), 1);
                if let Some(key) = key {
                    lock(&self.cache).insert(key, report, self.cache_capacity);
                }
                lifecycle(idx, "done", Some("ok"));
            }
            Err(_) => {
                lock(&self.last_stats).errors += 1;
                obs::counter_add("engine.errors", 1);
                lifecycle(idx, "done", Some("err"));
            }
        }
        result
    }
}

/// Emits one `engine.lifecycle` trace event. Spec slots move through
/// `queued` → `start` → `done`; `done` carries an `outcome` of `ok`,
/// `err`, or `memo`.
fn lifecycle(idx: usize, stage: &'static str, outcome: Option<&'static str>) {
    if !obs::trace_enabled() {
        return;
    }
    match outcome {
        Some(o) => obs::event(
            "engine.lifecycle",
            &[
                ("index", idx.into()),
                ("stage", stage.into()),
                ("outcome", o.into()),
            ],
        ),
        None => obs::event(
            "engine.lifecycle",
            &[("index", idx.into()), ("stage", stage.into())],
        ),
    }
}

/// `reliab_core::Error` is not `Clone`; rebuild an equivalent error for
/// slots that share one parse failure. `Error::invalid` prefixes its
/// message on display, so strip an existing prefix instead of stacking
/// a second one.
fn clone_err(e: &Error) -> Error {
    let msg = e.to_string();
    Error::invalid(
        msg.strip_prefix("invalid parameter: ")
            .unwrap_or(&msg)
            .to_owned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rbd_doc(availability: f64) -> String {
        format!(
            r#"{{"rbd": {{
                "components": [{{"name": "a", "availability": {availability}}},
                               {{"name": "b", "availability": {availability}}}],
                "structure": {{"parallel": ["a", "b"]}}}}}}"#
        )
    }

    #[test]
    fn batch_results_keep_input_order() {
        let docs: Vec<String> = (1..=9).map(|i| rbd_doc(i as f64 / 10.0)).collect();
        let engine = BatchEngine::new().with_jobs(4);
        let reports = engine.solve_texts(&docs);
        assert_eq!(reports.len(), 9);
        for (i, r) in reports.iter().enumerate() {
            let p = (i + 1) as f64 / 10.0;
            let expected = 1.0 - (1.0 - p) * (1.0 - p);
            let got = r.as_ref().unwrap().measures.availability().unwrap();
            assert!((got - expected).abs() < 1e-12, "slot {i}");
        }
    }

    #[test]
    fn parallel_matches_sequential_measures() {
        let docs: Vec<String> = (1..=16).map(|i| rbd_doc(i as f64 / 20.0)).collect();
        let sequential = BatchEngine::new().with_jobs(1).solve_texts(&docs);
        let parallel = BatchEngine::new().with_jobs(8).solve_texts(&docs);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap().measures, p.as_ref().unwrap().measures);
        }
    }

    #[test]
    fn memoization_dedupes_identical_specs() {
        let docs = vec![rbd_doc(0.9), rbd_doc(0.9), rbd_doc(0.9), rbd_doc(0.8)];
        let engine = BatchEngine::new().with_jobs(1);
        let reports = engine.solve_texts(&docs);
        assert!(reports.iter().all(Result::is_ok));
        let stats = engine.last_stats();
        assert_eq!(stats.solved, 2);
        assert_eq!(stats.memo_hits, 2);
        // The cache persists: a second batch of the same docs is all hits.
        engine.solve_texts(&docs);
        assert_eq!(engine.last_stats().memo_hits, 4);
    }

    #[test]
    fn memoization_can_be_disabled() {
        let docs = vec![rbd_doc(0.9), rbd_doc(0.9)];
        let engine = BatchEngine::new().with_jobs(1).with_memoization(false);
        engine.solve_texts(&docs);
        let stats = engine.last_stats();
        assert_eq!(stats.solved, 2);
        assert_eq!(stats.memo_hits, 0);
    }

    #[test]
    fn per_spec_failures_do_not_poison_the_batch() {
        let docs = vec![rbd_doc(0.9), "not json".to_owned(), rbd_doc(0.8)];
        let engine = BatchEngine::new().with_jobs(2);
        let reports = engine.solve_texts(&docs);
        assert!(reports[0].is_ok());
        assert!(reports[1].is_err());
        assert!(reports[2].is_ok());
        assert_eq!(engine.last_stats().errors, 1);
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used() {
        // Capacity 2, three distinct docs: the third insert evicts the
        // oldest entry.
        let docs = vec![rbd_doc(0.7), rbd_doc(0.8), rbd_doc(0.9)];
        let engine = BatchEngine::new().with_jobs(1).with_cache_capacity(2);
        engine.solve_texts(&docs);
        let stats = engine.last_stats();
        assert_eq!(stats.solved, 3);
        assert_eq!(stats.evictions, 1);
        // 0.7 was evicted; re-solving it misses, while 0.9 still hits.
        engine.solve_texts(&[rbd_doc(0.9)]);
        assert_eq!(engine.last_stats().memo_hits, 1);
        engine.solve_texts(&[rbd_doc(0.7)]);
        let stats = engine.last_stats();
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(stats.solved, 1);
    }

    #[test]
    fn cache_hit_refreshes_recency() {
        let engine = BatchEngine::new().with_jobs(1).with_cache_capacity(2);
        engine.solve_texts(&[rbd_doc(0.7), rbd_doc(0.8)]);
        // Touch 0.7 so 0.8 becomes the LRU entry, then insert a third.
        engine.solve_texts(&[rbd_doc(0.7)]);
        assert_eq!(engine.last_stats().memo_hits, 1);
        engine.solve_texts(&[rbd_doc(0.9)]);
        // 0.7 must have survived the eviction.
        engine.solve_texts(&[rbd_doc(0.7)]);
        assert_eq!(engine.last_stats().memo_hits, 1);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let docs: Vec<String> = (1..=9).map(|i| rbd_doc(i as f64 / 10.0)).collect();
        let engine = BatchEngine::new().with_jobs(1).with_cache_capacity(0);
        engine.solve_texts(&docs);
        assert_eq!(engine.last_stats().evictions, 0);
        engine.solve_texts(&docs);
        assert_eq!(engine.last_stats().memo_hits, 9);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = BatchEngine::new();
        assert!(engine.solve(&[]).is_empty());
        assert_eq!(engine.last_stats(), BatchStats::default());
    }

    #[test]
    fn kind_counts_aggregate_by_model_class() {
        let ctmc = r#"{"ctmc": {
            "states": ["up", "down"],
            "transitions": [{"from": "up", "to": "down", "rate": 0.01},
                            {"from": "down", "to": "up", "rate": 1.0}],
            "up_states": ["up"]}}"#
            .to_owned();
        let docs = vec![rbd_doc(0.9), ctmc, rbd_doc(0.9), rbd_doc(0.8)];
        let engine = BatchEngine::new().with_jobs(1);
        engine.solve_texts(&docs);
        // Memo hits count toward their kind: 3 rbd + 1 ctmc.
        assert_eq!(engine.last_kind_counts(), vec![("ctmc", 1), ("rbd", 3)]);
        // Counts reset per batch.
        engine.solve_texts(&[rbd_doc(0.7)]);
        assert_eq!(engine.last_kind_counts(), vec![("rbd", 1)]);
    }
}
