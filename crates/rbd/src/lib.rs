//! # reliab-rbd
//!
//! Reliability block diagrams (RBDs): the first non-state-space model
//! class in the tutorial. Blocks compose by series (all must work),
//! parallel (any must work), and k-of-n; components may appear in
//! several places (shared components), which is why evaluation compiles
//! the structure function to a BDD rather than multiplying branch
//! probabilities — the BDD stays exact under sharing.
//!
//! ```
//! use reliab_rbd::{Block, RbdBuilder};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // Two workstations (1-of-2) in series with a file server.
//! let mut b = RbdBuilder::new();
//! let w1 = b.component("workstation-1");
//! let w2 = b.component("workstation-2");
//! let fs = b.component("file-server");
//! let diagram = Block::series(vec![Block::parallel_of(&[w1, w2]), fs.into()]);
//! let rbd = b.build(diagram)?;
//! // availability: workstations 0.99, server 0.999
//! let a = rbd.availability(&[0.99, 0.99, 0.999])?;
//! assert!((a - (1.0 - 0.01f64 * 0.01) * 0.999).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod structure;

pub use structure::{Block, ComponentId, Rbd, RbdBuilder};

use reliab_core::Error;

/// Converts a BDD-layer error into the workspace error type.
pub(crate) fn bdd_err(e: reliab_bdd::BddError) -> Error {
    Error::model(e.to_string())
}
