//! RBD structure definition and BDD-backed evaluation.

use crate::bdd_err;
use reliab_bdd::{Bdd, NodeId};
use reliab_core::{ensure_probability, Error, ImportanceMeasures, Result};
use reliab_dist::Lifetime;
use reliab_numeric::quadrature::integrate_to_infinity;
use reliab_obs as obs;

/// Handle to an RBD component, returned by [`RbdBuilder::component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Index into probability/lifetime vectors passed to evaluation
    /// methods.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The structural composition of an RBD.
///
/// `Block` values are plain data; the same [`ComponentId`] may appear in
/// multiple blocks (a *shared* component), and evaluation remains exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// A single component.
    Component(ComponentId),
    /// All sub-blocks must work.
    Series(Vec<Block>),
    /// At least one sub-block must work.
    Parallel(Vec<Block>),
    /// At least `k` of the sub-blocks must work.
    KOfN {
        /// Minimum number of working sub-blocks.
        k: usize,
        /// The sub-blocks.
        blocks: Vec<Block>,
    },
}

impl Block {
    /// Series composition.
    pub fn series(blocks: Vec<Block>) -> Block {
        Block::Series(blocks)
    }

    /// Parallel composition.
    pub fn parallel(blocks: Vec<Block>) -> Block {
        Block::Parallel(blocks)
    }

    /// Parallel composition of bare components.
    pub fn parallel_of(components: &[ComponentId]) -> Block {
        Block::Parallel(components.iter().map(|&c| Block::Component(c)).collect())
    }

    /// Series composition of bare components.
    pub fn series_of(components: &[ComponentId]) -> Block {
        Block::Series(components.iter().map(|&c| Block::Component(c)).collect())
    }

    /// k-of-n composition.
    pub fn k_of_n(k: usize, blocks: Vec<Block>) -> Block {
        Block::KOfN { k, blocks }
    }

    /// k-of-n over bare components.
    pub fn k_of_n_components(k: usize, components: &[ComponentId]) -> Block {
        Block::KOfN {
            k,
            blocks: components.iter().map(|&c| Block::Component(c)).collect(),
        }
    }
}

impl From<ComponentId> for Block {
    fn from(c: ComponentId) -> Block {
        Block::Component(c)
    }
}

/// Builder for [`Rbd`] models: declare components, compose a [`Block`]
/// tree, then [`RbdBuilder::build`].
#[derive(Debug, Default)]
pub struct RbdBuilder {
    names: Vec<String>,
}

impl RbdBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RbdBuilder::default()
    }

    /// Declares a component and returns its handle. Component names are
    /// labels only; declaring the same name twice creates two distinct
    /// components.
    pub fn component(&mut self, name: &str) -> ComponentId {
        self.names.push(name.to_owned());
        ComponentId(self.names.len() - 1)
    }

    /// Declares `n` components named `prefix-0 .. prefix-(n-1)`.
    pub fn components(&mut self, prefix: &str, n: usize) -> Vec<ComponentId> {
        (0..n)
            .map(|i| self.component(&format!("{prefix}-{i}")))
            .collect()
    }

    /// Compiles the diagram into an evaluable [`Rbd`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for an empty diagram, an empty
    /// series/parallel/k-of-n group, a k-of-n with `k` out of range, or
    /// a component handle not created by this builder.
    pub fn build(self, root: Block) -> Result<Rbd> {
        let n = self.names.len();
        if n == 0 {
            return Err(Error::model("RBD has no components"));
        }
        let _span = obs::span("rbd.compile_bdd");
        let mut bdd = Bdd::new(n as u32);
        let works = Self::compile(&mut bdd, &root, n)?;
        bdd.record_observability();
        obs::counter_add("rbd.compiles", 1);
        Ok(Rbd {
            names: self.names,
            bdd,
            works,
        })
    }

    fn compile(bdd: &mut Bdd, block: &Block, n: usize) -> Result<NodeId> {
        match block {
            Block::Component(c) => {
                if c.0 >= n {
                    return Err(Error::model(format!(
                        "component handle {} out of range ({n} components declared)",
                        c.0
                    )));
                }
                bdd.var(c.0 as u32).map_err(bdd_err)
            }
            Block::Series(blocks) => {
                if blocks.is_empty() {
                    return Err(Error::model("empty series group"));
                }
                let mut acc = NodeId::TRUE;
                for b in blocks {
                    let x = Self::compile(bdd, b, n)?;
                    acc = bdd.and(acc, x);
                }
                Ok(acc)
            }
            Block::Parallel(blocks) => {
                if blocks.is_empty() {
                    return Err(Error::model("empty parallel group"));
                }
                let mut acc = NodeId::FALSE;
                for b in blocks {
                    let x = Self::compile(bdd, b, n)?;
                    acc = bdd.or(acc, x);
                }
                Ok(acc)
            }
            Block::KOfN { k, blocks } => {
                if blocks.is_empty() {
                    return Err(Error::model("empty k-of-n group"));
                }
                if *k == 0 || *k > blocks.len() {
                    return Err(Error::model(format!(
                        "k-of-n with k = {k} outside 1..={}",
                        blocks.len()
                    )));
                }
                let inputs: Vec<NodeId> = blocks
                    .iter()
                    .map(|b| Self::compile(bdd, b, n))
                    .collect::<Result<_>>()?;
                Ok(bdd.at_least_k(&inputs, *k))
            }
        }
    }
}

/// A compiled reliability block diagram.
///
/// All evaluation is exact (BDD-based), including diagrams with shared
/// components; see [`RbdBuilder`] for construction.
#[derive(Debug)]
pub struct Rbd {
    names: Vec<String>,
    bdd: Bdd,
    works: NodeId,
}

impl Rbd {
    /// Number of declared components.
    pub fn num_components(&self) -> usize {
        self.names.len()
    }

    /// Component name by handle.
    pub fn component_name(&self, c: ComponentId) -> &str {
        &self.names[c.0]
    }

    /// Size of the compiled BDD (nodes) — the cost driver for
    /// evaluation, reported for ordering experiments.
    pub fn bdd_size(&self) -> usize {
        self.bdd.node_count(self.works)
    }

    /// Table sizes and cache counters of the underlying BDD manager.
    pub fn bdd_stats(&self) -> reliab_bdd::BddStats {
        self.bdd.stats()
    }

    /// System availability (or any point probability), given each
    /// component's probability of being up.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a length mismatch or
    /// probabilities outside `[0, 1]`.
    pub fn availability(&self, component_up: &[f64]) -> Result<f64> {
        let _span = obs::span("rbd.availability");
        self.check_probs(component_up)?;
        self.bdd
            .probability(self.works, component_up)
            .map_err(bdd_err)
    }

    /// System reliability at time `t` given each component's lifetime
    /// distribution (no repair).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a length mismatch and
    /// propagates distribution errors.
    pub fn reliability(&self, lifetimes: &[&dyn Lifetime], t: f64) -> Result<f64> {
        if lifetimes.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} lifetimes supplied for {} components",
                lifetimes.len(),
                self.names.len()
            )));
        }
        let probs: Vec<f64> = lifetimes
            .iter()
            .map(|d| d.survival(t))
            .collect::<Result<_>>()?;
        self.availability(&probs)
    }

    /// System MTTF under the given component lifetimes:
    /// `∫₀^∞ R_sys(t) dt` by adaptive quadrature.
    ///
    /// # Errors
    ///
    /// Propagates reliability-evaluation and quadrature errors.
    pub fn mttf(&self, lifetimes: &[&dyn Lifetime]) -> Result<f64> {
        if lifetimes.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} lifetimes supplied for {} components",
                lifetimes.len(),
                self.names.len()
            )));
        }
        // Window scale: the largest component mean (system dies no later
        // than its longest-lived path, so this is a sane scale).
        let scale = lifetimes
            .iter()
            .map(|d| d.mean())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        integrate_to_infinity(
            |t| self.reliability(lifetimes, t).unwrap_or(f64::NAN),
            scale,
            1e-10,
            80,
        )
        .map_err(|e| Error::numerical(e.to_string()))
    }

    /// Importance measures for every component at the given component
    /// availabilities.
    ///
    /// * Birnbaum: `∂A_sys/∂p_i` (equal to `∂Q_sys/∂q_i`).
    /// * Criticality: `Birnbaum_i · q_i / Q_sys`.
    /// * Fussell–Vesely (fractional form): `1 − Q_sys(q_i := 0) / Q_sys`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on bad probabilities and
    /// [`Error::Model`] if the system cannot fail at these inputs
    /// (`Q_sys = 0`, importance undefined).
    pub fn importance(&mut self, component_up: &[f64]) -> Result<Vec<ImportanceMeasures>> {
        let _span = obs::span("rbd.importance");
        self.check_probs(component_up)?;
        let a_sys = self
            .bdd
            .probability(self.works, component_up)
            .map_err(bdd_err)?;
        let q_sys = 1.0 - a_sys;
        if q_sys <= 0.0 {
            return Err(Error::model(
                "system unreliability is zero; importance measures are undefined",
            ));
        }
        let birnbaum = self
            .bdd
            .birnbaum(self.works, component_up)
            .map_err(bdd_err)?;
        let mut out = Vec::with_capacity(self.names.len());
        for (i, name) in self.names.iter().enumerate() {
            let q_i = 1.0 - component_up[i];
            // Q with component i perfect:
            let mut perfect = component_up.to_vec();
            perfect[i] = 1.0;
            let a_perfect = self
                .bdd
                .probability(self.works, &perfect)
                .map_err(bdd_err)?;
            let fv = 1.0 - (1.0 - a_perfect) / q_sys;
            out.push(ImportanceMeasures {
                component: name.clone(),
                birnbaum: birnbaum[i],
                criticality: birnbaum[i] * q_i / q_sys,
                fussell_vesely: fv,
            });
        }
        Ok(out)
    }

    fn check_probs(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} probabilities supplied for {} components",
                p.len(),
                self.names.len()
            )));
        }
        for (i, &v) in p.iter().enumerate() {
            ensure_probability(v, &format!("availability of '{}'", self.names[i]))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::Exponential;

    #[test]
    fn series_parallel_closed_forms() {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 3);
        let rbd = b.build(Block::series_of(&c)).unwrap();
        let a = rbd.availability(&[0.9, 0.8, 0.7]).unwrap();
        assert!((a - 0.9 * 0.8 * 0.7).abs() < 1e-15);

        let mut b = RbdBuilder::new();
        let c = b.components("c", 3);
        let rbd = b.build(Block::parallel_of(&c)).unwrap();
        let a = rbd.availability(&[0.9, 0.8, 0.7]).unwrap();
        assert!((a - (1.0 - 0.1 * 0.2 * 0.3)).abs() < 1e-15);
    }

    #[test]
    fn two_of_three_closed_form() {
        let mut b = RbdBuilder::new();
        let c = b.components("unit", 3);
        let rbd = b.build(Block::k_of_n_components(2, &c)).unwrap();
        let p = 0.9f64;
        let a = rbd.availability(&[p, p, p]).unwrap();
        let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((a - expected).abs() < 1e-14);
    }

    #[test]
    fn shared_component_is_exact() {
        // (A and B) or (A and C): naive block math double-counts A.
        let mut b = RbdBuilder::new();
        let a = b.component("a");
        let bb = b.component("b");
        let cc = b.component("c");
        let diagram = Block::parallel(vec![Block::series_of(&[a, bb]), Block::series_of(&[a, cc])]);
        let rbd = b.build(diagram).unwrap();
        let got = rbd.availability(&[0.5, 0.5, 0.5]).unwrap();
        // P(A)·P(B ∪ C) = 0.5 · 0.75.
        assert!((got - 0.375).abs() < 1e-15);
    }

    #[test]
    fn nested_structures() {
        // ((c0 || c1) series (c2 || c3)) — the classic bridge-free
        // series-parallel network.
        let mut b = RbdBuilder::new();
        let c = b.components("c", 4);
        let diagram = Block::series(vec![
            Block::parallel_of(&c[0..2]),
            Block::parallel_of(&c[2..4]),
        ]);
        let rbd = b.build(diagram).unwrap();
        let a = rbd.availability(&[0.9, 0.9, 0.8, 0.8]).unwrap();
        let expected = (1.0 - 0.01) * (1.0 - 0.04);
        assert!((a - expected).abs() < 1e-14);
    }

    #[test]
    fn validation_catches_structure_errors() {
        let mut b = RbdBuilder::new();
        let c0 = b.component("a");
        assert!(RbdBuilder::new().build(Block::Component(c0)).is_err()); // no components
        let b2 = {
            let mut b2 = RbdBuilder::new();
            b2.component("x");
            b2
        };
        assert!(b2.build(Block::Series(vec![])).is_err());
        let mut b3 = RbdBuilder::new();
        let x = b3.component("x");
        assert!(b3
            .build(Block::KOfN {
                k: 5,
                blocks: vec![Block::Component(x)]
            })
            .is_err());
    }

    #[test]
    fn probability_vector_validation() {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let rbd = b.build(Block::series_of(&c)).unwrap();
        assert!(rbd.availability(&[0.9]).is_err());
        assert!(rbd.availability(&[0.9, 1.1]).is_err());
    }

    #[test]
    fn reliability_with_exponential_components() {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let rbd = b.build(Block::parallel_of(&c)).unwrap();
        let d1 = Exponential::new(1.0).unwrap();
        let d2 = Exponential::new(2.0).unwrap();
        let t = 0.5;
        let r = rbd.reliability(&[&d1, &d2], t).unwrap();
        let expected = 1.0 - (1.0 - (-t).exp()) * (1.0 - (-2.0 * t).exp());
        assert!((r - expected).abs() < 1e-13);
    }

    #[test]
    fn mttf_parallel_exponential() {
        // Two parallel exp(1) units: MTTF = 1 + 1/2 = 1.5.
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let rbd = b.build(Block::parallel_of(&c)).unwrap();
        let d = Exponential::new(1.0).unwrap();
        let mttf = rbd.mttf(&[&d, &d]).unwrap();
        assert!((mttf - 1.5).abs() < 1e-7, "{mttf}");
    }

    #[test]
    fn mttf_series_exponential() {
        // Series of exp(1) and exp(3): rate adds, MTTF = 1/4.
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let rbd = b.build(Block::series_of(&c)).unwrap();
        let d1 = Exponential::new(1.0).unwrap();
        let d2 = Exponential::new(3.0).unwrap();
        let mttf = rbd.mttf(&[&d1, &d2]).unwrap();
        assert!((mttf - 0.25).abs() < 1e-8, "{mttf}");
    }

    #[test]
    fn importance_series_system() {
        // In a series system the weakest component has the highest
        // Birnbaum importance... the *strongest* has: B_i = prod_{j!=i} p_j.
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let mut rbd = b.build(Block::series_of(&c)).unwrap();
        let imp = rbd.importance(&[0.9, 0.99]).unwrap();
        assert!((imp[0].birnbaum - 0.99).abs() < 1e-12);
        assert!((imp[1].birnbaum - 0.9).abs() < 1e-12);
        // Criticality ranks the weak component first.
        assert!(imp[0].criticality > imp[1].criticality);
        // FV in a series system: every failure involves any component's
        // cut set; values within [0,1].
        for m in &imp {
            assert!((0.0..=1.0).contains(&m.fussell_vesely));
        }
    }

    #[test]
    fn importance_undefined_for_perfect_system() {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 2);
        let mut rbd = b.build(Block::parallel_of(&c)).unwrap();
        assert!(rbd.importance(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn bdd_size_reported() {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 8);
        let rbd = b.build(Block::k_of_n_components(4, &c)).unwrap();
        assert!(rbd.bdd_size() > 0);
        assert_eq!(rbd.num_components(), 8);
        assert_eq!(rbd.component_name(c[3]), "c-3");
    }
}
