//! Property tests: variable reordering must never change the function.
//!
//! Random fault trees (nested AND/OR/k-of-n gates over a shared event
//! pool) are compiled once in declaration order and once under each
//! ordering heuristic, including post-compile sifting. The top-event
//! probability is a function of the Boolean structure alone, so every
//! ordering must agree to float tolerance; a disagreement means a
//! reordering bug (a swap that changed the represented function).

use proptest::collection::vec;
use proptest::prelude::*;
use reliab_ftree::{EventId, FaultTreeBuilder, FtNode, VariableOrdering};

/// Builder-independent gate structure over an event-pool index space.
#[derive(Debug, Clone)]
enum Shape {
    Leaf(usize),
    Or(Vec<Shape>),
    And(Vec<Shape>),
    KOfN(Vec<Shape>),
}

const POOL: usize = 24;

fn shape_strategy() -> BoxedStrategy<Shape> {
    (0usize..POOL)
        .prop_map(Shape::Leaf)
        .prop_recursive(3, 64, 4, |inner| {
            prop_oneof![
                vec(inner.clone(), 2..=4).prop_map(Shape::Or),
                vec(inner.clone(), 2..=4).prop_map(Shape::And),
                vec(inner, 3..=5).prop_map(Shape::KOfN),
            ]
        })
}

fn to_node(shape: &Shape, events: &[EventId]) -> FtNode {
    match shape {
        Shape::Leaf(i) => FtNode::Basic(events[*i % events.len()]),
        Shape::Or(xs) => FtNode::or(xs.iter().map(|s| to_node(s, events)).collect()),
        Shape::And(xs) => FtNode::and(xs.iter().map(|s| to_node(s, events)).collect()),
        Shape::KOfN(xs) => FtNode::k_of_n(2, xs.iter().map(|s| to_node(s, events)).collect()),
    }
}

fn probability_under(shape: &Shape, ordering: VariableOrdering, probs: &[f64]) -> f64 {
    let mut b = FaultTreeBuilder::new();
    let events = b.basic_events("e", POOL);
    let top = to_node(shape, &events);
    let ft = b
        .build_with_ordering(top, ordering)
        .expect("random tree compiles");
    ft.top_event_probability(probs)
        .expect("valid probabilities")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sifting_preserves_top_event_probability(
        shape in shape_strategy(),
        probs in vec(0.01f64..0.3, POOL..=POOL),
    ) {
        let reference = probability_under(&shape, VariableOrdering::Declaration, &probs);
        for ordering in [
            VariableOrdering::DepthFirst,
            VariableOrdering::Weighted,
            VariableOrdering::Sifted,
        ] {
            let q = probability_under(&shape, ordering, &probs);
            prop_assert!(
                (q - reference).abs() <= 1e-12,
                "{ordering:?} disagrees with declaration order: {q:.17e} vs {reference:.17e}"
            );
        }
    }
}
