//! Property tests: the BDD kernel's compacting GC and work-partitioned
//! parallel apply must both be invisible to every measure.
//!
//! Random fault trees (nested AND/OR/k-of-n gates over a shared event
//! pool) are compiled under aggressive GC (compacting every few nodes)
//! and with GC disabled: the reduced BDD is canonical, so the node
//! count and the top-event probability *bits* must match. The same
//! trees are then rebuilt on the raw kernel with the parallel apply
//! forced on at 1, 2, 4, and 8 workers — provisional worker ids are
//! erased by the sequential reduction, so every jobs count must again
//! agree bitwise. A mismatch in either test means internal plumbing
//! (node relocation or thread scheduling) leaked into results.

use proptest::collection::vec;
use proptest::prelude::*;
use reliab_bdd::{Bdd, BddConfig, NodeId};
use reliab_ftree::{CompileOptions, EventId, FaultTreeBuilder, FtNode, VariableOrdering};

/// Builder-independent gate structure over an event-pool index space.
#[derive(Debug, Clone)]
enum Shape {
    Leaf(usize),
    Or(Vec<Shape>),
    And(Vec<Shape>),
    KOfN(Vec<Shape>),
}

const POOL: usize = 24;

fn shape_strategy() -> BoxedStrategy<Shape> {
    (0usize..POOL)
        .prop_map(Shape::Leaf)
        .prop_recursive(3, 64, 4, |inner| {
            prop_oneof![
                vec(inner.clone(), 2..=4).prop_map(Shape::Or),
                vec(inner.clone(), 2..=4).prop_map(Shape::And),
                vec(inner, 3..=5).prop_map(Shape::KOfN),
            ]
        })
}

fn to_node(shape: &Shape, events: &[EventId]) -> FtNode {
    match shape {
        Shape::Leaf(i) => FtNode::Basic(events[*i % events.len()]),
        Shape::Or(xs) => FtNode::or(xs.iter().map(|s| to_node(s, events)).collect()),
        Shape::And(xs) => FtNode::and(xs.iter().map(|s| to_node(s, events)).collect()),
        Shape::KOfN(xs) => FtNode::k_of_n(2, xs.iter().map(|s| to_node(s, events)).collect()),
    }
}

/// Compiles `shape` at ftree level and returns (probability, bdd size).
fn compile_under(shape: &Shape, options: &CompileOptions, probs: &[f64]) -> (f64, usize) {
    let mut b = FaultTreeBuilder::new();
    let events = b.basic_events("e", POOL);
    let top = to_node(shape, &events);
    let ft = b.build_with(top, options).expect("random tree compiles");
    let q = ft
        .top_event_probability(probs)
        .expect("valid probabilities");
    (q, ft.bdd_size())
}

/// Builds `shape` directly on a raw kernel (no ftree compile loop), so
/// the parallel-apply threshold can be forced to cover every call.
fn build_raw(bdd: &mut Bdd, shape: &Shape) -> NodeId {
    match shape {
        Shape::Leaf(i) => bdd.var((*i % POOL) as u32).expect("var in range"),
        Shape::Or(xs) => {
            let nodes: Vec<NodeId> = xs.iter().map(|s| build_raw(bdd, s)).collect();
            bdd.or_all(nodes)
        }
        Shape::And(xs) => {
            let nodes: Vec<NodeId> = xs.iter().map(|s| build_raw(bdd, s)).collect();
            nodes
                .into_iter()
                .reduce(|a, b| bdd.and(a, b))
                .expect("non-empty gate")
        }
        Shape::KOfN(xs) => {
            let nodes: Vec<NodeId> = xs.iter().map(|s| build_raw(bdd, s)).collect();
            bdd.at_least_k(&nodes, 2)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compacting GC relocates every live node and rewrites the unique
    /// table, yet the canonical graph — and therefore the probability
    /// bits and node count — must be exactly what a GC-free build
    /// produces.
    #[test]
    fn compaction_is_invisible(
        shape in shape_strategy(),
        probs in vec(0.01f64..0.3, POOL..=POOL),
    ) {
        let never = CompileOptions::new()
            .with_ordering(VariableOrdering::Declaration)
            .with_gc_node_threshold(usize::MAX);
        let (q_ref, size_ref) = compile_under(&shape, &never, &probs);
        let aggressive = CompileOptions::new()
            .with_ordering(VariableOrdering::Declaration)
            .with_gc_node_threshold(16);
        let (q_gc, size_gc) = compile_under(&shape, &aggressive, &probs);
        prop_assert_eq!(
            q_ref.to_bits(), q_gc.to_bits(),
            "compaction changed probability: {:.17e} vs {:.17e}", q_ref, q_gc
        );
        prop_assert_eq!(size_ref, size_gc, "compaction changed the reduced node count");
    }

    /// The work-partitioned apply must be bitwise-deterministic at any
    /// worker count. `par_node_threshold = 1` forces the parallel path
    /// onto every eligible call, far past where the production
    /// threshold would dispatch.
    #[test]
    fn parallel_apply_is_bitwise_deterministic(
        shape in shape_strategy(),
        probs in vec(0.01f64..0.3, POOL..=POOL),
    ) {
        let mut reference: Option<(u64, usize)> = None;
        for jobs in [1usize, 2, 4, 8] {
            let mut cfg = BddConfig::new();
            cfg.jobs = jobs;
            cfg.par_node_threshold = 1;
            let mut bdd = Bdd::new_with(POOL as u32, cfg);
            let f = build_raw(&mut bdd, &shape);
            let q = bdd.probability(f, &probs).expect("valid probabilities");
            let size = bdd.node_count(f);
            match reference {
                None => reference = Some((q.to_bits(), size)),
                Some((q_bits, size_ref)) => {
                    prop_assert_eq!(
                        q_bits, q.to_bits(),
                        "jobs={} disagrees with jobs=1: {:.17e}", jobs, q
                    );
                    prop_assert_eq!(size_ref, size, "jobs={} changed the node count", jobs);
                }
            }
        }
    }

    /// Same determinism holds through the ftree compile loop, where the
    /// production dispatch threshold and GC safe points interleave.
    #[test]
    fn ftree_bdd_jobs_is_bitwise_deterministic(
        shape in shape_strategy(),
        probs in vec(0.01f64..0.3, POOL..=POOL),
    ) {
        let base = CompileOptions::new().with_ordering(VariableOrdering::Declaration);
        let (q_ref, size_ref) = compile_under(&shape, &base, &probs);
        for jobs in [0usize, 2, 4, 8] {
            let opts = CompileOptions::new()
                .with_ordering(VariableOrdering::Declaration)
                .with_bdd_jobs(jobs);
            let (q, size) = compile_under(&shape, &opts, &probs);
            prop_assert_eq!(
                q_ref.to_bits(), q.to_bits(),
                "bdd_jobs={} disagrees: {:.17e} vs {:.17e}", jobs, q, q_ref
            );
            prop_assert_eq!(size_ref, size, "bdd_jobs={} changed the node count", jobs);
        }
    }
}
