//! Minimal cut-set extraction (bottom-up MOCUS with absorption).

use crate::tree::{EventId, FtNode};
use reliab_core::fxhash::FxHashSet;
use reliab_core::{Error, Result};
use std::collections::BTreeSet;

/// A minimal cut set: a minimal set of basic events whose joint failure
/// causes the top event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CutSet {
    events: Vec<EventId>,
}

impl CutSet {
    /// Wraps a sorted event list (internal constructor shared with the
    /// BDD route).
    pub(crate) fn from_events(events: Vec<EventId>) -> CutSet {
        CutSet { events }
    }

    /// The events in this cut set, sorted by id.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Cut-set order (cardinality).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the cut set is empty (never true for valid trees).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether this cut set contains the event.
    pub fn contains(&self, e: EventId) -> bool {
        self.events.binary_search(&e).is_ok()
    }
}

type SetOfSets = Vec<BTreeSet<usize>>;

/// Computes the minimal cut sets of a coherent fault tree.
///
/// `max_sets` bounds the number of intermediate sets during expansion;
/// k-of-n gates expand to the OR of all `C(n, k)` AND combinations, so
/// the guard matters for wide voting gates.
///
/// # Errors
///
/// Returns [`Error::Model`] if the expansion exceeds `max_sets`.
pub(crate) fn minimal_cut_sets_of(top: &FtNode, max_sets: usize) -> Result<Vec<CutSet>> {
    let sets = expand(top, max_sets)?;
    let minimal = minimize(sets);
    let mut out: Vec<CutSet> = minimal
        .into_iter()
        .map(|s| CutSet {
            events: s.into_iter().map(EventId).collect(),
        })
        .collect();
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.events.cmp(&b.events)));
    Ok(out)
}

fn expand(node: &FtNode, max_sets: usize) -> Result<SetOfSets> {
    let sets = match node {
        FtNode::Basic(e) => vec![BTreeSet::from([e.index()])],
        FtNode::Or(inputs) => {
            let mut acc: SetOfSets = Vec::new();
            for i in inputs {
                acc.extend(expand(i, max_sets)?);
                guard(acc.len(), max_sets)?;
            }
            acc
        }
        FtNode::And(inputs) => {
            let mut acc: SetOfSets = vec![BTreeSet::new()];
            for i in inputs {
                let rhs = expand(i, max_sets)?;
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for r in &rhs {
                        let mut u = a.clone();
                        u.extend(r.iter().copied());
                        next.push(u);
                    }
                }
                guard(next.len(), max_sets)?;
                acc = next;
            }
            acc
        }
        FtNode::KOfN { k, inputs } => {
            // OR over all size-k combinations of ANDs.
            let mut acc: SetOfSets = Vec::new();
            for combo in combinations(inputs.len(), *k) {
                let mut cur: SetOfSets = vec![BTreeSet::new()];
                for &idx in &combo {
                    let rhs = expand(&inputs[idx], max_sets)?;
                    let mut next = Vec::with_capacity(cur.len() * rhs.len());
                    for a in &cur {
                        for r in &rhs {
                            let mut u = a.clone();
                            u.extend(r.iter().copied());
                            next.push(u);
                        }
                    }
                    guard(next.len(), max_sets)?;
                    cur = next;
                }
                acc.extend(cur);
                guard(acc.len(), max_sets)?;
            }
            acc
        }
    };
    Ok(sets)
}

/// All size-`k` subsets of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        let remaining = k - cur.len();
        for i in start..=(n - remaining) {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    if k <= n {
        rec(0, n, k, &mut cur, &mut out);
    }
    out
}

fn guard(len: usize, max_sets: usize) -> Result<()> {
    if len > max_sets {
        Err(Error::model(format!(
            "cut-set expansion exceeded {max_sets} sets; use BDD probability or bounds instead"
        )))
    } else {
        Ok(())
    }
}

/// Removes non-minimal (superset) cut sets.
fn minimize(sets: SetOfSets) -> SetOfSets {
    // Hash-based dedup (FxHash — this runs on every MOCUS expansion):
    // catches *all* duplicates, where the former sort-then-`dedup`
    // only removed adjacent ones.
    let mut seen: FxHashSet<BTreeSet<usize>> = FxHashSet::default();
    let mut sets: SetOfSets = sets
        .into_iter()
        .filter(|s| seen.insert(s.clone()))
        .collect();
    sets.sort_by_key(|s| s.len());
    let mut kept: SetOfSets = Vec::new();
    'outer: for s in sets {
        for k in &kept {
            if k.is_subset(&s) {
                continue 'outer;
            }
        }
        kept.push(s);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;

    #[test]
    fn simple_or_and() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let c = b.basic_event("c");
        let d = b.basic_event("d");
        // top = a OR (c AND d)
        let top = FtNode::or(vec![a.into(), FtNode::and_of(&[c, d])]);
        let cuts = minimal_cut_sets_of(&top, 1000).unwrap();
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].events(), &[a]);
        assert_eq!(cuts[1].events(), &[c, d]);
        assert!(cuts[1].contains(c));
        assert!(!cuts[1].contains(a));
    }

    #[test]
    fn absorption_removes_supersets() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let c = b.basic_event("c");
        // top = a OR (a AND c): {a} absorbs {a, c}.
        let top = FtNode::or(vec![a.into(), FtNode::and_of(&[a, c])]);
        let cuts = minimal_cut_sets_of(&top, 1000).unwrap();
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].events(), &[a]);
    }

    #[test]
    fn k_of_n_expands_to_combinations() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 4);
        let top = FtNode::k_of_n(3, e.iter().map(|&x| x.into()).collect());
        let cuts = minimal_cut_sets_of(&top, 1000).unwrap();
        assert_eq!(cuts.len(), 4); // C(4,3)
        assert!(cuts.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn repeated_event_through_kofn_minimizes() {
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let c = b.basic_event("c");
        // 2-of-(a, a, c): combinations {a,a}={a}, {a,c}, {a,c} => minimal {a}.
        let top = FtNode::k_of_n(2, vec![a.into(), a.into(), c.into()]);
        let cuts = minimal_cut_sets_of(&top, 1000).unwrap();
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].events(), &[a]);
    }

    #[test]
    fn blowup_guard_trips() {
        let mut b = FaultTreeBuilder::new();
        // AND of 5 ORs of 4 events each: 4^5 = 1024 sets before
        // minimization.
        let groups: Vec<FtNode> = (0..5)
            .map(|g| FtNode::or_of(&b.basic_events(&format!("g{g}"), 4)))
            .collect();
        let top = FtNode::and(groups);
        assert!(minimal_cut_sets_of(&top, 100).is_err());
        assert!(minimal_cut_sets_of(&top, 2000).is_ok());
    }
}
