//! # reliab-ftree
//!
//! Fault-tree analysis: the failure-space dual of block diagrams and
//! the workhorse of the tutorial's non-state-space section. Basic
//! events (component failures) combine through AND/OR/k-of-n gates up
//! to the *top event* (system failure). Repeated basic events are fully
//! supported: the tree compiles to a BDD, so the top-event probability
//! is exact, not a rare-event approximation.
//!
//! Provided analyses:
//!
//! * exact top-event probability and time-dependent unreliability,
//! * minimal cut sets (bottom-up MOCUS with absorption),
//! * Birnbaum / criticality / Fussell–Vesely importance,
//! * rare-event and min-cut upper bounds for cross-checking the exact
//!   value (the quantities the `reliab-bounds` crate scales up),
//! * variable-ordering control for BDD-size ablations.
//!
//! ```
//! use reliab_ftree::{FaultTreeBuilder, FtNode};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let mut b = FaultTreeBuilder::new();
//! let power = b.basic_event("power-fails");
//! let cpu1 = b.basic_event("cpu1-fails");
//! let cpu2 = b.basic_event("cpu2-fails");
//! // System fails if power fails, or both CPUs fail.
//! let top = FtNode::or(vec![power.into(), FtNode::and(vec![cpu1.into(), cpu2.into()])]);
//! let ft = b.build(top)?;
//! let q = ft.top_event_probability(&[0.01, 0.1, 0.1])?;
//! assert!((q - (1.0 - 0.99 * (1.0 - 0.01f64))).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod ccf;
mod cutsets;
mod tree;

pub use ccf::CcfGroup;
pub use cutsets::CutSet;
pub use tree::{CompileOptions, EventId, FaultTree, FaultTreeBuilder, FtNode, VariableOrdering};

use reliab_core::Error;

/// Converts a BDD-layer error into the workspace error type.
pub(crate) fn bdd_err(e: reliab_bdd::BddError) -> Error {
    Error::model(e.to_string())
}
