//! Fault-tree structure, compilation, and probabilistic analyses.

use crate::bdd_err;
use crate::cutsets::{minimal_cut_sets_of, CutSet};
use reliab_bdd::{Bdd, NodeId};
use reliab_core::{ensure_probability, Error, ImportanceMeasures, Result};
use reliab_dist::Lifetime;
use reliab_obs as obs;

/// Handle to a basic event, returned by [`FaultTreeBuilder::basic_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) usize);

impl EventId {
    /// Index into probability/lifetime vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A fault-tree gate/event expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtNode {
    /// A basic event (component failure).
    Basic(EventId),
    /// OR gate: output fails if any input fails.
    Or(Vec<FtNode>),
    /// AND gate: output fails if all inputs fail.
    And(Vec<FtNode>),
    /// Voting gate: output fails if at least `k` inputs fail.
    KOfN {
        /// Failure threshold.
        k: usize,
        /// Gate inputs.
        inputs: Vec<FtNode>,
    },
}

impl FtNode {
    /// OR gate.
    pub fn or(inputs: Vec<FtNode>) -> FtNode {
        FtNode::Or(inputs)
    }

    /// AND gate.
    pub fn and(inputs: Vec<FtNode>) -> FtNode {
        FtNode::And(inputs)
    }

    /// k-of-n voting gate.
    pub fn k_of_n(k: usize, inputs: Vec<FtNode>) -> FtNode {
        FtNode::KOfN { k, inputs }
    }

    /// OR over bare events.
    pub fn or_of(events: &[EventId]) -> FtNode {
        FtNode::Or(events.iter().map(|&e| FtNode::Basic(e)).collect())
    }

    /// AND over bare events.
    pub fn and_of(events: &[EventId]) -> FtNode {
        FtNode::And(events.iter().map(|&e| FtNode::Basic(e)).collect())
    }
}

impl From<EventId> for FtNode {
    fn from(e: EventId) -> FtNode {
        FtNode::Basic(e)
    }
}

/// How basic events are mapped to BDD variable levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariableOrdering {
    /// Events keep the order they were declared in.
    #[default]
    Declaration,
    /// Events are ordered by first appearance in a depth-first
    /// traversal of the tree — the classic structural heuristic, which
    /// keeps related events adjacent and typically shrinks the BDD.
    DepthFirst,
}

/// Builder for [`FaultTree`] models.
#[derive(Debug, Default)]
pub struct FaultTreeBuilder {
    names: Vec<String>,
}

impl FaultTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FaultTreeBuilder::default()
    }

    /// Declares a basic event.
    pub fn basic_event(&mut self, name: &str) -> EventId {
        self.names.push(name.to_owned());
        EventId(self.names.len() - 1)
    }

    /// Declares `n` basic events named `prefix-0 .. prefix-(n-1)`.
    pub fn basic_events(&mut self, prefix: &str, n: usize) -> Vec<EventId> {
        (0..n)
            .map(|i| self.basic_event(&format!("{prefix}-{i}")))
            .collect()
    }

    /// Compiles the tree with the default (declaration) ordering.
    ///
    /// # Errors
    ///
    /// See [`FaultTreeBuilder::build_with_ordering`].
    pub fn build(self, top: FtNode) -> Result<FaultTree> {
        self.build_with_ordering(top, VariableOrdering::Declaration)
    }

    /// Compiles the tree into an evaluable [`FaultTree`] using the given
    /// BDD variable ordering.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for an empty tree, empty gates, k-of-n
    /// thresholds out of range, or foreign event handles.
    pub fn build_with_ordering(self, top: FtNode, ordering: VariableOrdering) -> Result<FaultTree> {
        let n = self.names.len();
        if n == 0 {
            return Err(Error::model("fault tree has no basic events"));
        }
        // event_to_var[e] = BDD level of event e.
        let event_to_var: Vec<u32> = match ordering {
            VariableOrdering::Declaration => (0..n as u32).collect(),
            VariableOrdering::DepthFirst => {
                let mut order = Vec::new();
                let mut seen = vec![false; n];
                dfs_order(&top, &mut order, &mut seen, n)?;
                // Events never referenced go to the end, in declaration
                // order.
                order.extend((0..n).filter(|&e| !seen[e]));
                let mut map = vec![0u32; n];
                for (level, &e) in order.iter().enumerate() {
                    map[e] = level as u32;
                }
                map
            }
        };
        let _span = obs::span("ftree.compile_bdd");
        let mut bdd = Bdd::new(n as u32);
        let fails = compile(&mut bdd, &top, &event_to_var)?;
        bdd.record_observability();
        obs::counter_add("ftree.compiles", 1);
        Ok(FaultTree {
            names: self.names,
            bdd,
            fails,
            event_to_var,
            top,
        })
    }
}

fn dfs_order(node: &FtNode, order: &mut Vec<usize>, seen: &mut [bool], n: usize) -> Result<()> {
    match node {
        FtNode::Basic(e) => {
            if e.0 >= n {
                return Err(Error::model(format!(
                    "event handle {} out of range ({n} events declared)",
                    e.0
                )));
            }
            if !seen[e.0] {
                seen[e.0] = true;
                order.push(e.0);
            }
            Ok(())
        }
        FtNode::Or(inputs) | FtNode::And(inputs) | FtNode::KOfN { inputs, .. } => {
            for i in inputs {
                dfs_order(i, order, seen, n)?;
            }
            Ok(())
        }
    }
}

fn compile(bdd: &mut Bdd, node: &FtNode, event_to_var: &[u32]) -> Result<NodeId> {
    match node {
        FtNode::Basic(e) => {
            if e.0 >= event_to_var.len() {
                return Err(Error::model(format!(
                    "event handle {} out of range ({} events declared)",
                    e.0,
                    event_to_var.len()
                )));
            }
            bdd.var(event_to_var[e.0]).map_err(bdd_err)
        }
        FtNode::Or(inputs) => {
            if inputs.is_empty() {
                return Err(Error::model("empty OR gate"));
            }
            let mut acc = NodeId::FALSE;
            for i in inputs {
                let x = compile(bdd, i, event_to_var)?;
                acc = bdd.or(acc, x);
            }
            Ok(acc)
        }
        FtNode::And(inputs) => {
            if inputs.is_empty() {
                return Err(Error::model("empty AND gate"));
            }
            let mut acc = NodeId::TRUE;
            for i in inputs {
                let x = compile(bdd, i, event_to_var)?;
                acc = bdd.and(acc, x);
            }
            Ok(acc)
        }
        FtNode::KOfN { k, inputs } => {
            if inputs.is_empty() {
                return Err(Error::model("empty k-of-n gate"));
            }
            if *k == 0 || *k > inputs.len() {
                return Err(Error::model(format!(
                    "k-of-n gate with k = {k} outside 1..={}",
                    inputs.len()
                )));
            }
            let xs: Vec<NodeId> = inputs
                .iter()
                .map(|i| compile(bdd, i, event_to_var))
                .collect::<Result<_>>()?;
            Ok(bdd.at_least_k(&xs, *k))
        }
    }
}

/// A compiled fault tree.
#[derive(Debug)]
pub struct FaultTree {
    names: Vec<String>,
    bdd: Bdd,
    fails: NodeId,
    event_to_var: Vec<u32>,
    top: FtNode,
}

impl FaultTree {
    /// Number of basic events.
    pub fn num_events(&self) -> usize {
        self.names.len()
    }

    /// Name of a basic event.
    pub fn event_name(&self, e: EventId) -> &str {
        &self.names[e.0]
    }

    /// Size (node count) of the compiled BDD — compare across
    /// [`VariableOrdering`] choices.
    pub fn bdd_size(&self) -> usize {
        self.bdd.node_count(self.fails)
    }

    /// Table sizes and cache counters of the underlying BDD manager.
    pub fn bdd_stats(&self) -> reliab_bdd::BddStats {
        self.bdd.stats()
    }

    /// Exact top-event probability given each basic event's failure
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a length mismatch or
    /// probabilities outside `[0, 1]`.
    pub fn top_event_probability(&self, event_probs: &[f64]) -> Result<f64> {
        let _span = obs::span("ftree.probability");
        let p = self.permuted(event_probs)?;
        let q = self.bdd.probability(self.fails, &p).map_err(bdd_err)?;
        self.bdd.record_observability();
        Ok(q)
    }

    /// Time-dependent unreliability: top-event probability with
    /// `q_i = F_i(t)` from each event's lifetime distribution.
    ///
    /// # Errors
    ///
    /// Propagates distribution and evaluation errors.
    pub fn unreliability(&self, lifetimes: &[&dyn Lifetime], t: f64) -> Result<f64> {
        if lifetimes.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} lifetimes supplied for {} events",
                lifetimes.len(),
                self.names.len()
            )));
        }
        let probs: Vec<f64> = lifetimes.iter().map(|d| d.cdf(t)).collect::<Result<_>>()?;
        self.top_event_probability(&probs)
    }

    /// Minimal cut sets of the tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if the expansion exceeds `max_sets`
    /// intermediate sets (combinatorial blow-up guard) — fall back to
    /// the BDD probability or the bounding crate in that case.
    pub fn minimal_cut_sets(&self, max_sets: usize) -> Result<Vec<CutSet>> {
        let _span = obs::span("ftree.cutsets.mocus");
        let cuts = minimal_cut_sets_of(&self.top, max_sets)?;
        obs::event(
            "ftree.cutsets",
            &[("algorithm", "mocus".into()), ("count", cuts.len().into())],
        );
        obs::counter_add("ftree.cutsets.enumerations", 1);
        Ok(cuts)
    }

    /// Minimal cut sets computed from the compiled BDD (Rauzy's
    /// minimal-solutions algorithm) instead of top-down expansion.
    ///
    /// Equivalent result to [`FaultTree::minimal_cut_sets`], but the
    /// cost is governed by the BDD size rather than the intermediate
    /// product terms — use this when MOCUS trips its blow-up guard
    /// (e.g. wide k-of-n gates over AND/OR subtrees).
    pub fn minimal_cut_sets_bdd(&self) -> Vec<CutSet> {
        let _span = obs::span("ftree.cutsets.bdd");
        // Invert the event→variable map.
        let mut var_to_event = vec![0usize; self.event_to_var.len()];
        for (e, &v) in self.event_to_var.iter().enumerate() {
            var_to_event[v as usize] = e;
        }
        let mut cuts: Vec<Vec<EventId>> = self
            .bdd
            .minimal_solutions(self.fails)
            .into_iter()
            .map(|s| {
                let mut events: Vec<EventId> = s
                    .into_iter()
                    .map(|v| EventId(var_to_event[v as usize]))
                    .collect();
                events.sort();
                events
            })
            .collect();
        cuts.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        obs::event(
            "ftree.cutsets",
            &[("algorithm", "bdd".into()), ("count", cuts.len().into())],
        );
        obs::counter_add("ftree.cutsets.enumerations", 1);
        cuts.into_iter().map(CutSet::from_events).collect()
    }

    /// Importance measures for every basic event.
    ///
    /// * Birnbaum: `∂Q_top/∂q_i`.
    /// * Criticality: `Birnbaum_i · q_i / Q_top`.
    /// * Fussell–Vesely: `1 − Q_top(q_i := 0) / Q_top` (the exact
    ///   fractional-contribution form).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if the top event has probability zero.
    pub fn importance(&mut self, event_probs: &[f64]) -> Result<Vec<ImportanceMeasures>> {
        let _span = obs::span("ftree.importance");
        let p = self.permuted(event_probs)?;
        let q_top = self.bdd.probability(self.fails, &p).map_err(bdd_err)?;
        if q_top <= 0.0 {
            return Err(Error::model(
                "top-event probability is zero; importance measures undefined",
            ));
        }
        let birnbaum_by_var = self.bdd.birnbaum(self.fails, &p).map_err(bdd_err)?;
        let mut out = Vec::with_capacity(self.names.len());
        for (e, name) in self.names.iter().enumerate() {
            let var = self.event_to_var[e] as usize;
            let mut perfect = p.clone();
            perfect[var] = 0.0;
            let q_perfect = self
                .bdd
                .probability(self.fails, &perfect)
                .map_err(bdd_err)?;
            out.push(ImportanceMeasures {
                component: name.clone(),
                birnbaum: birnbaum_by_var[var],
                criticality: birnbaum_by_var[var] * event_probs[e] / q_top,
                fussell_vesely: 1.0 - q_perfect / q_top,
            });
        }
        Ok(out)
    }

    /// Rare-event upper bound `Σ_C Π_{i∈C} q_i` over the minimal cut
    /// sets, alongside the exact probability — the pair the tutorial
    /// uses to show when the approximation is safe.
    ///
    /// # Errors
    ///
    /// Propagates cut-set enumeration and evaluation errors.
    pub fn rare_event_bound(&self, event_probs: &[f64], max_sets: usize) -> Result<f64> {
        self.check_probs(event_probs)?;
        let cuts = self.minimal_cut_sets(max_sets)?;
        Ok(cuts
            .iter()
            .map(|c| c.events().iter().map(|e| event_probs[e.0]).product::<f64>())
            .sum())
    }

    fn check_probs(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} probabilities supplied for {} events",
                p.len(),
                self.names.len()
            )));
        }
        for (i, &v) in p.iter().enumerate() {
            ensure_probability(v, &format!("failure probability of '{}'", self.names[i]))?;
        }
        Ok(())
    }

    /// Reorders an event-indexed vector into BDD-variable order.
    fn permuted(&self, event_probs: &[f64]) -> Result<Vec<f64>> {
        self.check_probs(event_probs)?;
        let mut p = vec![0.0; event_probs.len()];
        for (e, &v) in event_probs.iter().enumerate() {
            p[self.event_to_var[e] as usize] = v;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Exponential, Lifetime};

    fn multiproc() -> (FaultTreeBuilder, FtNode, Vec<EventId>) {
        // Tutorial multiprocessor: 2 processors, 3 memories, bus.
        // Fails if: both processors fail, OR >= 2 of 3 memories fail,
        // OR the bus fails.
        let mut b = FaultTreeBuilder::new();
        let p = b.basic_events("proc", 2);
        let m = b.basic_events("mem", 3);
        let bus = b.basic_event("bus");
        let top = FtNode::or(vec![
            FtNode::and_of(&p),
            FtNode::k_of_n(2, m.iter().map(|&e| e.into()).collect()),
            bus.into(),
        ]);
        let mut all = p;
        all.extend(m);
        all.push(bus);
        (b, top, all)
    }

    #[test]
    fn or_and_probabilities() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::or_of(&e)).unwrap();
        assert!((ft.top_event_probability(&[0.1, 0.2]).unwrap() - 0.28).abs() < 1e-15);

        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::and_of(&e)).unwrap();
        assert!((ft.top_event_probability(&[0.1, 0.2]).unwrap() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn multiprocessor_probability() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let p_proc = 0.01f64 * 0.01;
        let p_mem = 3.0 * 0.05f64 * 0.05 * 0.95 + 0.05f64.powi(3);
        let p_bus = 0.001;
        let expected = 1.0 - (1.0 - p_proc) * (1.0 - p_mem) * (1.0 - p_bus);
        assert!((ft.top_event_probability(&q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn repeated_events_exact() {
        // top = (a AND b) OR (a AND c): shared event a.
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let b2 = b.basic_event("b");
        let c = b.basic_event("c");
        let top = FtNode::or(vec![FtNode::and_of(&[a, b2]), FtNode::and_of(&[a, c])]);
        let ft = b.build(top).unwrap();
        let q = ft.top_event_probability(&[0.5, 0.5, 0.5]).unwrap();
        assert!((q - 0.375).abs() < 1e-15);
    }

    #[test]
    fn cut_sets_of_multiprocessor() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let cuts = ft.minimal_cut_sets(10_000).unwrap();
        // {p0,p1}, {m0,m1}, {m0,m2}, {m1,m2}, {bus}
        assert_eq!(cuts.len(), 5);
        let sizes: Vec<usize> = cuts.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 4);
    }

    #[test]
    fn rare_event_bound_is_upper_bound() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let exact = ft.top_event_probability(&q).unwrap();
        let bound = ft.rare_event_bound(&q, 10_000).unwrap();
        assert!(bound >= exact);
        assert!(
            bound - exact < 0.01,
            "bound should be tight for rare events"
        );
    }

    #[test]
    fn dfs_ordering_shrinks_or_matches_bdd() {
        // Interleaved structure where declaration order is bad:
        // declare a0 b0 a1 b1..., tree pairs (a_i AND b_i) OR ...
        let mut b1 = FaultTreeBuilder::new();
        let n = 6;
        let a: Vec<EventId> = (0..n).map(|i| b1.basic_event(&format!("a{i}"))).collect();
        let bb: Vec<EventId> = (0..n).map(|i| b1.basic_event(&format!("b{i}"))).collect();
        let top = FtNode::or(
            (0..n)
                .map(|i| FtNode::and_of(&[a[i], bb[i]]))
                .collect::<Vec<_>>(),
        );
        let decl = b1.build_with_ordering(top.clone(), VariableOrdering::Declaration);
        // Redeclare in the same way for the DFS build.
        let mut b2 = FaultTreeBuilder::new();
        let _a2: Vec<EventId> = (0..n).map(|i| b2.basic_event(&format!("a{i}"))).collect();
        let _b2: Vec<EventId> = (0..n).map(|i| b2.basic_event(&format!("b{i}"))).collect();
        let dfs = b2.build_with_ordering(top, VariableOrdering::DepthFirst);
        let (decl, dfs) = (decl.unwrap(), dfs.unwrap());
        assert!(dfs.bdd_size() <= decl.bdd_size());
        // And both give the same probability.
        let q = vec![0.1; 2 * n];
        assert!(
            (decl.top_event_probability(&q).unwrap() - dfs.top_event_probability(&q).unwrap())
                .abs()
                < 1e-14
        );
    }

    #[test]
    fn bdd_cut_sets_match_mocus() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let mocus = ft.minimal_cut_sets(10_000).unwrap();
        let bdd = ft.minimal_cut_sets_bdd();
        assert_eq!(mocus, bdd);
    }

    #[test]
    fn bdd_cut_sets_match_mocus_with_dfs_ordering() {
        // The BDD route must translate variables back to events even
        // under a permuted ordering.
        let (b, top, _) = multiproc();
        let ft = b
            .build_with_ordering(top, VariableOrdering::DepthFirst)
            .unwrap();
        let bdd = ft.minimal_cut_sets_bdd();
        let mocus = ft.minimal_cut_sets(10_000).unwrap();
        assert_eq!(mocus, bdd);
    }

    #[test]
    fn bdd_cut_sets_survive_mocus_blowup() {
        // AND of 6 ORs of 4 events: MOCUS generates 4^6 = 4096
        // intermediate sets; the BDD route handles it regardless.
        let mut b = FaultTreeBuilder::new();
        let groups: Vec<FtNode> = (0..6)
            .map(|g| FtNode::or_of(&b.basic_events(&format!("g{g}"), 4)))
            .collect();
        let ft = b.build(FtNode::and(groups)).unwrap();
        assert!(ft.minimal_cut_sets(1000).is_err());
        let cuts = ft.minimal_cut_sets_bdd();
        assert_eq!(cuts.len(), 4096);
        assert!(cuts.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn unreliability_with_lifetimes() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::and_of(&e)).unwrap();
        let d = Exponential::new(1.0).unwrap();
        let lifetimes: Vec<&dyn Lifetime> = vec![&d, &d];
        let t = 1.0;
        let q = ft.unreliability(&lifetimes, t).unwrap();
        let f = 1.0 - (-1.0f64).exp();
        assert!((q - f * f).abs() < 1e-13);
    }

    #[test]
    fn importance_identifies_single_points_of_failure() {
        let (b, top, all) = multiproc();
        let mut ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let imp = ft.importance(&q).unwrap();
        let bus = &imp[all[5].index()];
        // The bus is a single point of failure: highest Birnbaum.
        for other in imp.iter().take(5) {
            assert!(bus.birnbaum > other.birnbaum);
        }
        for m in &imp {
            assert!((0.0..=1.0).contains(&m.fussell_vesely), "{m:?}");
        }
    }

    #[test]
    fn validation_errors() {
        let b = FaultTreeBuilder::new();
        let mut b2 = FaultTreeBuilder::new();
        let e = b2.basic_event("e");
        assert!(b.build(FtNode::Basic(e)).is_err()); // no events declared
        let mut b3 = FaultTreeBuilder::new();
        b3.basic_event("x");
        assert!(b3.build(FtNode::Or(vec![])).is_err());
        let mut b4 = FaultTreeBuilder::new();
        let x = b4.basic_event("x");
        assert!(b4
            .build(FtNode::KOfN {
                k: 0,
                inputs: vec![x.into()]
            })
            .is_err());
    }

    #[test]
    fn probability_validation() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::or_of(&e)).unwrap();
        assert!(ft.top_event_probability(&[0.1]).is_err());
        assert!(ft.top_event_probability(&[0.1, 1.0001]).is_err());
    }
}
