//! Fault-tree structure, compilation, and probabilistic analyses.

use crate::bdd_err;
use crate::cutsets::{minimal_cut_sets_of, CutSet};
use reliab_bdd::{Bdd, NodeId};
use reliab_core::{ensure_probability, Error, ImportanceMeasures, Result};
use reliab_dist::Lifetime;
use reliab_obs as obs;

/// Handle to a basic event, returned by [`FaultTreeBuilder::basic_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) usize);

impl EventId {
    /// Index into probability/lifetime vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A fault-tree gate/event expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtNode {
    /// A basic event (component failure).
    Basic(EventId),
    /// OR gate: output fails if any input fails.
    Or(Vec<FtNode>),
    /// AND gate: output fails if all inputs fail.
    And(Vec<FtNode>),
    /// Voting gate: output fails if at least `k` inputs fail.
    KOfN {
        /// Failure threshold.
        k: usize,
        /// Gate inputs.
        inputs: Vec<FtNode>,
    },
}

impl FtNode {
    /// OR gate.
    pub fn or(inputs: Vec<FtNode>) -> FtNode {
        FtNode::Or(inputs)
    }

    /// AND gate.
    pub fn and(inputs: Vec<FtNode>) -> FtNode {
        FtNode::And(inputs)
    }

    /// k-of-n voting gate.
    pub fn k_of_n(k: usize, inputs: Vec<FtNode>) -> FtNode {
        FtNode::KOfN { k, inputs }
    }

    /// OR over bare events.
    pub fn or_of(events: &[EventId]) -> FtNode {
        FtNode::Or(events.iter().map(|&e| FtNode::Basic(e)).collect())
    }

    /// AND over bare events.
    pub fn and_of(events: &[EventId]) -> FtNode {
        FtNode::And(events.iter().map(|&e| FtNode::Basic(e)).collect())
    }
}

impl From<EventId> for FtNode {
    fn from(e: EventId) -> FtNode {
        FtNode::Basic(e)
    }
}

/// How basic events are mapped to BDD variable levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariableOrdering {
    /// Events keep the order they were declared in.
    #[default]
    Declaration,
    /// Events are ordered by first appearance in a depth-first
    /// traversal of the tree — the classic structural heuristic, which
    /// keeps related events adjacent and typically shrinks the BDD.
    DepthFirst,
    /// Events are ordered by descending structural weight: a unit
    /// weight flows down from the top event, split evenly across gate
    /// inputs, so events close to the top and/or repeated across
    /// subtrees sort first (ties broken by first DFS appearance). The
    /// top-down weight heuristic from the fault-tree BDD literature.
    Weighted,
    /// Compile with the depth-first order, then run dynamic sifting
    /// reordering (Rudell) on the resulting BDD. Most expensive, best
    /// final size — use for large trees that will be queried many
    /// times.
    Sifted,
}

/// Compilation knobs for [`FaultTreeBuilder::build_with`]: variable
/// ordering plus the BDD manager's cache/GC tuning.
///
/// `0` means "kernel default" for the numeric fields, so
/// `CompileOptions::default()` matches [`FaultTreeBuilder::build`]
/// except for the ordering chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CompileOptions {
    /// Variable-ordering strategy.
    pub ordering: VariableOrdering,
    /// Maximum ITE computed-table entries (`0` = kernel default).
    pub ite_cache_capacity: usize,
    /// Live-node threshold for automatic garbage collection
    /// (`0` = kernel default).
    pub gc_node_threshold: usize,
    /// Worker threads for the BDD's partitioned parallel apply:
    /// `1` (default) = sequential, `0` = one per available core,
    /// `n` = exactly `n`. Every setting produces a bitwise-identical
    /// probability — the compiled BDD is canonical regardless.
    pub bdd_jobs: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            ordering: VariableOrdering::default(),
            ite_cache_capacity: 0,
            gc_node_threshold: 0,
            bdd_jobs: 1,
        }
    }
}

impl CompileOptions {
    /// All-defaults options (declaration ordering, sequential apply).
    pub fn new() -> Self {
        CompileOptions::default()
    }

    /// Sets the apply worker count (`1` = sequential, `0` = auto).
    #[must_use]
    pub fn with_bdd_jobs(mut self, jobs: usize) -> Self {
        self.bdd_jobs = jobs;
        self
    }

    /// Sets the ordering strategy.
    #[must_use]
    pub fn with_ordering(mut self, ordering: VariableOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the ITE cache capacity (`0` = kernel default).
    #[must_use]
    pub fn with_ite_cache_capacity(mut self, capacity: usize) -> Self {
        self.ite_cache_capacity = capacity;
        self
    }

    /// Sets the GC live-node threshold (`0` = kernel default).
    #[must_use]
    pub fn with_gc_node_threshold(mut self, threshold: usize) -> Self {
        self.gc_node_threshold = threshold;
        self
    }
}

/// Builder for [`FaultTree`] models.
#[derive(Debug, Default)]
pub struct FaultTreeBuilder {
    names: Vec<String>,
}

impl FaultTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        FaultTreeBuilder::default()
    }

    /// Declares a basic event.
    pub fn basic_event(&mut self, name: &str) -> EventId {
        self.names.push(name.to_owned());
        EventId(self.names.len() - 1)
    }

    /// Declares `n` basic events named `prefix-0 .. prefix-(n-1)`.
    pub fn basic_events(&mut self, prefix: &str, n: usize) -> Vec<EventId> {
        (0..n)
            .map(|i| self.basic_event(&format!("{prefix}-{i}")))
            .collect()
    }

    /// Compiles the tree with the default (declaration) ordering.
    ///
    /// # Errors
    ///
    /// See [`FaultTreeBuilder::build_with_ordering`].
    pub fn build(self, top: FtNode) -> Result<FaultTree> {
        self.build_with_ordering(top, VariableOrdering::Declaration)
    }

    /// Compiles the tree into an evaluable [`FaultTree`] using the given
    /// BDD variable ordering.
    ///
    /// # Errors
    ///
    /// See [`FaultTreeBuilder::build_with`].
    pub fn build_with_ordering(self, top: FtNode, ordering: VariableOrdering) -> Result<FaultTree> {
        self.build_with(top, &CompileOptions::new().with_ordering(ordering))
    }

    /// Compiles the tree into an evaluable [`FaultTree`] with full
    /// control over ordering and BDD cache/GC tuning.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for an empty tree, empty gates, k-of-n
    /// thresholds out of range, or foreign event handles.
    pub fn build_with(self, top: FtNode, options: &CompileOptions) -> Result<FaultTree> {
        let n = self.names.len();
        if n == 0 {
            return Err(Error::model("fault tree has no basic events"));
        }
        if n as u64 > reliab_bdd::MAX_VARS as u64 {
            return Err(Error::model(format!(
                "fault tree has {n} basic events; the BDD kernel's packed \
                 node format supports at most {}",
                reliab_bdd::MAX_VARS
            )));
        }
        // event_to_var[e] = initial BDD level of event e. (Sifting may
        // permute levels afterwards; variable identity is stable.)
        let event_to_var: Vec<u32> = match options.ordering {
            VariableOrdering::Declaration => (0..n as u32).collect(),
            VariableOrdering::DepthFirst | VariableOrdering::Sifted => {
                let mut order = Vec::new();
                let mut seen = vec![false; n];
                dfs_order(&top, &mut order, &mut seen, n)?;
                // Events never referenced go to the end, in declaration
                // order.
                order.extend((0..n).filter(|&e| !seen[e]));
                let mut map = vec![0u32; n];
                for (level, &e) in order.iter().enumerate() {
                    map[e] = level as u32;
                }
                map
            }
            VariableOrdering::Weighted => weight_order(&top, n)?,
        };
        let _span = obs::span("ftree.compile_bdd");
        let mut config = reliab_bdd::BddConfig::new();
        config.ite_cache_capacity = options.ite_cache_capacity;
        config.gc_node_threshold = options.gc_node_threshold;
        config.jobs = if options.bdd_jobs == 0 {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        } else {
            options.bdd_jobs
        };
        let mut bdd = Bdd::new_with(n as u32, config);
        let mut ctx = CompileCtx {
            event_to_var: &event_to_var,
            // Sifted ordering also reorders *during* compilation, at
            // deterministic safe points, so pessimal intermediate
            // explosions are cut down before they peak.
            dynamic_sift: options.ordering == VariableOrdering::Sifted,
            safe_points: 0,
            sift_at: DYNAMIC_SIFT_TRIGGER,
        };
        let mut fails = compile(&mut bdd, &top, &mut ctx)?;
        if options.ordering == VariableOrdering::Sifted {
            let _sift_span = obs::span("ftree.sift");
            // Sifting garbage-collects (compacting), renumbering every
            // node — the returned run carries the root's live id.
            fails = bdd.sift(fails).root;
        }
        // Pin the top-event function so manager-level GC (explicit or
        // threshold-triggered) can never reclaim it.
        let fails_guard = bdd.protect(fails);
        bdd.record_observability();
        obs::counter_add("ftree.compiles", 1);
        if obs::trace_enabled() {
            let stats = bdd.stats();
            obs::event(
                "ftree.compiled",
                &[
                    ("live_nodes", (stats.live_nodes as u64).into()),
                    ("peak_live_nodes", (stats.peak_live_nodes as u64).into()),
                    ("gc_runs", stats.gc_runs.into()),
                    ("gc_reclaimed", stats.gc_reclaimed.into()),
                    ("ite_lookups", stats.ite_cache_lookups.into()),
                    ("ite_hits", stats.ite_cache_hits.into()),
                ],
            );
        }
        Ok(FaultTree {
            names: self.names,
            bdd,
            fails,
            event_to_var,
            top,
            _fails_guard: fails_guard,
        })
    }
}

/// Top-down weight heuristic: unit weight at the top, divided evenly
/// among gate inputs; events sort by descending accumulated weight,
/// then by first DFS appearance, then declaration order. Unreferenced
/// events (weight 0) land at the bottom in declaration order.
fn weight_order(top: &FtNode, n: usize) -> Result<Vec<u32>> {
    fn rec(
        node: &FtNode,
        share: f64,
        w: &mut [f64],
        first: &mut [usize],
        counter: &mut usize,
    ) -> Result<()> {
        match node {
            FtNode::Basic(e) => {
                if e.0 >= w.len() {
                    return Err(Error::model(format!(
                        "event handle {} out of range ({} events declared)",
                        e.0,
                        w.len()
                    )));
                }
                w[e.0] += share;
                if first[e.0] == usize::MAX {
                    first[e.0] = *counter;
                    *counter += 1;
                }
                Ok(())
            }
            FtNode::Or(inputs) | FtNode::And(inputs) | FtNode::KOfN { inputs, .. } => {
                // Empty gates are rejected later by `compile`.
                if inputs.is_empty() {
                    return Ok(());
                }
                let child_share = share / inputs.len() as f64;
                for i in inputs {
                    rec(i, child_share, w, first, counter)?;
                }
                Ok(())
            }
        }
    }
    let mut w = vec![0.0f64; n];
    let mut first = vec![usize::MAX; n];
    let mut counter = 0usize;
    rec(top, 1.0, &mut w, &mut first, &mut counter)?;
    let mut events: Vec<usize> = (0..n).collect();
    events.sort_by(|&a, &b| {
        w[b].total_cmp(&w[a])
            .then(first[a].cmp(&first[b]))
            .then(a.cmp(&b))
    });
    let mut map = vec![0u32; n];
    for (level, &e) in events.iter().enumerate() {
        map[e] = level as u32;
    }
    Ok(map)
}

fn dfs_order(node: &FtNode, order: &mut Vec<usize>, seen: &mut [bool], n: usize) -> Result<()> {
    match node {
        FtNode::Basic(e) => {
            if e.0 >= n {
                return Err(Error::model(format!(
                    "event handle {} out of range ({n} events declared)",
                    e.0
                )));
            }
            if !seen[e.0] {
                seen[e.0] = true;
                order.push(e.0);
            }
            Ok(())
        }
        FtNode::Or(inputs) | FtNode::And(inputs) | FtNode::KOfN { inputs, .. } => {
            for i in inputs {
                dfs_order(i, order, seen, n)?;
            }
            Ok(())
        }
    }
}

/// First size at which compile-time sifting considers firing, and the
/// spacing (in safe points) of the deterministic size checks.
const DYNAMIC_SIFT_TRIGGER: usize = 1 << 10;
const DYNAMIC_SIFT_CHECK_INTERVAL: usize = 64;

/// Per-compilation state threaded through the `compile` recursion.
struct CompileCtx<'a> {
    event_to_var: &'a [u32],
    /// Sift at safe points during compilation (Sifted ordering only).
    dynamic_sift: bool,
    /// Safe points passed so far — a *structural* counter (one per
    /// gate-input accumulation), identical for every `bdd_jobs`
    /// setting, which is what keeps dynamic sifting deterministic.
    safe_points: usize,
    /// Live size of the accumulator at which the next sift fires.
    sift_at: usize,
}

/// Compiles `child` while `live` (the caller's in-flight accumulator)
/// is protected, so a garbage collection triggered at a safe point
/// inside the child cannot reclaim it. Every recursion level guards
/// its own accumulator this way, so at any GC the whole stack of
/// partial results is rooted. Collections *compact* (renumbering every
/// node), so the accumulator is returned re-read from its guard
/// alongside the child's result.
fn compile_guarded(
    bdd: &mut Bdd,
    live: NodeId,
    child: &FtNode,
    ctx: &mut CompileCtx<'_>,
) -> Result<(NodeId, NodeId)> {
    let guard = bdd.protect(live);
    let r = compile(bdd, child, ctx);
    let live = bdd.current(&guard);
    bdd.unprotect(guard);
    Ok((live, r?))
}

/// A safe point between gate-input accumulations: `live` is the only
/// intermediate the caller still needs, so protect it, let the manager
/// collect if it has crossed its threshold, and (under the Sifted
/// ordering) periodically reorder when the accumulator has outgrown
/// the last sift.
///
/// Returns the accumulator's possibly renumbered id. The sift trigger
/// reads only canonical state — the structural safe-point counter and
/// the accumulator's reachable node count — never the raw arena
/// population (which differs across `bdd_jobs` settings because the
/// parallel apply leaves less garbage behind), so compile-time
/// reordering fires identically for every worker count.
fn gc_safe_point(bdd: &mut Bdd, live: NodeId, ctx: &mut CompileCtx<'_>) -> NodeId {
    let guard = bdd.protect(live);
    bdd.maybe_gc();
    ctx.safe_points += 1;
    if ctx.dynamic_sift && ctx.safe_points.is_multiple_of(DYNAMIC_SIFT_CHECK_INTERVAL) {
        let root = bdd.current(&guard);
        if bdd.node_count(root) >= ctx.sift_at {
            let _sift_span = obs::span("ftree.sift.dynamic");
            let run = bdd.sift(root);
            // Back off: re-sift only after the tree outgrows the
            // reordered size by 2x (floored at the initial trigger).
            ctx.sift_at = (run.size * 2).max(DYNAMIC_SIFT_TRIGGER);
        }
    }
    let live = bdd.current(&guard);
    bdd.unprotect(guard);
    live
}

fn compile(bdd: &mut Bdd, node: &FtNode, ctx: &mut CompileCtx<'_>) -> Result<NodeId> {
    match node {
        FtNode::Basic(e) => {
            if e.0 >= ctx.event_to_var.len() {
                return Err(Error::model(format!(
                    "event handle {} out of range ({} events declared)",
                    e.0,
                    ctx.event_to_var.len()
                )));
            }
            bdd.var(ctx.event_to_var[e.0]).map_err(bdd_err)
        }
        FtNode::Or(inputs) => {
            if inputs.is_empty() {
                return Err(Error::model("empty OR gate"));
            }
            let mut acc = NodeId::FALSE;
            for i in inputs {
                let (acc_now, x) = compile_guarded(bdd, acc, i, ctx)?;
                acc = bdd.or(acc_now, x);
                acc = gc_safe_point(bdd, acc, ctx);
            }
            Ok(acc)
        }
        FtNode::And(inputs) => {
            if inputs.is_empty() {
                return Err(Error::model("empty AND gate"));
            }
            let mut acc = NodeId::TRUE;
            for i in inputs {
                let (acc_now, x) = compile_guarded(bdd, acc, i, ctx)?;
                acc = bdd.and(acc_now, x);
                acc = gc_safe_point(bdd, acc, ctx);
            }
            Ok(acc)
        }
        FtNode::KOfN { k, inputs } => {
            if inputs.is_empty() {
                return Err(Error::model("empty k-of-n gate"));
            }
            if *k == 0 || *k > inputs.len() {
                return Err(Error::model(format!(
                    "k-of-n gate with k = {k} outside 1..={}",
                    inputs.len()
                )));
            }
            // Every compiled input stays protected until the voting
            // network is built: `at_least_k` needs them all at once.
            // Later inputs may trigger compacting collections, so the
            // ids are read back from the guards at the end.
            let mut guards = Vec::with_capacity(inputs.len());
            let mut compile_all = || -> Result<()> {
                for i in inputs {
                    let x = compile(bdd, i, ctx)?;
                    guards.push(bdd.protect(x));
                }
                Ok(())
            };
            let compiled = compile_all();
            let r = compiled.map(|()| {
                let xs: Vec<NodeId> = guards.iter().map(|g| bdd.current(g)).collect();
                bdd.at_least_k(&xs, *k)
            });
            for g in guards {
                bdd.unprotect(g);
            }
            let r = r?;
            Ok(gc_safe_point(bdd, r, ctx))
        }
    }
}

/// A compiled fault tree.
#[derive(Debug)]
pub struct FaultTree {
    names: Vec<String>,
    bdd: Bdd,
    fails: NodeId,
    event_to_var: Vec<u32>,
    top: FtNode,
    /// GC root pinning `fails` for the life of the tree.
    _fails_guard: reliab_bdd::BddRef,
}

impl FaultTree {
    /// Number of basic events.
    pub fn num_events(&self) -> usize {
        self.names.len()
    }

    /// Name of a basic event.
    pub fn event_name(&self, e: EventId) -> &str {
        &self.names[e.0]
    }

    /// Size (node count) of the compiled BDD — compare across
    /// [`VariableOrdering`] choices.
    pub fn bdd_size(&self) -> usize {
        self.bdd.node_count(self.fails)
    }

    /// Table sizes and cache counters of the underlying BDD manager.
    pub fn bdd_stats(&self) -> reliab_bdd::BddStats {
        self.bdd.stats()
    }

    /// Exact top-event probability given each basic event's failure
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a length mismatch or
    /// probabilities outside `[0, 1]`.
    pub fn top_event_probability(&self, event_probs: &[f64]) -> Result<f64> {
        let _span = obs::span("ftree.probability");
        let p = self.permuted(event_probs)?;
        let q = self.bdd.probability(self.fails, &p).map_err(bdd_err)?;
        self.bdd.record_observability();
        Ok(q)
    }

    /// Time-dependent unreliability: top-event probability with
    /// `q_i = F_i(t)` from each event's lifetime distribution.
    ///
    /// # Errors
    ///
    /// Propagates distribution and evaluation errors.
    pub fn unreliability(&self, lifetimes: &[&dyn Lifetime], t: f64) -> Result<f64> {
        if lifetimes.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} lifetimes supplied for {} events",
                lifetimes.len(),
                self.names.len()
            )));
        }
        let probs: Vec<f64> = lifetimes.iter().map(|d| d.cdf(t)).collect::<Result<_>>()?;
        self.top_event_probability(&probs)
    }

    /// Minimal cut sets of the tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if the expansion exceeds `max_sets`
    /// intermediate sets (combinatorial blow-up guard) — fall back to
    /// the BDD probability or the bounding crate in that case.
    pub fn minimal_cut_sets(&self, max_sets: usize) -> Result<Vec<CutSet>> {
        let _span = obs::span("ftree.cutsets.mocus");
        let cuts = minimal_cut_sets_of(&self.top, max_sets)?;
        obs::event(
            "ftree.cutsets",
            &[("algorithm", "mocus".into()), ("count", cuts.len().into())],
        );
        obs::counter_add("ftree.cutsets.enumerations", 1);
        Ok(cuts)
    }

    /// Minimal cut sets computed from the compiled BDD (Rauzy's
    /// minimal-solutions algorithm) instead of top-down expansion.
    ///
    /// Equivalent result to [`FaultTree::minimal_cut_sets`], but the
    /// cost is governed by the BDD size rather than the intermediate
    /// product terms — use this when MOCUS trips its blow-up guard
    /// (e.g. wide k-of-n gates over AND/OR subtrees).
    pub fn minimal_cut_sets_bdd(&self) -> Vec<CutSet> {
        let _span = obs::span("ftree.cutsets.bdd");
        // Invert the event→variable map.
        let mut var_to_event = vec![0usize; self.event_to_var.len()];
        for (e, &v) in self.event_to_var.iter().enumerate() {
            var_to_event[v as usize] = e;
        }
        let mut cuts: Vec<Vec<EventId>> = self
            .bdd
            .minimal_solutions(self.fails)
            .into_iter()
            .map(|s| {
                let mut events: Vec<EventId> = s
                    .into_iter()
                    .map(|v| EventId(var_to_event[v as usize]))
                    .collect();
                events.sort();
                events
            })
            .collect();
        cuts.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        obs::event(
            "ftree.cutsets",
            &[("algorithm", "bdd".into()), ("count", cuts.len().into())],
        );
        obs::counter_add("ftree.cutsets.enumerations", 1);
        cuts.into_iter().map(CutSet::from_events).collect()
    }

    /// Importance measures for every basic event.
    ///
    /// * Birnbaum: `∂Q_top/∂q_i`.
    /// * Criticality: `Birnbaum_i · q_i / Q_top`.
    /// * Fussell–Vesely: `1 − Q_top(q_i := 0) / Q_top` (the exact
    ///   fractional-contribution form).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if the top event has probability zero.
    pub fn importance(&mut self, event_probs: &[f64]) -> Result<Vec<ImportanceMeasures>> {
        let _span = obs::span("ftree.importance");
        let p = self.permuted(event_probs)?;
        let q_top = self.bdd.probability(self.fails, &p).map_err(bdd_err)?;
        if q_top <= 0.0 {
            return Err(Error::model(
                "top-event probability is zero; importance measures undefined",
            ));
        }
        let birnbaum_by_var = self.bdd.birnbaum(self.fails, &p).map_err(bdd_err)?;
        let mut out = Vec::with_capacity(self.names.len());
        for (e, name) in self.names.iter().enumerate() {
            let var = self.event_to_var[e] as usize;
            let mut perfect = p.clone();
            perfect[var] = 0.0;
            let q_perfect = self
                .bdd
                .probability(self.fails, &perfect)
                .map_err(bdd_err)?;
            out.push(ImportanceMeasures {
                component: name.clone(),
                birnbaum: birnbaum_by_var[var],
                criticality: birnbaum_by_var[var] * event_probs[e] / q_top,
                fussell_vesely: 1.0 - q_perfect / q_top,
            });
        }
        Ok(out)
    }

    /// Rare-event upper bound `Σ_C Π_{i∈C} q_i` over the minimal cut
    /// sets, alongside the exact probability — the pair the tutorial
    /// uses to show when the approximation is safe.
    ///
    /// # Errors
    ///
    /// Propagates cut-set enumeration and evaluation errors.
    pub fn rare_event_bound(&self, event_probs: &[f64], max_sets: usize) -> Result<f64> {
        self.check_probs(event_probs)?;
        let cuts = self.minimal_cut_sets(max_sets)?;
        Ok(cuts
            .iter()
            .map(|c| c.events().iter().map(|e| event_probs[e.0]).product::<f64>())
            .sum())
    }

    fn check_probs(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.names.len() {
            return Err(Error::invalid(format!(
                "{} probabilities supplied for {} events",
                p.len(),
                self.names.len()
            )));
        }
        for (i, &v) in p.iter().enumerate() {
            ensure_probability(v, &format!("failure probability of '{}'", self.names[i]))?;
        }
        Ok(())
    }

    /// Reorders an event-indexed vector into BDD-variable order.
    fn permuted(&self, event_probs: &[f64]) -> Result<Vec<f64>> {
        self.check_probs(event_probs)?;
        let mut p = vec![0.0; event_probs.len()];
        for (e, &v) in event_probs.iter().enumerate() {
            p[self.event_to_var[e] as usize] = v;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Exponential, Lifetime};

    fn multiproc() -> (FaultTreeBuilder, FtNode, Vec<EventId>) {
        // Tutorial multiprocessor: 2 processors, 3 memories, bus.
        // Fails if: both processors fail, OR >= 2 of 3 memories fail,
        // OR the bus fails.
        let mut b = FaultTreeBuilder::new();
        let p = b.basic_events("proc", 2);
        let m = b.basic_events("mem", 3);
        let bus = b.basic_event("bus");
        let top = FtNode::or(vec![
            FtNode::and_of(&p),
            FtNode::k_of_n(2, m.iter().map(|&e| e.into()).collect()),
            bus.into(),
        ]);
        let mut all = p;
        all.extend(m);
        all.push(bus);
        (b, top, all)
    }

    #[test]
    fn or_and_probabilities() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::or_of(&e)).unwrap();
        assert!((ft.top_event_probability(&[0.1, 0.2]).unwrap() - 0.28).abs() < 1e-15);

        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::and_of(&e)).unwrap();
        assert!((ft.top_event_probability(&[0.1, 0.2]).unwrap() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn multiprocessor_probability() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let p_proc = 0.01f64 * 0.01;
        let p_mem = 3.0 * 0.05f64 * 0.05 * 0.95 + 0.05f64.powi(3);
        let p_bus = 0.001;
        let expected = 1.0 - (1.0 - p_proc) * (1.0 - p_mem) * (1.0 - p_bus);
        assert!((ft.top_event_probability(&q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn repeated_events_exact() {
        // top = (a AND b) OR (a AND c): shared event a.
        let mut b = FaultTreeBuilder::new();
        let a = b.basic_event("a");
        let b2 = b.basic_event("b");
        let c = b.basic_event("c");
        let top = FtNode::or(vec![FtNode::and_of(&[a, b2]), FtNode::and_of(&[a, c])]);
        let ft = b.build(top).unwrap();
        let q = ft.top_event_probability(&[0.5, 0.5, 0.5]).unwrap();
        assert!((q - 0.375).abs() < 1e-15);
    }

    #[test]
    fn cut_sets_of_multiprocessor() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let cuts = ft.minimal_cut_sets(10_000).unwrap();
        // {p0,p1}, {m0,m1}, {m0,m2}, {m1,m2}, {bus}
        assert_eq!(cuts.len(), 5);
        let sizes: Vec<usize> = cuts.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 4);
    }

    #[test]
    fn rare_event_bound_is_upper_bound() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let exact = ft.top_event_probability(&q).unwrap();
        let bound = ft.rare_event_bound(&q, 10_000).unwrap();
        assert!(bound >= exact);
        assert!(
            bound - exact < 0.01,
            "bound should be tight for rare events"
        );
    }

    #[test]
    fn dfs_ordering_shrinks_or_matches_bdd() {
        // Interleaved structure where declaration order is bad:
        // declare a0 b0 a1 b1..., tree pairs (a_i AND b_i) OR ...
        let mut b1 = FaultTreeBuilder::new();
        let n = 6;
        let a: Vec<EventId> = (0..n).map(|i| b1.basic_event(&format!("a{i}"))).collect();
        let bb: Vec<EventId> = (0..n).map(|i| b1.basic_event(&format!("b{i}"))).collect();
        let top = FtNode::or(
            (0..n)
                .map(|i| FtNode::and_of(&[a[i], bb[i]]))
                .collect::<Vec<_>>(),
        );
        let decl = b1.build_with_ordering(top.clone(), VariableOrdering::Declaration);
        // Redeclare in the same way for the DFS build.
        let mut b2 = FaultTreeBuilder::new();
        let _a2: Vec<EventId> = (0..n).map(|i| b2.basic_event(&format!("a{i}"))).collect();
        let _b2: Vec<EventId> = (0..n).map(|i| b2.basic_event(&format!("b{i}"))).collect();
        let dfs = b2.build_with_ordering(top, VariableOrdering::DepthFirst);
        let (decl, dfs) = (decl.unwrap(), dfs.unwrap());
        assert!(dfs.bdd_size() <= decl.bdd_size());
        // And both give the same probability.
        let q = vec![0.1; 2 * n];
        assert!(
            (decl.top_event_probability(&q).unwrap() - dfs.top_event_probability(&q).unwrap())
                .abs()
                < 1e-14
        );
    }

    #[test]
    fn weighted_and_sifted_orderings_agree_on_probability() {
        let (b, top, _) = multiproc();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let reference = b.build(top.clone()).unwrap();
        let expect = reference.top_event_probability(&q).unwrap();
        for ordering in [
            VariableOrdering::DepthFirst,
            VariableOrdering::Weighted,
            VariableOrdering::Sifted,
        ] {
            let (b2, top2, _) = multiproc();
            let ft = b2.build_with_ordering(top2, ordering).unwrap();
            let got = ft.top_event_probability(&q).unwrap();
            assert!(
                (got - expect).abs() < 1e-14,
                "{ordering:?}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn weighted_ordering_puts_repeated_events_first() {
        // `shared` appears under both AND branches, so its accumulated
        // weight (1/2) beats each leaf-only event (1/4) and it gets the
        // topmost level despite being declared last.
        let mut b = FaultTreeBuilder::new();
        let x = b.basic_event("x");
        let y = b.basic_event("y");
        let shared = b.basic_event("shared");
        let top = FtNode::or(vec![
            FtNode::and_of(&[x, shared]),
            FtNode::and_of(&[y, shared]),
        ]);
        let ft = b
            .build_with_ordering(top, VariableOrdering::Weighted)
            .unwrap();
        assert_eq!(ft.event_to_var[shared.index()], 0);
        let q = ft.top_event_probability(&[0.2, 0.3, 0.4]).unwrap();
        // P = P(shared) * P(x or y) = 0.4 * (0.2 + 0.3 - 0.06)
        assert!((q - 0.4 * 0.44).abs() < 1e-14);
    }

    #[test]
    fn sifted_ordering_shrinks_interleaved_tree() {
        let n = 6;
        let build = |ordering| {
            let mut b = FaultTreeBuilder::new();
            let mut pairs = Vec::new();
            // Declare a0..a5 then b0..b5; pair a_i with b_i — pessimal
            // for declaration order.
            let a: Vec<EventId> = (0..n).map(|i| b.basic_event(&format!("a{i}"))).collect();
            let bs: Vec<EventId> = (0..n).map(|i| b.basic_event(&format!("b{i}"))).collect();
            for i in 0..n {
                pairs.push(FtNode::and_of(&[a[i], bs[i]]));
            }
            b.build_with_ordering(FtNode::or(pairs), ordering).unwrap()
        };
        let decl = build(VariableOrdering::Declaration);
        let sifted = build(VariableOrdering::Sifted);
        assert!(
            sifted.bdd_size() < decl.bdd_size(),
            "sifted {} vs declaration {}",
            sifted.bdd_size(),
            decl.bdd_size()
        );
        assert!(sifted.bdd_stats().sift_runs >= 1);
        let q = vec![0.05; 2 * n];
        assert!(
            (decl.top_event_probability(&q).unwrap() - sifted.top_event_probability(&q).unwrap())
                .abs()
                < 1e-14
        );
    }

    #[test]
    fn compile_options_tune_cache_and_gc() {
        let (b, top, _) = multiproc();
        let opts = CompileOptions::new()
            .with_ordering(VariableOrdering::DepthFirst)
            .with_ite_cache_capacity(64)
            .with_gc_node_threshold(16);
        let ft = b.build_with(top, &opts).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        assert!(ft.top_event_probability(&q).is_ok());
        // The manager honors the configured bound.
        assert!(ft.bdd_stats().ite_cache_entries <= 64);
    }

    #[test]
    fn compile_time_gc_bounds_peak_live_nodes() {
        // An OR chain of AND pairs leaves each superseded accumulator
        // as garbage; with an aggressive threshold the compile-time
        // safe points must collect it, keeping the high-water mark
        // close to the final size instead of the sum of intermediates.
        let build = |gc_threshold: usize| {
            let mut b = FaultTreeBuilder::new();
            let n = 64;
            let a = b.basic_events("a", n);
            let c = b.basic_events("c", n);
            let top = FtNode::or((0..n).map(|i| FtNode::and_of(&[a[i], c[i]])).collect());
            let opts = CompileOptions::new()
                .with_ordering(VariableOrdering::DepthFirst)
                .with_gc_node_threshold(gc_threshold);
            b.build_with(top, &opts).unwrap()
        };
        let collected = build(8);
        let unbounded = build(usize::MAX);
        let stats = collected.bdd_stats();
        assert!(stats.gc_runs > 0, "tiny threshold must trigger GC");
        assert!(stats.gc_reclaimed > 0);
        assert!(
            stats.peak_live_nodes < unbounded.bdd_stats().peak_live_nodes,
            "GC'd peak {} vs unbounded peak {}",
            stats.peak_live_nodes,
            unbounded.bdd_stats().peak_live_nodes
        );
        // Same function either way.
        let q = vec![0.01; 128];
        assert!(
            (collected.top_event_probability(&q).unwrap()
                - unbounded.top_event_probability(&q).unwrap())
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn bdd_cut_sets_match_mocus() {
        let (b, top, _) = multiproc();
        let ft = b.build(top).unwrap();
        let mocus = ft.minimal_cut_sets(10_000).unwrap();
        let bdd = ft.minimal_cut_sets_bdd();
        assert_eq!(mocus, bdd);
    }

    #[test]
    fn bdd_cut_sets_match_mocus_with_dfs_ordering() {
        // The BDD route must translate variables back to events even
        // under a permuted ordering.
        let (b, top, _) = multiproc();
        let ft = b
            .build_with_ordering(top, VariableOrdering::DepthFirst)
            .unwrap();
        let bdd = ft.minimal_cut_sets_bdd();
        let mocus = ft.minimal_cut_sets(10_000).unwrap();
        assert_eq!(mocus, bdd);
    }

    #[test]
    fn bdd_cut_sets_survive_mocus_blowup() {
        // AND of 6 ORs of 4 events: MOCUS generates 4^6 = 4096
        // intermediate sets; the BDD route handles it regardless.
        let mut b = FaultTreeBuilder::new();
        let groups: Vec<FtNode> = (0..6)
            .map(|g| FtNode::or_of(&b.basic_events(&format!("g{g}"), 4)))
            .collect();
        let ft = b.build(FtNode::and(groups)).unwrap();
        assert!(ft.minimal_cut_sets(1000).is_err());
        let cuts = ft.minimal_cut_sets_bdd();
        assert_eq!(cuts.len(), 4096);
        assert!(cuts.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn unreliability_with_lifetimes() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::and_of(&e)).unwrap();
        let d = Exponential::new(1.0).unwrap();
        let lifetimes: Vec<&dyn Lifetime> = vec![&d, &d];
        let t = 1.0;
        let q = ft.unreliability(&lifetimes, t).unwrap();
        let f = 1.0 - (-1.0f64).exp();
        assert!((q - f * f).abs() < 1e-13);
    }

    #[test]
    fn importance_identifies_single_points_of_failure() {
        let (b, top, all) = multiproc();
        let mut ft = b.build(top).unwrap();
        let q = [0.01, 0.01, 0.05, 0.05, 0.05, 0.001];
        let imp = ft.importance(&q).unwrap();
        let bus = &imp[all[5].index()];
        // The bus is a single point of failure: highest Birnbaum.
        for other in imp.iter().take(5) {
            assert!(bus.birnbaum > other.birnbaum);
        }
        for m in &imp {
            assert!((0.0..=1.0).contains(&m.fussell_vesely), "{m:?}");
        }
    }

    #[test]
    fn validation_errors() {
        let b = FaultTreeBuilder::new();
        let mut b2 = FaultTreeBuilder::new();
        let e = b2.basic_event("e");
        assert!(b.build(FtNode::Basic(e)).is_err()); // no events declared
        let mut b3 = FaultTreeBuilder::new();
        b3.basic_event("x");
        assert!(b3.build(FtNode::Or(vec![])).is_err());
        let mut b4 = FaultTreeBuilder::new();
        let x = b4.basic_event("x");
        assert!(b4
            .build(FtNode::KOfN {
                k: 0,
                inputs: vec![x.into()]
            })
            .is_err());
    }

    #[test]
    fn probability_validation() {
        let mut b = FaultTreeBuilder::new();
        let e = b.basic_events("e", 2);
        let ft = b.build(FtNode::or_of(&e)).unwrap();
        assert!(ft.top_event_probability(&[0.1]).is_err());
        assert!(ft.top_event_probability(&[0.1, 1.0001]).is_err());
    }
}
