//! Common-cause failures (CCF) via the beta-factor model.
//!
//! Redundancy is only as good as the independence assumption behind
//! it: if a fraction `β` of failures strike *all* members of a
//! redundant group at once (shared power, shared cooling, a common
//! software defect), an n-way parallel group degrades toward a single
//! component. The beta-factor model splits each component's failure
//! probability `q` into an independent part `(1-β)·q` and a shared
//! common-cause event `β·q` that is OR-ed into every member — the
//! standard first-order CCF treatment in reliability practice.

use crate::tree::{EventId, FaultTreeBuilder, FtNode};
use reliab_core::{ensure_probability, Error, Result};

/// A beta-factor common-cause group created by [`CcfGroup::new`].
#[derive(Debug, Clone)]
pub struct CcfGroup {
    /// Independent-failure basic events, one per member.
    pub independent: Vec<EventId>,
    /// The shared common-cause basic event.
    pub common: EventId,
}

impl CcfGroup {
    /// Declares the basic events for an `n`-member common-cause group
    /// named `name` on the given builder.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `n == 0`.
    pub fn new(b: &mut FaultTreeBuilder, name: &str, n: usize) -> Result<CcfGroup> {
        if n == 0 {
            return Err(Error::invalid(
                "common-cause group needs at least one member",
            ));
        }
        let independent = (0..n)
            .map(|i| b.basic_event(&format!("{name}-{i}-indep")))
            .collect();
        let common = b.basic_event(&format!("{name}-ccf"));
        Ok(CcfGroup {
            independent,
            common,
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.independent.len()
    }

    /// Whether the group is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.independent.is_empty()
    }

    /// The failure node of member `i`: independent failure OR the
    /// common-cause event.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn member(&self, i: usize) -> FtNode {
        FtNode::or(vec![self.independent[i].into(), self.common.into()])
    }

    /// All member failure nodes.
    pub fn members(&self) -> Vec<FtNode> {
        (0..self.len()).map(|i| self.member(i)).collect()
    }

    /// Fills `probs` (indexed by [`EventId::index`]) with the
    /// beta-factor split of a total per-component failure probability
    /// `q_total`: independent events get `(1-β)·q_total`, the common
    /// event gets `β·q_total`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for probabilities outside
    /// `[0, 1]` or if `probs` is too short.
    pub fn assign_probabilities(&self, probs: &mut [f64], q_total: f64, beta: f64) -> Result<()> {
        ensure_probability(q_total, "q_total")?;
        ensure_probability(beta, "beta")?;
        let needed = self
            .independent
            .iter()
            .chain(std::iter::once(&self.common))
            .map(|e| e.index())
            .max()
            .expect("non-empty group");
        if probs.len() <= needed {
            return Err(Error::invalid(format!(
                "probability vector of length {} cannot hold event index {needed}",
                probs.len()
            )));
        }
        for e in &self.independent {
            probs[e.index()] = (1.0 - beta) * q_total;
        }
        probs[self.common.index()] = beta * q_total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FaultTreeBuilder;

    /// Builds "system fails if all n members fail" with a CCF group
    /// and returns the top-event probability.
    fn parallel_with_ccf(n: usize, q: f64, beta: f64) -> f64 {
        let mut b = FaultTreeBuilder::new();
        let g = CcfGroup::new(&mut b, "unit", n).unwrap();
        let top = FtNode::and(g.members());
        let ft = b.build(top).unwrap();
        let mut probs = vec![0.0; ft.num_events()];
        g.assign_probabilities(&mut probs, q, beta).unwrap();
        ft.top_event_probability(&probs).unwrap()
    }

    #[test]
    fn beta_zero_recovers_independence() {
        let q = 0.01;
        for n in [2usize, 3] {
            let got = parallel_with_ccf(n, q, 0.0);
            assert!((got - q.powi(n as i32)).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn beta_one_collapses_to_single_component() {
        // All failures are common cause: redundancy is worthless.
        let q = 0.01;
        for n in [2usize, 4] {
            let got = parallel_with_ccf(n, q, 1.0);
            assert!((got - q).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn ccf_floor_dominates_high_redundancy() {
        // With beta = 0.05 the system failure probability floors at
        // ~beta*q no matter how much redundancy is added.
        let (q, beta) = (0.01, 0.05);
        let p4 = parallel_with_ccf(4, q, beta);
        let p8 = parallel_with_ccf(8, q, beta);
        let floor = beta * q;
        assert!(p4 >= floor && p8 >= floor);
        // Going 4 -> 8 units barely moves the number (CCF-dominated).
        assert!((p4 - p8) / p4 < 0.01);
        // And both are far worse than the naive independent predictions.
        assert!(p4 > 100.0 * q.powi(4));
    }

    #[test]
    fn analytic_beta_factor_formula() {
        // For an n-parallel group: Q = beta*q + (1-beta*q)*((1-beta)q)^n
        //   ~= beta*q + ((1-beta)q)^n for small q. Check exactly:
        let (n, q, beta) = (3usize, 0.05, 0.2);
        let got = parallel_with_ccf(n, q, beta);
        let qi: f64 = (1.0 - beta) * q;
        let qc = beta * q;
        let expected = qc + (1.0 - qc) * qi.powi(n as i32);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        let mut b = FaultTreeBuilder::new();
        assert!(CcfGroup::new(&mut b, "g", 0).is_err());
        let g = CcfGroup::new(&mut b, "g", 2).unwrap();
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let mut too_short = vec![0.0; 1];
        assert!(g.assign_probabilities(&mut too_short, 0.1, 0.1).is_err());
        let mut ok = vec![0.0; 3];
        assert!(g.assign_probabilities(&mut ok, 1.5, 0.1).is_err());
        assert!(g.assign_probabilities(&mut ok, 0.1, -0.1).is_err());
        assert!(g.assign_probabilities(&mut ok, 0.1, 0.3).is_ok());
        assert!((ok[0] - 0.07).abs() < 1e-15);
        assert!((ok[2] - 0.03).abs() < 1e-15);
    }
}
