//! Sun-Microsystems-class two-node high-availability cluster (E17):
//! the failover story. Service runs on a primary node; on a *covered*
//! primary failure the cluster fails over to the secondary after a
//! detection/switchover delay, while an *uncovered* failure needs slow
//! manual recovery. A single crew repairs failed nodes. The model is a
//! five-state CTMC whose structure is the canonical vendor
//! availability model the tutorial attributes to Sun.

use reliab_core::{downtime_minutes_per_year, ensure_finite_positive, ensure_probability, Result};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};

/// Cluster parameters (rates per hour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Per-node failure rate.
    pub lambda: f64,
    /// Node repair rate (single shared crew).
    pub mu: f64,
    /// Failover coverage: probability a primary failure is detected
    /// and switched over automatically.
    pub coverage: f64,
    /// Failover completion rate (1 / mean switchover delay).
    pub failover_rate: f64,
    /// Manual-recovery rate for uncovered failures.
    pub manual_rate: f64,
}

impl Default for ClusterParams {
    /// Representative values: node MTTF ~4000 h, repair 4 h, coverage
    /// 0.95, failover 30 s–2 min (rate 120/h ≈ 30 s), manual recovery
    /// 30 min.
    fn default() -> Self {
        ClusterParams {
            lambda: 1.0 / 4000.0,
            mu: 0.25,
            coverage: 0.95,
            failover_rate: 120.0,
            manual_rate: 2.0,
        }
    }
}

/// State handles of the cluster CTMC, for reuse in transient queries.
#[derive(Debug, Clone, Copy)]
pub struct ClusterStates {
    /// Both nodes up, service on primary.
    pub up2: StateId,
    /// Covered failover in progress (service down, secondary healthy).
    pub failover: StateId,
    /// Uncovered failure, manual recovery in progress (service down).
    pub uncovered: StateId,
    /// One node up and serving, the other in repair.
    pub up1: StateId,
    /// Both nodes down (service down, repair in progress).
    pub down: StateId,
}

/// Summary measures of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterReport {
    /// Steady-state service availability.
    pub availability: f64,
    /// Service downtime in minutes per year.
    pub downtime_min_per_year: f64,
    /// Fraction of downtime due to failover switching.
    pub downtime_share_failover: f64,
    /// Fraction of downtime due to uncovered (manual) recovery.
    pub downtime_share_uncovered: f64,
    /// Fraction of downtime due to double failures.
    pub downtime_share_double: f64,
}

impl ClusterParams {
    fn validate(&self) -> Result<()> {
        ensure_finite_positive(self.lambda, "lambda")?;
        ensure_finite_positive(self.mu, "mu")?;
        ensure_probability(self.coverage, "coverage")?;
        ensure_finite_positive(self.failover_rate, "failover_rate")?;
        ensure_finite_positive(self.manual_rate, "manual_rate")?;
        Ok(())
    }
}

/// Builds the five-state cluster CTMC.
///
/// # Errors
///
/// Returns [`reliab_core::Error::InvalidParameter`] on bad parameters.
pub fn cluster_ctmc(p: &ClusterParams) -> Result<(Ctmc, ClusterStates)> {
    p.validate()?;
    let mut b = CtmcBuilder::new();
    let up2 = b.state("up-2");
    let failover = b.state("failover");
    let uncovered = b.state("uncovered");
    let up1 = b.state("up-1");
    let down = b.state("down-2");
    // Primary fails: covered vs uncovered split.
    if p.coverage > 0.0 {
        b.transition(up2, failover, p.lambda * p.coverage)?;
    }
    if p.coverage < 1.0 {
        b.transition(up2, uncovered, p.lambda * (1.0 - p.coverage))?;
    }
    // Secondary (standby) fails while both up: service unaffected, the
    // cluster degrades to one node.
    b.transition(up2, up1, p.lambda)?;
    // Failover completes / manual recovery completes.
    b.transition(failover, up1, p.failover_rate)?;
    b.transition(uncovered, up1, p.manual_rate)?;
    // The healthy node can die during switching/manual recovery.
    b.transition(failover, down, p.lambda)?;
    b.transition(uncovered, down, p.lambda)?;
    // Repairs (single crew).
    b.transition(up1, up2, p.mu)?;
    b.transition(up1, down, p.lambda)?;
    b.transition(down, up1, p.mu)?;
    Ok((
        b.build()?,
        ClusterStates {
            up2,
            failover,
            uncovered,
            up1,
            down,
        },
    ))
}

/// Solves the cluster model and decomposes the downtime by cause.
///
/// # Errors
///
/// Propagates solver errors.
pub fn cluster_availability(p: &ClusterParams) -> Result<ClusterReport> {
    let (ctmc, s) = cluster_ctmc(p)?;
    let pi = ctmc.steady_state()?;
    let a = pi[s.up2.index()] + pi[s.up1.index()];
    let down_total = pi[s.failover.index()] + pi[s.uncovered.index()] + pi[s.down.index()];
    let share = |x: f64| {
        if down_total > 0.0 {
            x / down_total
        } else {
            0.0
        }
    };
    Ok(ClusterReport {
        availability: a,
        downtime_min_per_year: downtime_minutes_per_year(a)?,
        downtime_share_failover: share(pi[s.failover.index()]),
        downtime_share_uncovered: share(pi[s.uncovered.index()]),
        downtime_share_double: share(pi[s.down.index()]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_is_highly_available() {
        let r = cluster_availability(&ClusterParams::default()).unwrap();
        assert!(r.availability > 0.9999, "{}", r.availability);
        assert!(r.downtime_min_per_year < 60.0);
        let total =
            r.downtime_share_failover + r.downtime_share_uncovered + r.downtime_share_double;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn better_coverage_reduces_downtime() {
        let base = cluster_availability(&ClusterParams::default()).unwrap();
        let poor = cluster_availability(&ClusterParams {
            coverage: 0.5,
            ..Default::default()
        })
        .unwrap();
        assert!(poor.downtime_min_per_year > base.downtime_min_per_year);
        assert!(poor.downtime_share_uncovered > base.downtime_share_uncovered);
    }

    #[test]
    fn faster_failover_reduces_downtime() {
        let slow = cluster_availability(&ClusterParams {
            failover_rate: 6.0, // 10 min switchover
            ..Default::default()
        })
        .unwrap();
        let fast = cluster_availability(&ClusterParams {
            failover_rate: 3600.0, // 1 s switchover
            ..Default::default()
        })
        .unwrap();
        assert!(fast.availability > slow.availability);
    }

    #[test]
    fn uncovered_failures_dominate_at_low_coverage() {
        let r = cluster_availability(&ClusterParams {
            coverage: 0.2,
            ..Default::default()
        })
        .unwrap();
        assert!(r.downtime_share_uncovered > 0.5, "{r:?}");
    }

    #[test]
    fn perfect_instant_failover_approaches_pure_double_failure_model() {
        // coverage 1 and essentially instantaneous switchover: downtime
        // stems (almost) only from double failures.
        let r = cluster_availability(&ClusterParams {
            coverage: 1.0,
            failover_rate: 1e6,
            ..Default::default()
        })
        .unwrap();
        assert!(r.downtime_share_double > 0.95, "{r:?}");
    }

    #[test]
    fn validation() {
        assert!(cluster_availability(&ClusterParams {
            coverage: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(cluster_availability(&ClusterParams {
            mu: 0.0,
            ..Default::default()
        })
        .is_err());
    }
}
