//! # reliab-models
//!
//! The tutorial's case-study library: parameterized, reusable
//! constructors for every worked example behind experiments E1–E14 in
//! `EXPERIMENTS.md`, built on the modeling crates of this workspace.
//!
//! | Module | Tutorial example | Model class |
//! |--------|------------------|-------------|
//! | [`wfs`] | workstations & file server | RBD |
//! | [`multiproc`] | fault-tolerant multiprocessor | fault tree + coverage CTMC |
//! | [`crn`] | Boeing-787-class current return network | reliability graph + bounds |
//! | [`two_comp`] | two-component availability (shared vs independent repair) | CTMC |
//! | [`rejuv`] | software rejuvenation | MRGP / renewal-reward |
//! | [`router`] | Cisco-class core router | hierarchical (RBD over CTMCs) |
//! | [`sip`] | IBM-SIP-class clustered app server | fixed-point iteration |
//! | [`cluster`] | Sun-class two-node HA cluster (failover/coverage) | CTMC |
//! | [`raid`] | RAID-5/6 storage array MTTDL | absorbing CTMC |

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod crn;
pub mod multiproc;
pub mod raid;
pub mod rejuv;
pub mod router;
pub mod sip;
pub mod two_comp;
pub mod wfs;
