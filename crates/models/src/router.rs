//! Cisco-class core-router availability (E10): the tutorial's
//! hierarchical composition pattern. Each subsystem gets its own small
//! model (CTMCs for the redundant route processors and the switch
//! fabric, RBDs for power and line cards), and the top level is a
//! series RBD over subsystem availabilities — the "downtime budget"
//! table practitioners actually negotiate over.

use crate::multiproc::coverage_ctmc;
use reliab_core::{
    downtime_minutes_per_year, ensure_finite_positive, ensure_probability, Error, Result,
};
use reliab_hier::ModelGraph;
use reliab_rbd::{Block, RbdBuilder};

/// Router model parameters (rates per hour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterParams {
    /// Route-processor failure rate.
    pub rp_lambda: f64,
    /// Route-processor repair rate.
    pub rp_mu: f64,
    /// Failover coverage for the redundant route processors.
    pub rp_coverage: f64,
    /// Switch-fabric failure rate.
    pub fabric_lambda: f64,
    /// Switch-fabric repair rate.
    pub fabric_mu: f64,
    /// Number of power supplies installed.
    pub power_n: usize,
    /// Power supplies required.
    pub power_k: usize,
    /// Power-supply failure rate.
    pub power_lambda: f64,
    /// Power-supply repair rate.
    pub power_mu: f64,
    /// Number of line cards installed.
    pub linecard_n: usize,
    /// Line cards required for (full) service.
    pub linecard_k: usize,
    /// Line-card failure rate.
    pub linecard_lambda: f64,
    /// Line-card repair rate.
    pub linecard_mu: f64,
}

impl Default for RouterParams {
    /// Representative carrier-class numbers (per-hour rates; MTTRs of
    /// 2-4 h correspond to staffed sites with spares).
    fn default() -> Self {
        RouterParams {
            rp_lambda: 1.0 / 30_000.0,
            rp_mu: 0.5,
            rp_coverage: 0.99,
            fabric_lambda: 1.0 / 100_000.0,
            fabric_mu: 0.25,
            power_n: 3,
            power_k: 2,
            power_lambda: 1.0 / 50_000.0,
            power_mu: 0.25,
            linecard_n: 8,
            linecard_k: 7,
            linecard_lambda: 1.0 / 40_000.0,
            linecard_mu: 0.5,
        }
    }
}

impl RouterParams {
    fn validate(&self) -> Result<()> {
        for (v, what) in [
            (self.rp_lambda, "rp_lambda"),
            (self.rp_mu, "rp_mu"),
            (self.fabric_lambda, "fabric_lambda"),
            (self.fabric_mu, "fabric_mu"),
            (self.power_lambda, "power_lambda"),
            (self.power_mu, "power_mu"),
            (self.linecard_lambda, "linecard_lambda"),
            (self.linecard_mu, "linecard_mu"),
        ] {
            ensure_finite_positive(v, what)?;
        }
        ensure_probability(self.rp_coverage, "rp_coverage")?;
        if self.power_k == 0 || self.power_k > self.power_n {
            return Err(Error::invalid(format!(
                "power redundancy {}-of-{} invalid",
                self.power_k, self.power_n
            )));
        }
        if self.linecard_k == 0 || self.linecard_k > self.linecard_n {
            return Err(Error::invalid(format!(
                "linecard redundancy {}-of-{} invalid",
                self.linecard_k, self.linecard_n
            )));
        }
        Ok(())
    }
}

/// One subsystem row of the downtime-budget table.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsystemRow {
    /// Subsystem name.
    pub name: String,
    /// Subsystem steady-state availability.
    pub availability: f64,
    /// Downtime attributable to this subsystem alone (minutes/year).
    pub downtime_min_per_year: f64,
}

/// Full hierarchical solution of the router model.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterReport {
    /// Per-subsystem rows, in composition order.
    pub subsystems: Vec<SubsystemRow>,
    /// System availability (series composition of the rows).
    pub system_availability: f64,
    /// Total system downtime (minutes/year).
    pub system_downtime_min_per_year: f64,
}

/// `k`-of-`n` availability of identical independently repaired units.
fn k_of_n_availability(n: usize, k: usize, unit_avail: f64) -> Result<f64> {
    let mut b = RbdBuilder::new();
    let units = b.components("unit", n);
    let rbd = b.build(Block::k_of_n_components(k, &units))?;
    rbd.availability(&vec![unit_avail; n])
}

/// Solves the router model as a two-level hierarchy (CTMC / RBD leaves
/// combined through a [`ModelGraph`]) and returns the downtime-budget
/// report.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on bad parameters and
/// propagates submodel errors.
pub fn router_availability(p: &RouterParams) -> Result<RouterReport> {
    p.validate()?;
    let p = *p;
    let mut g = ModelGraph::new();

    // Leaf 1: redundant route processors (CTMC with coverage + repair).
    let rp = g.source("route-processors", move || {
        let (ctmc, s2, s1, _) = coverage_ctmc(p.rp_lambda, p.rp_coverage, Some(p.rp_mu))?;
        ctmc.steady_state_probability_of(&[s2, s1])
    });
    // Leaf 2: switch fabric (2-state CTMC => closed form).
    let fabric = g.source("switch-fabric", move || {
        Ok(p.fabric_mu / (p.fabric_lambda + p.fabric_mu))
    });
    // Leaf 3: power shelf (k-of-n RBD).
    let power = g.source("power", move || {
        let unit = p.power_mu / (p.power_lambda + p.power_mu);
        k_of_n_availability(p.power_n, p.power_k, unit)
    });
    // Leaf 4: line cards (k-of-n RBD).
    let linecards = g.source("linecards", move || {
        let unit = p.linecard_mu / (p.linecard_lambda + p.linecard_mu);
        k_of_n_availability(p.linecard_n, p.linecard_k, unit)
    });
    // Top: series composition.
    let top = g.node("router", &[rp, fabric, power, linecards], |v| {
        Ok(v.iter().product())
    });

    let values = g.solve()?;
    let mut subsystems = Vec::new();
    for m in [rp, fabric, power, linecards] {
        let a = values[m.index()];
        subsystems.push(SubsystemRow {
            name: g.name(m).to_owned(),
            availability: a,
            downtime_min_per_year: downtime_minutes_per_year(a)?,
        });
    }
    let system = values[top.index()];
    Ok(RouterReport {
        subsystems,
        system_availability: system,
        system_downtime_min_per_year: downtime_minutes_per_year(system)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_router_is_carrier_grade() {
        let r = router_availability(&RouterParams::default()).unwrap();
        // Carrier availability targets sit near five nines.
        assert!(
            r.system_availability > 0.9999,
            "availability {}",
            r.system_availability
        );
        assert!(r.system_downtime_min_per_year < 60.0);
        assert_eq!(r.subsystems.len(), 4);
    }

    #[test]
    fn system_is_product_of_subsystems() {
        let r = router_availability(&RouterParams::default()).unwrap();
        let product: f64 = r.subsystems.iter().map(|s| s.availability).product();
        assert!((r.system_availability - product).abs() < 1e-12);
    }

    #[test]
    fn subsystem_downtimes_approximately_add() {
        // For high availabilities, total downtime ≈ sum of parts — the
        // rationale behind downtime budgets.
        let r = router_availability(&RouterParams::default()).unwrap();
        let sum: f64 = r.subsystems.iter().map(|s| s.downtime_min_per_year).sum();
        assert!(
            (r.system_downtime_min_per_year - sum).abs() / sum < 0.01,
            "total {} vs sum {sum}",
            r.system_downtime_min_per_year
        );
    }

    #[test]
    fn worse_coverage_hurts() {
        let good = router_availability(&RouterParams::default()).unwrap();
        let bad = router_availability(&RouterParams {
            rp_coverage: 0.5,
            ..Default::default()
        })
        .unwrap();
        assert!(bad.system_availability < good.system_availability);
    }

    #[test]
    fn removing_redundancy_hurts() {
        let base = router_availability(&RouterParams::default()).unwrap();
        let no_spare_power = router_availability(&RouterParams {
            power_n: 2,
            power_k: 2,
            ..Default::default()
        })
        .unwrap();
        assert!(no_spare_power.system_availability < base.system_availability);
    }

    #[test]
    fn validation() {
        assert!(router_availability(&RouterParams {
            power_k: 5,
            power_n: 3,
            ..Default::default()
        })
        .is_err());
        assert!(router_availability(&RouterParams {
            rp_coverage: 1.2,
            ..Default::default()
        })
        .is_err());
    }
}
