//! RAID storage-array reliability (E16): mean time to data loss
//! (MTTDL) of RAID-5 (one-disk tolerance) and RAID-6 (two-disk
//! tolerance) groups as absorbing CTMCs, the standard storage-vendor
//! calculation.
//!
//! The model: `n` identical disks with failure rate `λ`; failed disks
//! rebuild onto spares at rate `μ` (one rebuild at a time); data is
//! lost when more disks are down than the code tolerates.

use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};

/// A RAID group configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaidParams {
    /// Number of disks in the group.
    pub n_disks: usize,
    /// Simultaneous disk failures tolerated (1 = RAID-5, 2 = RAID-6).
    pub tolerance: usize,
    /// Per-disk failure rate (per hour).
    pub lambda: f64,
    /// Rebuild rate (per hour; 1 / mean rebuild time).
    pub mu: f64,
}

impl RaidParams {
    fn validate(&self) -> Result<()> {
        if self.n_disks < 2 {
            return Err(Error::invalid("RAID group needs at least 2 disks"));
        }
        if self.tolerance == 0 || self.tolerance >= self.n_disks {
            return Err(Error::invalid(format!(
                "tolerance {} must be in 1..{}",
                self.tolerance, self.n_disks
            )));
        }
        ensure_finite_positive(self.lambda, "disk failure rate")?;
        ensure_finite_positive(self.mu, "rebuild rate")?;
        Ok(())
    }
}

/// Builds the absorbing rebuild chain: state = number of failed disks
/// (0..=tolerance), plus the data-loss absorbing state.
///
/// Returns the chain, the all-good state, and the data-loss state.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on bad parameters.
pub fn raid_ctmc(p: &RaidParams) -> Result<(Ctmc, StateId, StateId)> {
    p.validate()?;
    let mut b = CtmcBuilder::new();
    let states: Vec<StateId> = (0..=p.tolerance)
        .map(|k| b.state(&format!("{k}-failed")))
        .collect();
    let loss = b.state("data-loss");
    for k in 0..=p.tolerance {
        let fail_rate = (p.n_disks - k) as f64 * p.lambda;
        let next = if k == p.tolerance {
            loss
        } else {
            states[k + 1]
        };
        b.transition(states[k], next, fail_rate)?;
        if k > 0 {
            // One rebuild at a time.
            b.transition(states[k], states[k - 1], p.mu)?;
        }
    }
    Ok((b.build()?, states[0], loss))
}

/// Mean time to data loss from the all-good state.
///
/// # Errors
///
/// Propagates construction/solver errors.
pub fn raid_mttdl(p: &RaidParams) -> Result<f64> {
    let (ctmc, good, loss) = raid_ctmc(p)?;
    ctmc.mttf(&ctmc.point_mass(good), &[loss])
}

/// First-order closed-form RAID-5 MTTDL, `μ ≫ nλ` regime:
/// `MTTDL ≈ μ / (n (n-1) λ²)`. Used to sanity-check the exact chain.
pub fn raid5_mttdl_approx(n_disks: usize, lambda: f64, mu: f64) -> f64 {
    mu / (n_disks as f64 * (n_disks - 1) as f64 * lambda * lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p5(n: usize) -> RaidParams {
        RaidParams {
            n_disks: n,
            tolerance: 1,
            lambda: 1.0 / 100_000.0, // ~11-year disk MTTF
            mu: 1.0 / 10.0,          // 10 h rebuild
        }
    }

    #[test]
    fn raid5_matches_first_order_approximation() {
        for n in [4usize, 8, 16] {
            let exact = raid_mttdl(&p5(n)).unwrap();
            let approx = raid5_mttdl_approx(n, 1.0 / 100_000.0, 0.1);
            assert!(
                (exact - approx).abs() / approx < 0.01,
                "n = {n}: exact {exact:.3e} vs approx {approx:.3e}"
            );
        }
    }

    #[test]
    fn raid6_vastly_outlives_raid5() {
        let r5 = raid_mttdl(&p5(8)).unwrap();
        let r6 = raid_mttdl(&RaidParams {
            tolerance: 2,
            ..p5(8)
        })
        .unwrap();
        // Each extra tolerated failure buys roughly a factor mu/(n λ).
        assert!(r6 > 1000.0 * r5, "r5 = {r5:.3e}, r6 = {r6:.3e}");
    }

    #[test]
    fn wider_groups_lose_data_sooner() {
        let narrow = raid_mttdl(&p5(4)).unwrap();
        let wide = raid_mttdl(&p5(16)).unwrap();
        assert!(wide < narrow);
        // Quadratic scaling in n (first order): ratio ~ (16·15)/(4·3) = 20.
        let ratio = narrow / wide;
        assert!((15.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn faster_rebuild_helps_linearly() {
        let slow = raid_mttdl(&RaidParams { mu: 0.05, ..p5(8) }).unwrap();
        let fast = raid_mttdl(&RaidParams { mu: 0.5, ..p5(8) }).unwrap();
        let ratio = fast / slow;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn validation() {
        assert!(raid_mttdl(&RaidParams {
            n_disks: 1,
            ..p5(4)
        })
        .is_err());
        assert!(raid_mttdl(&RaidParams {
            tolerance: 4,
            ..p5(4)
        })
        .is_err());
        assert!(raid_mttdl(&RaidParams {
            lambda: 0.0,
            ..p5(4)
        })
        .is_err());
    }
}
