//! Fault-tolerant multiprocessor: the tutorial's fault-tree example
//! (E3) and its imperfect-coverage Markov companion (E6/E7).
//!
//! Structure: `n_proc` processors (at least one needed), `n_mem` shared
//! memory modules (at least `k_mem` needed), and a bus that is a single
//! point of failure.

use reliab_core::{ensure_finite_positive, ensure_probability, Error, Result};
use reliab_ftree::{EventId, FaultTree, FaultTreeBuilder, FtNode};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};

/// Parameters of the multiprocessor fault-tree model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiprocParams {
    /// Number of processors (system needs >= 1).
    pub n_proc: usize,
    /// Number of memory modules.
    pub n_mem: usize,
    /// Memory modules required.
    pub k_mem: usize,
    /// Per-processor failure probability at the mission time.
    pub q_proc: f64,
    /// Per-memory failure probability.
    pub q_mem: f64,
    /// Bus failure probability.
    pub q_bus: f64,
}

impl Default for MultiprocParams {
    fn default() -> Self {
        MultiprocParams {
            n_proc: 2,
            n_mem: 3,
            k_mem: 2,
            q_proc: 0.01,
            q_mem: 0.05,
            q_bus: 0.001,
        }
    }
}

/// Handles to the basic events of the multiprocessor fault tree, in
/// the order used by probability vectors.
#[derive(Debug, Clone)]
pub struct MultiprocEvents {
    /// Processor failure events.
    pub procs: Vec<EventId>,
    /// Memory-module failure events.
    pub mems: Vec<EventId>,
    /// Bus failure event.
    pub bus: EventId,
}

/// Builds the multiprocessor fault tree. The top event fires if all
/// processors fail, or more than `n_mem - k_mem` memories fail, or the
/// bus fails.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed parameters.
pub fn multiproc_fault_tree(p: &MultiprocParams) -> Result<(FaultTree, MultiprocEvents)> {
    if p.n_proc == 0 || p.n_mem == 0 || p.k_mem == 0 || p.k_mem > p.n_mem {
        return Err(Error::invalid(format!(
            "invalid structure: {} procs, {}-of-{} memories",
            p.n_proc, p.k_mem, p.n_mem
        )));
    }
    ensure_probability(p.q_proc, "q_proc")?;
    ensure_probability(p.q_mem, "q_mem")?;
    ensure_probability(p.q_bus, "q_bus")?;
    let mut b = FaultTreeBuilder::new();
    let procs = b.basic_events("proc", p.n_proc);
    let mems = b.basic_events("mem", p.n_mem);
    let bus = b.basic_event("bus");
    // Memory subsystem fails when fewer than k of n work, i.e. at
    // least n - k + 1 fail.
    let mem_fail_threshold = p.n_mem - p.k_mem + 1;
    let top = FtNode::or(vec![
        FtNode::and_of(&procs),
        FtNode::k_of_n(mem_fail_threshold, mems.iter().map(|&e| e.into()).collect()),
        bus.into(),
    ]);
    let ft = b.build(top)?;
    Ok((ft, MultiprocEvents { procs, mems, bus }))
}

/// Event-probability vector in fault-tree order for the given
/// parameters.
pub fn multiproc_probs(p: &MultiprocParams) -> Vec<f64> {
    let mut v = vec![p.q_proc; p.n_proc];
    v.extend(std::iter::repeat_n(p.q_mem, p.n_mem));
    v.push(p.q_bus);
    v
}

/// Two-processor CTMC with imperfect coverage `c` and shared repair:
/// the E7 model. States: `2up`, `1up`, `failed`.
///
/// A processor failure is *covered* (system reconfigures onto the
/// survivor) with probability `c`; an uncovered failure crashes the
/// whole system immediately. `mu` repairs one processor at a time;
/// pass `mu = None` for a pure-reliability (no repair) chain.
///
/// Returns the chain plus `(two_up, one_up, failed)` state handles.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed rates/coverage.
pub fn coverage_ctmc(
    lambda: f64,
    coverage: f64,
    mu: Option<f64>,
) -> Result<(Ctmc, StateId, StateId, StateId)> {
    ensure_finite_positive(lambda, "processor failure rate")?;
    ensure_probability(coverage, "coverage")?;
    if let Some(m) = mu {
        ensure_finite_positive(m, "repair rate")?;
    }
    let mut b = CtmcBuilder::new();
    let s2 = b.state("2up");
    let s1 = b.state("1up");
    let sf = b.state("failed");
    if coverage > 0.0 {
        b.transition(s2, s1, 2.0 * lambda * coverage)?;
    }
    if coverage < 1.0 {
        b.transition(s2, sf, 2.0 * lambda * (1.0 - coverage))?;
    }
    b.transition(s1, sf, lambda)?;
    if let Some(m) = mu {
        b.transition(s1, s2, m)?;
        b.transition(sf, s1, m)?;
    }
    Ok((b.build()?, s2, s1, sf))
}

/// Closed-form MTTF of the no-repair coverage model, for validation:
/// `MTTF = (c/(2λ))·? ...` derived from first-step analysis:
/// `MTTF = 1/(2λ) + c·(1/λ)`.
pub fn coverage_mttf_closed_form(lambda: f64, coverage: f64) -> f64 {
    1.0 / (2.0 * lambda) + coverage / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_tree_default_probability() {
        let p = MultiprocParams::default();
        let (ft, _) = multiproc_fault_tree(&p).unwrap();
        let q = ft.top_event_probability(&multiproc_probs(&p)).unwrap();
        let q_proc = p.q_proc * p.q_proc;
        let q_mem = 3.0 * p.q_mem * p.q_mem * (1.0 - p.q_mem) + p.q_mem.powi(3);
        let expected = 1.0 - (1.0 - q_proc) * (1.0 - q_mem) * (1.0 - p.q_bus);
        assert!((q - expected).abs() < 1e-12);
    }

    #[test]
    fn cut_sets_structure() {
        let (ft, ev) = multiproc_fault_tree(&MultiprocParams::default()).unwrap();
        let cuts = ft.minimal_cut_sets(1000).unwrap();
        assert_eq!(cuts.len(), 5);
        // Bus is the only order-1 cut.
        let singletons: Vec<_> = cuts.iter().filter(|c| c.len() == 1).collect();
        assert_eq!(singletons.len(), 1);
        assert!(singletons[0].contains(ev.bus));
    }

    #[test]
    fn coverage_mttf_matches_closed_form() {
        for &c in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            let lambda = 0.001;
            let (ctmc, s2, _, sf) = coverage_ctmc(lambda, c, None).unwrap();
            let mttf = ctmc.mttf(&ctmc.point_mass(s2), &[sf]).unwrap();
            let expected = coverage_mttf_closed_form(lambda, c);
            assert!(
                (mttf - expected).abs() < 1e-6 * expected,
                "c = {c}: {mttf} vs {expected}"
            );
        }
    }

    #[test]
    fn perfect_coverage_doubles_survival_budget() {
        // c = 1: MTTF = 3/(2λ); c = 0: MTTF = 1/(2λ).
        let lambda = 0.01;
        let full = coverage_mttf_closed_form(lambda, 1.0);
        let none = coverage_mttf_closed_form(lambda, 0.0);
        assert!((full / none - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repairable_coverage_model_availability() {
        let (ctmc, s2, s1, _) = coverage_ctmc(0.001, 0.99, Some(1.0)).unwrap();
        let a = ctmc.steady_state_probability_of(&[s2, s1]).unwrap();
        assert!(a > 0.999 && a < 1.0);
    }

    #[test]
    fn validation() {
        assert!(coverage_ctmc(0.0, 0.9, None).is_err());
        assert!(coverage_ctmc(1.0, 1.5, None).is_err());
        assert!(coverage_ctmc(1.0, 0.9, Some(0.0)).is_err());
        let bad = MultiprocParams {
            k_mem: 5,
            n_mem: 3,
            ..Default::default()
        };
        assert!(multiproc_fault_tree(&bad).is_err());
    }
}
