//! Two-component availability models (E5): the tutorial's canonical
//! demonstration that *dependence* (a shared repair crew) breaks the
//! non-state-space product form and calls for a Markov chain.

use reliab_core::{downtime_minutes_per_year, ensure_finite_positive, Result};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};

/// Repair staffing discipline for the two-component system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// A dedicated crew per component (failures repaired in parallel);
    /// equivalent to independent components, matching the RBD.
    Independent,
    /// One shared crew: at most one repair in progress.
    SharedCrew,
}

/// Result row of the E5 comparison table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoComponentResult {
    /// Steady-state probability both components are up.
    pub both_up: f64,
    /// Steady-state availability of a 1-of-2 (parallel) system.
    pub parallel_availability: f64,
    /// Downtime of the parallel system in minutes/year.
    pub parallel_downtime_min_per_year: f64,
}

/// Builds the two-identical-component birth-death CTMC under the given
/// repair policy. States indexed by number of failed components:
/// `0, 1, 2`; returns handles in that order.
///
/// # Errors
///
/// Returns [`reliab_core::Error::InvalidParameter`] on bad rates.
pub fn two_component_ctmc(
    lambda: f64,
    mu: f64,
    policy: RepairPolicy,
) -> Result<(Ctmc, [StateId; 3])> {
    ensure_finite_positive(lambda, "failure rate")?;
    ensure_finite_positive(mu, "repair rate")?;
    let mut b = CtmcBuilder::new();
    let s0 = b.state("0-failed");
    let s1 = b.state("1-failed");
    let s2 = b.state("2-failed");
    b.transition(s0, s1, 2.0 * lambda)?;
    b.transition(s1, s2, lambda)?;
    b.transition(s1, s0, mu)?;
    let mu2 = match policy {
        RepairPolicy::Independent => 2.0 * mu,
        RepairPolicy::SharedCrew => mu,
    };
    b.transition(s2, s1, mu2)?;
    Ok((b.build()?, [s0, s1, s2]))
}

/// Solves the E5 model and returns the summary row.
///
/// # Errors
///
/// Propagates solver errors.
pub fn two_component_availability(
    lambda: f64,
    mu: f64,
    policy: RepairPolicy,
) -> Result<TwoComponentResult> {
    let (ctmc, [s0, s1, _]) = two_component_ctmc(lambda, mu, policy)?;
    let pi = ctmc.steady_state()?;
    let parallel = pi[s0.index()] + pi[s1.index()];
    Ok(TwoComponentResult {
        both_up: pi[s0.index()],
        parallel_availability: parallel,
        parallel_downtime_min_per_year: downtime_minutes_per_year(parallel)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_matches_product_form() {
        // With per-component crews the chain is a product of two
        // independent 2-state components: P(both up) = a², parallel
        // availability = 1 - (1-a)².
        let (l, m) = (0.01, 1.0);
        let a = m / (l + m);
        let r = two_component_availability(l, m, RepairPolicy::Independent).unwrap();
        assert!((r.both_up - a * a).abs() < 1e-12);
        assert!((r.parallel_availability - (1.0 - (1.0 - a) * (1.0 - a))).abs() < 1e-12);
    }

    #[test]
    fn shared_crew_is_strictly_worse() {
        let (l, m) = (0.1, 1.0);
        let ind = two_component_availability(l, m, RepairPolicy::Independent).unwrap();
        let shared = two_component_availability(l, m, RepairPolicy::SharedCrew).unwrap();
        assert!(shared.parallel_availability < ind.parallel_availability);
        assert!(shared.parallel_downtime_min_per_year > ind.parallel_downtime_min_per_year);
    }

    #[test]
    fn shared_crew_closed_form() {
        // Birth-death ratios: pi1 = 2(l/m) pi0, pi2 = 2(l/m)^2 pi0.
        let (l, m) = (0.05, 0.5);
        let rho = l / m;
        let pi0 = 1.0 / (1.0 + 2.0 * rho + 2.0 * rho * rho);
        let r = two_component_availability(l, m, RepairPolicy::SharedCrew).unwrap();
        assert!((r.both_up - pi0).abs() < 1e-12);
        let parallel = pi0 * (1.0 + 2.0 * rho);
        assert!((r.parallel_availability - parallel).abs() < 1e-12);
    }

    #[test]
    fn downtime_units() {
        let r = two_component_availability(0.001, 1.0, RepairPolicy::SharedCrew).unwrap();
        // Availability near 1 => downtime near zero but positive.
        assert!(r.parallel_downtime_min_per_year > 0.0);
        assert!(r.parallel_downtime_min_per_year < 10.0);
    }

    #[test]
    fn validation() {
        assert!(two_component_ctmc(0.0, 1.0, RepairPolicy::SharedCrew).is_err());
        assert!(two_component_ctmc(1.0, -1.0, RepairPolicy::Independent).is_err());
    }
}
