//! Software rejuvenation (E9): the aging-software story the tutorial
//! tells with an MRGP.
//!
//! The software passes through a *robust* phase and then a
//! *failure-probable* phase (so the effective time-to-failure is
//! hypoexponential — increasing hazard). A deterministic rejuvenation
//! timer δ races the failure: rejuvenating is quick, crash recovery is
//! slow. Renewal-reward over regeneration cycles gives exact long-run
//! availability/cost, and the sweep over δ reproduces the classic
//! U-shaped downtime curve with an interior optimum.

use reliab_core::{ensure_finite_positive, Result};
use reliab_dist::HypoExponential;
use reliab_semimarkov::renewal::{
    optimal_policy_age, policy_measures, PolicyCosts, PolicyMeasures,
};

/// Parameters of the rejuvenation model (times in hours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejuvParams {
    /// Mean sojourn in the robust phase.
    pub robust_mean: f64,
    /// Mean sojourn in the failure-probable phase before crashing.
    pub failure_prone_mean: f64,
    /// Mean downtime of a crash recovery.
    pub recovery_time: f64,
    /// Mean downtime of a (planned) rejuvenation.
    pub rejuvenation_time: f64,
}

impl Default for RejuvParams {
    /// Representative numbers: ~10 days robust, ~2 days
    /// failure-probable, 2 h crash recovery, 10 min rejuvenation.
    fn default() -> Self {
        RejuvParams {
            robust_mean: 240.0,
            failure_prone_mean: 48.0,
            recovery_time: 2.0,
            rejuvenation_time: 1.0 / 6.0,
        }
    }
}

impl RejuvParams {
    fn validate(&self) -> Result<()> {
        ensure_finite_positive(self.robust_mean, "robust_mean")?;
        ensure_finite_positive(self.failure_prone_mean, "failure_prone_mean")?;
        ensure_finite_positive(self.recovery_time, "recovery_time")?;
        ensure_finite_positive(self.rejuvenation_time, "rejuvenation_time")?;
        Ok(())
    }

    /// The aging time-to-failure distribution: hypoexponential through
    /// the two phases.
    ///
    /// # Errors
    ///
    /// Returns an error when phase means coincide (use slightly
    /// different means; the hypoexponential needs distinct rates).
    pub fn ttf(&self) -> Result<HypoExponential> {
        self.validate()?;
        HypoExponential::new(&[1.0 / self.robust_mean, 1.0 / self.failure_prone_mean])
    }
}

/// Evaluates the policy at rejuvenation interval `delta` (hours).
///
/// # Errors
///
/// Propagates distribution/policy errors.
pub fn rejuvenation_measures(p: &RejuvParams, delta: f64) -> Result<PolicyMeasures> {
    let ttf = p.ttf()?;
    policy_measures(
        &ttf,
        p.recovery_time,
        p.rejuvenation_time,
        delta,
        &PolicyCosts::default(),
    )
}

/// Expected downtime in minutes per year at interval `delta`.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn rejuvenation_downtime(p: &RejuvParams, delta: f64) -> Result<f64> {
    let m = rejuvenation_measures(p, delta)?;
    reliab_core::downtime_minutes_per_year(m.availability)
}

/// Finds the availability-optimal rejuvenation interval within
/// `[delta_min, delta_max]`.
///
/// # Errors
///
/// Propagates search errors.
pub fn optimal_rejuvenation(
    p: &RejuvParams,
    delta_min: f64,
    delta_max: f64,
) -> Result<(f64, PolicyMeasures)> {
    let ttf = p.ttf()?;
    optimal_policy_age(
        &ttf,
        p.recovery_time,
        p.rejuvenation_time,
        delta_min,
        delta_max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::Lifetime;

    #[test]
    fn aging_distribution_has_cv_below_one() {
        let ttf = RejuvParams::default().ttf().unwrap();
        assert!(ttf.cv_squared() < 1.0, "hypoexponential must age");
        assert!((ttf.mean() - 288.0).abs() < 1e-9);
    }

    #[test]
    fn interior_optimum_beats_extremes() {
        let p = RejuvParams::default();
        let (d_opt, m_opt) = optimal_rejuvenation(&p, 10.0, 5000.0).unwrap();
        let never = rejuvenation_measures(&p, 4999.0).unwrap();
        let eager = rejuvenation_measures(&p, 10.0).unwrap();
        assert!(
            m_opt.availability >= never.availability - 1e-12,
            "optimum must beat rejuvenating (almost) never"
        );
        assert!(
            m_opt.availability >= eager.availability - 1e-12,
            "optimum must beat rejuvenating every 10 h"
        );
        assert!(d_opt > 10.0 && d_opt < 5000.0);
    }

    #[test]
    fn downtime_curve_is_u_shaped() {
        let p = RejuvParams::default();
        let (d_opt, _) = optimal_rejuvenation(&p, 10.0, 5000.0).unwrap();
        let at = |d: f64| rejuvenation_downtime(&p, d).unwrap();
        // Left of the optimum downtime decreases, right of it increases.
        assert!(at(d_opt * 0.3) > at(d_opt));
        assert!(at(d_opt * 4.0) > at(d_opt));
    }

    #[test]
    fn cheap_rejuvenation_helps_more() {
        let base = RejuvParams::default();
        let slow_rejuv = RejuvParams {
            rejuvenation_time: 1.9, // nearly as slow as recovery
            ..base
        };
        let (_, m_fast) = optimal_rejuvenation(&base, 10.0, 5000.0).unwrap();
        let (_, m_slow) = optimal_rejuvenation(&slow_rejuv, 10.0, 5000.0).unwrap();
        assert!(m_fast.availability > m_slow.availability);
    }

    #[test]
    fn validation() {
        let bad = RejuvParams {
            robust_mean: 0.0,
            ..Default::default()
        };
        assert!(bad.ttf().is_err());
        assert!(rejuvenation_measures(&RejuvParams::default(), 0.0).is_err());
    }
}
