//! Workstations-and-file-server (WFS): the tutorial's opening RBD.
//!
//! `n` workstations (of which `k` must be up) in series with a file
//! server. With independent repair per component, the non-state-space
//! RBD solution is exact; the module also exposes the equivalent
//! monolithic CTMC so E14 can demonstrate the state-space explosion on
//! the same system.

use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_markov::{Ctmc, CtmcBuilder};
use reliab_rbd::{Block, Rbd, RbdBuilder};

/// Parameters of the WFS system (times in hours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WfsParams {
    /// Number of workstations.
    pub n_workstations: usize,
    /// Workstations required for service.
    pub k_required: usize,
    /// Workstation mean time to failure.
    pub ws_mttf: f64,
    /// Workstation mean time to repair.
    pub ws_mttr: f64,
    /// File-server mean time to failure.
    pub fs_mttf: f64,
    /// File-server mean time to repair.
    pub fs_mttr: f64,
}

impl Default for WfsParams {
    /// The classic numbers used in the tutorial: 2 workstations
    /// (1 needed), workstation MTTF 5000 h / MTTR 4 h, file server
    /// MTTF 2000 h / MTTR 2 h.
    fn default() -> Self {
        WfsParams {
            n_workstations: 2,
            k_required: 1,
            ws_mttf: 5000.0,
            ws_mttr: 4.0,
            fs_mttf: 2000.0,
            fs_mttr: 2.0,
        }
    }
}

impl WfsParams {
    fn validate(&self) -> Result<()> {
        if self.n_workstations == 0 || self.k_required == 0 {
            return Err(Error::invalid("need at least one workstation required"));
        }
        if self.k_required > self.n_workstations {
            return Err(Error::invalid(format!(
                "k_required {} exceeds n_workstations {}",
                self.k_required, self.n_workstations
            )));
        }
        for (v, what) in [
            (self.ws_mttf, "ws_mttf"),
            (self.ws_mttr, "ws_mttr"),
            (self.fs_mttf, "fs_mttf"),
            (self.fs_mttr, "fs_mttr"),
        ] {
            ensure_finite_positive(v, what)?;
        }
        Ok(())
    }

    /// Workstation steady-state availability.
    pub fn ws_availability(&self) -> f64 {
        self.ws_mttf / (self.ws_mttf + self.ws_mttr)
    }

    /// File-server steady-state availability.
    pub fn fs_availability(&self) -> f64 {
        self.fs_mttf / (self.fs_mttf + self.fs_mttr)
    }
}

/// Builds the WFS RBD: (`k_required`-of-`n_workstations`) in series
/// with the file server. Component order: workstations `0..n`, then
/// the file server.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed parameters.
pub fn wfs_rbd(params: &WfsParams) -> Result<Rbd> {
    params.validate()?;
    let mut b = RbdBuilder::new();
    let ws = b.components("workstation", params.n_workstations);
    let fs = b.component("file-server");
    let diagram = Block::series(vec![
        Block::k_of_n_components(params.k_required, &ws),
        fs.into(),
    ]);
    b.build(diagram)
}

/// Steady-state system availability by the (exact, independent-repair)
/// RBD route.
///
/// # Errors
///
/// Propagates construction/evaluation errors.
pub fn wfs_availability(params: &WfsParams) -> Result<f64> {
    let rbd = wfs_rbd(params)?;
    let mut probs = vec![params.ws_availability(); params.n_workstations];
    probs.push(params.fs_availability());
    rbd.availability(&probs)
}

/// The same WFS system as one flat CTMC (state = number of failed
/// workstations × file-server status), assuming independent repair
/// (each failed component has its own crew). Used by E14 to show the
/// state-space route agreeing with the RBD while scaling far worse.
///
/// Returns the chain and the list of "system up" states.
///
/// # Errors
///
/// Propagates construction errors.
pub fn wfs_ctmc(params: &WfsParams) -> Result<(Ctmc, Vec<reliab_markov::StateId>)> {
    params.validate()?;
    let n = params.n_workstations;
    let lam_w = 1.0 / params.ws_mttf;
    let mu_w = 1.0 / params.ws_mttr;
    let lam_f = 1.0 / params.fs_mttf;
    let mu_f = 1.0 / params.fs_mttr;
    let mut b = CtmcBuilder::new();
    // State (w failed workstations, fs up?).
    let mut ids = Vec::new();
    for w in 0..=n {
        for fs_up in [true, false] {
            ids.push(b.state(&format!("w{w}-fs{}", if fs_up { "up" } else { "down" })));
        }
    }
    let idx = |w: usize, fs_up: bool| -> usize { w * 2 + usize::from(!fs_up) };
    for w in 0..=n {
        for fs_up in [true, false] {
            let from = ids[idx(w, fs_up)];
            // Workstation failures: (n - w) in service, each rate lam_w.
            if w < n {
                b.transition(from, ids[idx(w + 1, fs_up)], (n - w) as f64 * lam_w)?;
            }
            // Workstation repairs: independent crews, rate w * mu_w.
            if w > 0 {
                b.transition(from, ids[idx(w - 1, fs_up)], w as f64 * mu_w)?;
            }
            // File-server failure / repair.
            if fs_up {
                b.transition(from, ids[idx(w, false)], lam_f)?;
            } else {
                b.transition(from, ids[idx(w, true)], mu_f)?;
            }
        }
    }
    let up_states: Vec<_> = (0..=n)
        .filter(|w| n - w >= params.k_required)
        .map(|w| ids[idx(w, true)])
        .collect();
    Ok((b.build()?, up_states))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_availability_is_high() {
        let a = wfs_availability(&WfsParams::default()).unwrap();
        // 1-of-2 workstations (each ~0.9992) and server ~0.999.
        assert!(a > 0.998 && a < 1.0);
    }

    #[test]
    fn rbd_matches_closed_form() {
        let p = WfsParams::default();
        let a_ws = p.ws_availability();
        let a_fs = p.fs_availability();
        let expected = (1.0 - (1.0 - a_ws) * (1.0 - a_ws)) * a_fs;
        let got = wfs_availability(&p).unwrap();
        assert!((got - expected).abs() < 1e-14);
    }

    #[test]
    fn ctmc_agrees_with_rbd() {
        let p = WfsParams::default();
        let (ctmc, up) = wfs_ctmc(&p).unwrap();
        let a_ctmc = ctmc.steady_state_probability_of(&up).unwrap();
        let a_rbd = wfs_availability(&p).unwrap();
        assert!(
            (a_ctmc - a_rbd).abs() < 1e-10,
            "CTMC {a_ctmc} vs RBD {a_rbd}"
        );
    }

    #[test]
    fn ctmc_agrees_for_k_of_n_variants() {
        let p = WfsParams {
            n_workstations: 4,
            k_required: 3,
            ..Default::default()
        };
        let (ctmc, up) = wfs_ctmc(&p).unwrap();
        let a_ctmc = ctmc.steady_state_probability_of(&up).unwrap();
        let a_rbd = wfs_availability(&p).unwrap();
        assert!((a_ctmc - a_rbd).abs() < 1e-10);
    }

    #[test]
    fn state_count_grows_linearly_here_but_demonstrates_structure() {
        // (n+1) * 2 states for this simple case — the explosion shows
        // up when components are heterogeneous (E14 uses that).
        let p = WfsParams {
            n_workstations: 10,
            k_required: 8,
            ..Default::default()
        };
        let (ctmc, _) = wfs_ctmc(&p).unwrap();
        assert_eq!(ctmc.num_states(), 22);
    }

    #[test]
    fn validation() {
        let bad = WfsParams {
            k_required: 3,
            n_workstations: 2,
            ..Default::default()
        };
        assert!(wfs_rbd(&bad).is_err());
        let bad = WfsParams {
            ws_mttf: 0.0,
            ..Default::default()
        };
        assert!(wfs_availability(&bad).is_err());
    }
}
