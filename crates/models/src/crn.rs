//! Boeing-787-class current-return-network (CRN) study (E4).
//!
//! The real 787 CRN topology is proprietary; per DESIGN.md this module
//! builds a synthetic ladder/mesh reliability graph of comparable
//! character (a redundant conductive network between two terminals)
//! and reproduces the *bounding workflow*: enumerate minimal cut sets
//! up to a truncation order, bracket the network unreliability, and
//! watch the bracket tighten as the order grows — which is exactly how
//! the tutorial's bounding story goes when exact solution is out of
//! reach.

use reliab_bounds::{truncated_unreliability_bounds, Bounds};
use reliab_core::{ensure_probability, Error, Result};
use reliab_relgraph::{RelGraph, RelGraphBuilder};

/// Builds a `rows × cols` grid ("mesh") reliability graph with the
/// source at the top-left and the sink at the bottom-right corner —
/// the synthetic CRN stand-in.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for degenerate dimensions.
pub fn crn_mesh(rows: usize, cols: usize) -> Result<RelGraph> {
    if rows < 2 || cols < 2 {
        return Err(Error::invalid(format!(
            "mesh must be at least 2x2, got {rows}x{cols}"
        )));
    }
    let mut b = RelGraphBuilder::new();
    let nodes: Vec<Vec<_>> = (0..rows)
        .map(|r| (0..cols).map(|c| b.node(&format!("n{r}-{c}"))).collect())
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(nodes[r][c], nodes[r][c + 1], &format!("h{r}-{c}"));
            }
            if r + 1 < rows {
                b.edge(nodes[r][c], nodes[r + 1][c], &format!("v{r}-{c}"));
            }
        }
    }
    b.build(nodes[0][0], nodes[rows - 1][cols - 1])
}

/// One row of the E4 bounding table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrnBoundsRow {
    /// Cut-set truncation order used.
    pub max_order: usize,
    /// Number of minimal cut sets at or below that order.
    pub cut_sets_used: usize,
    /// The unreliability bracket.
    pub bounds: Bounds,
}

/// Runs the truncation sweep: for each order in `orders`, enumerate
/// minimal cut sets up to that order and compute the unreliability
/// bracket with common edge failure probability `q`.
///
/// # Errors
///
/// Propagates enumeration and bounding errors; rejects `q` outside
/// `[0, 1]`.
pub fn crn_bounds_sweep(g: &RelGraph, q: f64, orders: &[usize]) -> Result<Vec<CrnBoundsRow>> {
    ensure_probability(q, "edge failure probability")?;
    let all_cuts = g.minimal_cut_sets(200_000)?;
    let q_vec = vec![q; g.num_edges()];
    let mut rows = Vec::with_capacity(orders.len());
    for &m in orders {
        let known: Vec<Vec<usize>> = all_cuts
            .iter()
            .filter(|c| c.len() <= m)
            .map(|c| c.iter().map(|e| e.index()).collect())
            .collect();
        if known.is_empty() {
            return Err(Error::model(format!(
                "no cut sets of order <= {m}; increase the truncation order"
            )));
        }
        let bounds = truncated_unreliability_bounds(&known, &q_vec, m)?;
        rows.push(CrnBoundsRow {
            max_order: m,
            cut_sets_used: known.len(),
            bounds,
        });
    }
    Ok(rows)
}

/// Exact network unreliability (feasible for the sizes used in tests
/// and the bench; the bounding workflow exists for when this is not).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn crn_exact_unreliability(g: &RelGraph, q: f64) -> Result<f64> {
    ensure_probability(q, "edge failure probability")?;
    let p = vec![1.0 - q; g.num_edges()];
    Ok(1.0 - g.reliability(&p)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_construction() {
        let g = crn_mesh(3, 3).unwrap();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.num_edges(), 12);
        assert!(crn_mesh(1, 3).is_err());
    }

    #[test]
    fn bounds_bracket_exact_and_tighten() {
        let g = crn_mesh(3, 3).unwrap();
        let q = 0.01;
        let exact = crn_exact_unreliability(&g, q).unwrap();
        let rows = crn_bounds_sweep(&g, q, &[2, 3, 4]).unwrap();
        let mut last_gap = f64::INFINITY;
        for row in &rows {
            assert!(
                row.bounds.lower <= exact + 1e-12 && exact <= row.bounds.upper + 1e-12,
                "order {}: [{}, {}] vs exact {exact}",
                row.max_order,
                row.bounds.lower,
                row.bounds.upper
            );
            assert!(row.bounds.gap() <= last_gap + 1e-15);
            last_gap = row.bounds.gap();
        }
        // More cut sets used at higher order.
        assert!(rows[2].cut_sets_used >= rows[0].cut_sets_used);
    }

    #[test]
    fn high_reliability_regime_gives_tight_low_order_bounds() {
        let g = crn_mesh(3, 4).unwrap();
        let rows = crn_bounds_sweep(&g, 1e-4, &[2]).unwrap();
        // With q = 1e-4 the order-2 bracket is already very tight in
        // relative terms.
        let b = rows[0].bounds;
        assert!(b.gap() / b.midpoint() < 0.2);
    }

    #[test]
    fn validation() {
        let g = crn_mesh(2, 2).unwrap();
        assert!(crn_bounds_sweep(&g, 1.5, &[2]).is_err());
        assert!(crn_exact_unreliability(&g, -0.1).is_err());
        // Order below the minimum cut order of the 2x2 mesh (2).
        assert!(crn_bounds_sweep(&g, 0.1, &[1]).is_err());
    }
}
