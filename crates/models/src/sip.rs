//! IBM-SIP-class clustered application server (E11): the tutorial's
//! fixed-point composition.
//!
//! A cluster of `n` replicated servers shares a total request load.
//! A server's failure rate grows with the load it carries, but the
//! load each live server carries depends on how many servers are up —
//! which depends on their failure rates. The two submodels exchange
//! parameters in a cycle, so the composition is solved by damped
//! fixed-point iteration (the import-graph technique the tutorial
//! credits for the real SIP/WebSphere availability study).

use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_hier::{fixed_point, FixedPointOptions};
use reliab_numeric::special::ln_gamma;

/// Parameters of the load-coupled cluster model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SipParams {
    /// Number of servers in the cluster.
    pub n_servers: usize,
    /// Servers required for full service.
    pub k_required: usize,
    /// Total offered load (requests/s across the cluster).
    pub total_load: f64,
    /// Base (zero-load) per-server failure rate (per hour).
    pub lambda0: f64,
    /// Load sensitivity: failure rate is `λ0 (1 + α·load_per_server)`.
    pub alpha: f64,
    /// Per-server repair rate (per hour).
    pub mu: f64,
}

impl Default for SipParams {
    fn default() -> Self {
        SipParams {
            n_servers: 8,
            k_required: 6,
            total_load: 800.0,
            lambda0: 1.0 / 2000.0,
            alpha: 0.004,
            mu: 0.5,
        }
    }
}

/// Solution of the fixed-point cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct SipResult {
    /// Converged single-server availability.
    pub server_availability: f64,
    /// Converged load per live server.
    pub load_per_server: f64,
    /// Effective per-server failure rate at the fixed point.
    pub effective_lambda: f64,
    /// Probability at least `k_required` of `n_servers` are up
    /// (binomial over the converged server availability).
    pub system_availability: f64,
    /// Fixed-point iterations to convergence.
    pub iterations: usize,
    /// Residual trace of the iteration.
    pub residuals: Vec<f64>,
}

fn binom_at_least(n: usize, k: usize, p: f64) -> f64 {
    let ln_choose = |n: usize, k: usize| -> f64 {
        ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
    };
    (k..=n)
        .map(|j| (ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp())
        .sum()
}

/// Solves the cluster model by damped fixed-point iteration on the
/// single-server availability.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on malformed parameters and
/// [`Error::Convergence`] if the iteration fails (pathological load
/// coupling).
pub fn sip_availability(p: &SipParams, opts: &FixedPointOptions) -> Result<SipResult> {
    if p.n_servers == 0 || p.k_required == 0 || p.k_required > p.n_servers {
        return Err(Error::invalid(format!(
            "invalid cluster shape: {}-of-{}",
            p.k_required, p.n_servers
        )));
    }
    ensure_finite_positive(p.total_load, "total_load")?;
    ensure_finite_positive(p.lambda0, "lambda0")?;
    ensure_finite_positive(p.mu, "mu")?;
    if !(p.alpha >= 0.0 && p.alpha.is_finite()) {
        return Err(Error::invalid(format!(
            "alpha must be finite and >= 0, got {}",
            p.alpha
        )));
    }
    let p = *p;
    let map = move |x: &[f64]| -> Result<Vec<f64>> {
        let a = x[0].clamp(1e-6, 1.0);
        // Load submodel: live servers share the total load.
        let load = p.total_load / (p.n_servers as f64 * a);
        // Availability submodel: 2-state server chain at that load.
        let lambda = p.lambda0 * (1.0 + p.alpha * load);
        Ok(vec![p.mu / (lambda + p.mu)])
    };
    let r = fixed_point(map, vec![1.0], opts)?;
    let a = r.values[0];
    let load = p.total_load / (p.n_servers as f64 * a);
    let lambda = p.lambda0 * (1.0 + p.alpha * load);
    Ok(SipResult {
        server_availability: a,
        load_per_server: load,
        effective_lambda: lambda,
        system_availability: binom_at_least(p.n_servers, p.k_required, a),
        iterations: r.iterations,
        residuals: r.residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_converges_quickly() {
        let r = sip_availability(&SipParams::default(), &FixedPointOptions::default()).unwrap();
        assert!(r.server_availability > 0.99 && r.server_availability < 1.0);
        assert!(r.system_availability > 0.999);
        assert!(r.iterations < 100, "iterations = {}", r.iterations);
        // Residuals decrease.
        assert!(r.residuals.windows(2).all(|w| w[1] <= w[0] * 1.5));
    }

    #[test]
    fn fixed_point_is_self_consistent() {
        let p = SipParams::default();
        let r = sip_availability(&p, &FixedPointOptions::default()).unwrap();
        // Re-apply the map at the solution: must return the solution.
        let lambda = p.lambda0 * (1.0 + p.alpha * r.load_per_server);
        let a_back = p.mu / (lambda + p.mu);
        assert!((a_back - r.server_availability).abs() < 1e-8);
    }

    #[test]
    fn zero_alpha_decouples_and_matches_closed_form() {
        let p = SipParams {
            alpha: 0.0,
            ..Default::default()
        };
        let r = sip_availability(&p, &FixedPointOptions::default()).unwrap();
        let a = p.mu / (p.lambda0 + p.mu);
        assert!((r.server_availability - a).abs() < 1e-10);
        // Decoupled system converges in very few iterations.
        assert!(r.iterations <= 3);
    }

    #[test]
    fn heavier_load_coupling_lowers_availability() {
        let base = sip_availability(&SipParams::default(), &FixedPointOptions::default()).unwrap();
        let heavy = sip_availability(
            &SipParams {
                alpha: 0.02,
                ..Default::default()
            },
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!(heavy.server_availability < base.server_availability);
        assert!(heavy.load_per_server > base.load_per_server * 0.99);
    }

    #[test]
    fn validation() {
        let opts = FixedPointOptions::default();
        assert!(sip_availability(
            &SipParams {
                k_required: 9,
                n_servers: 8,
                ..Default::default()
            },
            &opts
        )
        .is_err());
        assert!(sip_availability(
            &SipParams {
                alpha: -1.0,
                ..Default::default()
            },
            &opts
        )
        .is_err());
    }

    #[test]
    fn binomial_helper_sanity() {
        assert!((binom_at_least(3, 2, 0.9) - (3.0 * 0.81 * 0.1 + 0.729)).abs() < 1e-12);
        assert!((binom_at_least(5, 1, 0.5) - (1.0 - 0.5f64.powi(5))).abs() < 1e-12);
    }
}
