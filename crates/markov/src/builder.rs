//! CTMC construction with named states and boundary validation.

use reliab_core::{ensure_finite_positive, Error, Result};
use reliab_numeric::{CsrMatrix, DenseMatrix};
use std::collections::HashMap;

/// Opaque handle to a CTMC state, returned by [`CtmcBuilder::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(usize);

impl StateId {
    /// The state's index into solution vectors (`π`, reward vectors).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Incremental builder for a [`Ctmc`].
///
/// States are created by name; transitions carry positive rates.
/// Declaring the same transition twice accumulates the rates (useful
/// when several physical events map to the same state pair).
#[derive(Debug, Default)]
pub struct CtmcBuilder {
    names: Vec<String>,
    index: HashMap<String, usize>,
    transitions: Vec<(usize, usize, f64)>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CtmcBuilder::default()
    }

    /// Adds (or looks up) a state by name and returns its handle.
    pub fn state(&mut self, name: &str) -> StateId {
        if let Some(&i) = self.index.get(name) {
            return StateId(i);
        }
        let i = self.names.len();
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        StateId(i)
    }

    /// Number of states declared so far.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Adds a transition with the given positive rate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the rate is not finite
    /// and positive, or [`Error::Model`] for a self-loop (meaningless in
    /// a CTMC).
    pub fn transition(&mut self, from: StateId, to: StateId, rate: f64) -> Result<&mut Self> {
        ensure_finite_positive(rate, "transition rate")?;
        if from == to {
            return Err(Error::model(format!(
                "self-loop on state '{}' is not a CTMC transition",
                self.names[from.0]
            )));
        }
        if from.0 >= self.names.len() || to.0 >= self.names.len() {
            return Err(Error::model("state handle from another builder"));
        }
        self.transitions.push((from.0, to.0, rate));
        Ok(self)
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if no states were declared.
    pub fn build(self) -> Result<Ctmc> {
        let n = self.names.len();
        if n == 0 {
            return Err(Error::model("CTMC has no states"));
        }
        let mut out_rate = vec![0.0f64; n];
        for &(f, _, r) in &self.transitions {
            out_rate[f] += r;
        }
        // Assemble the full generator (diagonal included) once.
        let mut trips = self.transitions.clone();
        for (i, &r) in out_rate.iter().enumerate() {
            if r > 0.0 {
                trips.push((i, i, -r));
            }
        }
        let generator = CsrMatrix::from_triplets(n, n, &trips).map_err(crate::num_err)?;
        Ok(Ctmc {
            names: self.names,
            transitions: self.transitions,
            out_rate,
            generator,
        })
    }
}

impl Ctmc {
    /// Builds a chain directly from a state-name list and `(from, to,
    /// rate)` triplets, bypassing the name-interning builder — the
    /// streaming path used by reachability-graph generators that
    /// already hold a canonical state numbering. Duplicate `(from,
    /// to)` pairs accumulate, exactly like repeated
    /// [`CtmcBuilder::transition`] calls.
    ///
    /// Names are taken as-is; callers are responsible for uniqueness
    /// (a duplicated name only affects [`Ctmc::find_state`], which
    /// returns the first match).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for an empty state list, a self-loop,
    /// or an out-of-range state index, and
    /// [`Error::InvalidParameter`] for a rate that is not finite and
    /// positive.
    pub fn from_parts(names: Vec<String>, transitions: Vec<(usize, usize, f64)>) -> Result<Ctmc> {
        let n = names.len();
        if n == 0 {
            return Err(Error::model("CTMC has no states"));
        }
        let mut out_rate = vec![0.0f64; n];
        for &(f, t, r) in &transitions {
            if f >= n || t >= n {
                return Err(Error::model(format!(
                    "transition ({f}, {t}) out of range for {n} states"
                )));
            }
            if f == t {
                return Err(Error::model(format!(
                    "self-loop on state '{}' is not a CTMC transition",
                    names[f]
                )));
            }
            ensure_finite_positive(r, "transition rate")?;
            out_rate[f] += r;
        }
        let mut trips = transitions.clone();
        for (i, &r) in out_rate.iter().enumerate() {
            if r > 0.0 {
                trips.push((i, i, -r));
            }
        }
        let generator = CsrMatrix::from_triplets(n, n, &trips).map_err(crate::num_err)?;
        Ok(Ctmc {
            names,
            transitions,
            out_rate,
            generator,
        })
    }

    /// Handles of all states in index order — the counterpart of
    /// collecting [`CtmcBuilder::state`] return values when the chain
    /// was built via [`Ctmc::from_parts`].
    pub fn state_ids(&self) -> Vec<StateId> {
        (0..self.num_states()).map(StateId).collect()
    }
}

/// A finite continuous-time Markov chain.
///
/// Construct with [`CtmcBuilder`]. Solution methods live in the
/// `steady`, `transient`, `absorbing`, and `rewards` modules and are
/// inherent methods of this type.
#[derive(Debug, Clone)]
pub struct Ctmc {
    pub(crate) names: Vec<String>,
    pub(crate) transitions: Vec<(usize, usize, f64)>,
    pub(crate) out_rate: Vec<f64>,
    /// Full generator (including diagonal) in CSR form.
    pub(crate) generator: CsrMatrix,
}

impl Ctmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Name of a state.
    ///
    /// # Panics
    ///
    /// Panics if the handle is out of range (foreign handle).
    pub fn state_name(&self, s: StateId) -> &str {
        &self.names[s.0]
    }

    /// Looks a state up by name.
    pub fn find_state(&self, name: &str) -> Option<StateId> {
        self.names.iter().position(|n| n == name).map(StateId)
    }

    /// Number of transitions (as declared; parallel arcs counted
    /// separately).
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Total exit rate of each state.
    pub fn exit_rates(&self) -> &[f64] {
        &self.out_rate
    }

    /// The infinitesimal generator as a dense matrix (diagonal
    /// included). Intended for small chains and direct solvers.
    pub fn generator_dense(&self) -> DenseMatrix {
        self.generator.to_dense()
    }

    /// The generator in CSR form (diagonal included).
    pub fn generator(&self) -> &CsrMatrix {
        &self.generator
    }

    /// The uniformization rate `q > max_i |q_ii|` used by the transient
    /// solver.
    pub(crate) fn uniformization_rate(&self) -> f64 {
        self.out_rate.iter().fold(0.0f64, |m, &r| m.max(r)) * 1.02 + 1e-300
    }

    /// Uniformized DTMC transition matrix `P = I + Q/q` in CSR form.
    pub(crate) fn uniformized_dtmc(&self, q: f64) -> CsrMatrix {
        let n = self.num_states();
        let mut trips: Vec<(usize, usize, f64)> = self
            .transitions
            .iter()
            .map(|&(f, t, r)| (f, t, r / q))
            .collect();
        for (i, &r) in self.out_rate.iter().enumerate() {
            trips.push((i, i, 1.0 - r / q));
        }
        CsrMatrix::from_triplets(n, n, &trips).expect("valid by construction")
    }

    /// Validates an initial probability vector against this chain.
    pub(crate) fn check_distribution(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.num_states() {
            return Err(Error::invalid(format!(
                "distribution length {} != number of states {}",
                p.len(),
                self.num_states()
            )));
        }
        let mut total = 0.0;
        for (i, &v) in p.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::invalid(format!("p[{i}] = {v} must be >= 0")));
            }
            total += v;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(Error::invalid(format!(
                "distribution sums to {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// A point-mass initial distribution on `s`.
    pub fn point_mass(&self, s: StateId) -> Vec<f64> {
        let mut p = vec![0.0; self.num_states()];
        p[s.0] = 1.0;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_are_interned_by_name() {
        let mut b = CtmcBuilder::new();
        let a = b.state("up");
        let a2 = b.state("up");
        let c = b.state("down");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        assert_eq!(b.num_states(), 2);
    }

    #[test]
    fn transition_validation() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        assert!(b.transition(up, down, 0.0).is_err());
        assert!(b.transition(up, down, f64::NAN).is_err());
        assert!(b.transition(up, up, 1.0).is_err());
        assert!(b.transition(up, down, 1.0).is_ok());
    }

    #[test]
    fn parallel_arcs_accumulate() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(up, down, 2.0).unwrap();
        b.transition(down, up, 5.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.exit_rates()[0], 3.0);
        assert_eq!(c.generator().get(0, 1), 3.0);
        assert_eq!(c.generator().get(0, 0), -3.0);
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(CtmcBuilder::new().build().is_err());
    }

    #[test]
    fn lookup_and_names() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let c = {
            let down = b.state("down");
            b.transition(up, down, 1.0).unwrap();
            b.transition(down, up, 1.0).unwrap();
            b.build().unwrap()
        };
        assert_eq!(c.state_name(up), "up");
        assert_eq!(c.find_state("down").unwrap().index(), 1);
        assert!(c.find_state("nope").is_none());
    }

    #[test]
    fn distribution_validation() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.check_distribution(&[1.0, 0.0]).is_ok());
        assert!(c.check_distribution(&[0.5]).is_err());
        assert!(c.check_distribution(&[0.7, 0.7]).is_err());
        assert!(c.check_distribution(&[-0.1, 1.1]).is_err());
        assert_eq!(c.point_mass(down), vec![0.0, 1.0]);
    }
}
