//! Steady-state solution of irreducible CTMCs.

use crate::builder::Ctmc;
use crate::num_err;
use reliab_core::Result;
use reliab_numeric::{
    gth_steady_state_observed, power_method_observed, sor_steady_state_observed, IterativeOptions,
};
use reliab_obs as obs;

/// Emits the per-sweep `markov.iteration` trace event shared by every
/// steady-state method. Near-free when tracing is disabled (`event`
/// bails on one relaxed atomic load).
fn iteration_event(method: &'static str, iter: usize, residual: f64) {
    obs::event(
        "markov.iteration",
        &[
            ("method", method.into()),
            ("iter", iter.into()),
            ("residual", residual.into()),
        ],
    );
}

/// Chains at or below this size are solved by dense GTH by default;
/// larger chains use sparse SOR.
const GTH_SIZE_THRESHOLD: usize = 512;

/// Steady-state solution method selection.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SteadyStateMethod {
    /// Dense Grassmann–Taksar–Heyman elimination: exact (to round-off),
    /// subtraction-free, `O(n³)` time / `O(n²)` memory.
    Gth,
    /// Gauss–Seidel / SOR sweeps on the sparse generator: `O(nnz)` per
    /// sweep, preferred for large chains.
    Sor(IterativeOptions),
    /// Power iteration on the uniformized DTMC `P = I + Q/q`: the
    /// slowest-converging but most robust sweep, useful as a
    /// cross-check of the other methods.
    Power(IterativeOptions),
    /// Pick GTH for small chains and SOR otherwise.
    Auto,
}

/// A solved stationary distribution plus solver telemetry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SteadyReport {
    /// The stationary distribution.
    pub pi: Vec<f64>,
    /// The method that actually ran (`"gth"`, `"sor"`, or `"power"` —
    /// `Auto` resolves before solving).
    pub method: &'static str,
    /// Sweeps performed (for GTH: the `n` elimination stages).
    pub iterations: usize,
    /// Final convergence residual (0 for the direct GTH solve).
    pub residual: f64,
}

impl Ctmc {
    /// Stationary distribution with automatic method selection.
    ///
    /// # Errors
    ///
    /// * [`reliab_core::Error::Numerical`] — reducible chain (no unique
    ///   stationary vector).
    /// * [`reliab_core::Error::Convergence`] — SOR budget exhausted.
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        self.steady_state_with(&SteadyStateMethod::Auto)
    }

    /// Stationary distribution with an explicit method.
    ///
    /// # Errors
    ///
    /// See [`Ctmc::steady_state`].
    pub fn steady_state_with(&self, method: &SteadyStateMethod) -> Result<Vec<f64>> {
        self.steady_state_report(method).map(|r| r.pi)
    }

    /// Stationary distribution plus solver telemetry — which method
    /// ran, how many sweeps it took, and the final residual.
    ///
    /// # Errors
    ///
    /// See [`Ctmc::steady_state`].
    pub fn steady_state_report(&self, method: &SteadyStateMethod) -> Result<SteadyReport> {
        let _span = obs::span("markov.steady");
        let report = match method {
            SteadyStateMethod::Gth => self.gth_report(),
            SteadyStateMethod::Sor(opts) => self.sor_report(opts),
            SteadyStateMethod::Power(opts) => {
                let q = self.uniformization_rate();
                let p = self.uniformized_dtmc(q);
                let (pi, stats) = power_method_observed(&p.transpose(), opts, &mut |iter, res| {
                    iteration_event("power", iter, res);
                })
                .map_err(num_err)?;
                Ok(SteadyReport {
                    pi,
                    method: "power",
                    iterations: stats.iterations,
                    residual: stats.residual,
                })
            }
            SteadyStateMethod::Auto => {
                if self.num_states() <= GTH_SIZE_THRESHOLD {
                    self.gth_report()
                } else {
                    self.sor_report(&IterativeOptions::default())
                }
            }
        };
        if let Ok(r) = &report {
            obs::counter_add("markov.steady.solves", 1);
            obs::counter_add("markov.steady.iterations", r.iterations as u64);
        }
        report
    }

    fn gth_report(&self) -> Result<SteadyReport> {
        let pi = gth_steady_state_observed(&self.generator_dense(), &mut |k| {
            iteration_event("gth", k, 0.0);
        })
        .map_err(num_err)?;
        Ok(SteadyReport {
            pi,
            method: "gth",
            iterations: self.num_states(),
            residual: 0.0,
        })
    }

    fn sor_report(&self, opts: &IterativeOptions) -> Result<SteadyReport> {
        let (pi, stats) =
            sor_steady_state_observed(&self.generator().transpose(), opts, &mut |iter, res| {
                iteration_event("sor", iter, res);
            })
            .map_err(num_err)?;
        Ok(SteadyReport {
            pi,
            method: "sor",
            iterations: stats.iterations,
            residual: stats.residual,
        })
    }

    /// Long-run probability of being in any state of `up_states`
    /// (steady-state availability when those are the operational
    /// states).
    ///
    /// # Errors
    ///
    /// Propagates [`Ctmc::steady_state`] errors.
    pub fn steady_state_probability_of(&self, states: &[crate::StateId]) -> Result<f64> {
        let pi = self.steady_state()?;
        Ok(states.iter().map(|s| pi[s.index()]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    /// Classic two-component parallel system with a single shared
    /// repair facility (states = number of failed components).
    fn shared_repair_chain(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("0-failed");
        let s1 = b.state("1-failed");
        let s2 = b.state("2-failed");
        b.transition(s0, s1, 2.0 * lambda).unwrap();
        b.transition(s1, s2, lambda).unwrap();
        b.transition(s1, s0, mu).unwrap();
        b.transition(s2, s1, mu).unwrap(); // single crew: rate stays mu
        b.build().unwrap()
    }

    #[test]
    fn shared_repair_closed_form() {
        // Birth-death: pi1/pi0 = 2λ/μ, pi2/pi1 = λ/μ.
        let (l, m) = (0.01, 1.0);
        let c = shared_repair_chain(l, m);
        let pi = c.steady_state().unwrap();
        let r1 = 2.0 * l / m;
        let r2 = l / m;
        let norm = 1.0 + r1 + r1 * r2;
        assert!((pi[0] - 1.0 / norm).abs() < 1e-13);
        assert!((pi[1] - r1 / norm).abs() < 1e-13);
        assert!((pi[2] - r1 * r2 / norm).abs() < 1e-13);
    }

    #[test]
    fn methods_agree() {
        let c = shared_repair_chain(0.2, 1.5);
        let gth = c.steady_state_with(&SteadyStateMethod::Gth).unwrap();
        let sor = c
            .steady_state_with(&SteadyStateMethod::Sor(Default::default()))
            .unwrap();
        let power = c
            .steady_state_with(&SteadyStateMethod::Power(Default::default()))
            .unwrap();
        let auto = c.steady_state().unwrap();
        for i in 0..3 {
            assert!((gth[i] - sor[i]).abs() < 1e-9);
            assert!((gth[i] - power[i]).abs() < 1e-9);
            assert!((gth[i] - auto[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn reports_carry_method_and_iterations() {
        let c = shared_repair_chain(0.2, 1.5);
        let gth = c.steady_state_report(&SteadyStateMethod::Gth).unwrap();
        assert_eq!(gth.method, "gth");
        assert_eq!(gth.iterations, 3);
        assert_eq!(gth.residual, 0.0);

        let sor = c
            .steady_state_report(&SteadyStateMethod::Sor(Default::default()))
            .unwrap();
        assert_eq!(sor.method, "sor");
        assert!(sor.iterations > 0);
        assert!(sor.residual < 1e-12);

        let power = c
            .steady_state_report(&SteadyStateMethod::Power(Default::default()))
            .unwrap();
        assert_eq!(power.method, "power");
        assert!(power.iterations > sor.iterations, "power converges slower");
    }

    #[test]
    fn availability_of_up_states() {
        let c = shared_repair_chain(0.01, 1.0);
        let up: Vec<_> = [
            c.find_state("0-failed").unwrap(),
            c.find_state("1-failed").unwrap(),
        ]
        .to_vec();
        let a = c.steady_state_probability_of(&up).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((a - (pi[0] + pi[1])).abs() < 1e-15);
        assert!(a > 0.999);
    }

    #[test]
    fn reducible_chain_errors() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let absorbing = b.state("b");
        b.transition(a, absorbing, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.steady_state().is_err());
    }

    #[test]
    fn large_chain_uses_sor_and_matches_structure() {
        // 600-state birth-death chain exceeds the GTH threshold.
        let mut b = CtmcBuilder::new();
        let states: Vec<_> = (0..600).map(|i| b.state(&format!("s{i}"))).collect();
        for w in states.windows(2) {
            b.transition(w[0], w[1], 1.0).unwrap();
            b.transition(w[1], w[0], 2.0).unwrap();
        }
        let c = b.build().unwrap();
        let pi = c.steady_state().unwrap();
        // Geometric with ratio 1/2.
        assert!((pi[1] / pi[0] - 0.5).abs() < 1e-6);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
