//! Absorbing-chain analysis: MTTF and reliability.

use crate::builder::{Ctmc, StateId};
use crate::num_err;
use reliab_core::{Error, Result};
use reliab_numeric::DenseMatrix;

impl Ctmc {
    /// Mean time to absorption starting from `initial`, where
    /// `absorbing` lists the failure (absorbing) states.
    ///
    /// Solves `T τ = -1` on the transient sub-generator `T` and returns
    /// `Σ initial_i τ_i`. States listed as absorbing may still have
    /// outgoing transitions in the chain (e.g. repair transitions used
    /// by availability analyses); they are ignored here, which is
    /// exactly the standard "make failure states absorbing" surgery.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] — bad distribution, empty or
    ///   all-covering absorbing set.
    /// * [`Error::Numerical`] — some transient state cannot reach
    ///   absorption (infinite MTTF).
    pub fn mttf(&self, initial: &[f64], absorbing: &[StateId]) -> Result<f64> {
        self.check_distribution(initial)?;
        let n = self.num_states();
        let absorbing_mask = self.absorbing_mask(absorbing)?;
        // Map transient states to compact indices.
        let transient: Vec<usize> = (0..n).filter(|&i| !absorbing_mask[i]).collect();
        if transient.is_empty() {
            return Err(Error::invalid("every state is absorbing"));
        }
        let mut compact = vec![usize::MAX; n];
        for (c, &s) in transient.iter().enumerate() {
            compact[s] = c;
        }
        let m = transient.len();
        // Build the transient sub-generator (dense; absorbing analyses
        // in this workspace are small after lumping).
        let mut t = DenseMatrix::zeros(m, m);
        for &(f, to, r) in &self.transitions {
            if absorbing_mask[f] {
                continue;
            }
            let fi = compact[f];
            t.add_to(fi, fi, -r);
            if !absorbing_mask[to] {
                t.add_to(fi, compact[to], r);
            }
        }
        // τ = -T^{-1} 1  =>  solve T τ = -1.
        let rhs = vec![-1.0f64; m];
        let tau = t.lu_solve(&rhs).map_err(|e| match e {
            reliab_numeric::NumericError::Singular(_) => Error::numerical(
                "transient sub-generator is singular: some state never reaches absorption \
                 (MTTF diverges)"
                    .to_owned(),
            ),
            other => num_err(other),
        })?;
        let mut mttf = 0.0;
        for (c, &s) in transient.iter().enumerate() {
            mttf += initial[s] * tau[c];
        }
        if mttf < 0.0 || !mttf.is_finite() {
            return Err(Error::numerical(format!(
                "MTTF computation produced {mttf}; chain structure is inconsistent"
            )));
        }
        Ok(mttf)
    }

    /// Reliability at time `t`: the probability that, starting from
    /// `initial`, the chain has not yet entered any of the `absorbing`
    /// states, with those states made truly absorbing first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::mttf`] plus transient-solver errors.
    pub fn reliability_at(&self, initial: &[f64], absorbing: &[StateId], t: f64) -> Result<f64> {
        self.check_distribution(initial)?;
        let mask = self.absorbing_mask(absorbing)?;
        let chopped = self.make_absorbing(&mask)?;
        let pi = chopped.transient(initial, t)?;
        Ok(pi
            .iter()
            .enumerate()
            .filter(|(i, _)| !mask[*i])
            .map(|(_, p)| p)
            .sum())
    }

    /// Reliability at several time points, building the absorbing
    /// chain once and running one transient solve per point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::reliability_at`]; also rejects an
    /// unsorted or negative time grid.
    pub fn reliability_curve(
        &self,
        initial: &[f64],
        absorbing: &[StateId],
        times: &[f64],
    ) -> Result<Vec<f64>> {
        self.check_distribution(initial)?;
        let mut last = 0.0;
        for &t in times {
            if !(t.is_finite() && t >= last) {
                return Err(Error::invalid(format!(
                    "time grid must be sorted, non-negative, finite; saw {t} after {last}"
                )));
            }
            last = t;
        }
        let mask = self.absorbing_mask(absorbing)?;
        let chopped = self.make_absorbing(&mask)?;
        times
            .iter()
            .map(|&t| {
                let pi = chopped.transient(initial, t)?;
                Ok(pi
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !mask[*i])
                    .map(|(_, p)| p)
                    .sum())
            })
            .collect()
    }

    /// Probability of eventually being absorbed in each of the given
    /// absorbing states (with *all* of them made absorbing), starting
    /// from `initial`.
    ///
    /// Classic use: competing failure modes — "what fraction of
    /// failures are fail-safe vs fail-dangerous?" Solves one linear
    /// system per absorbing state on the shared LU-factored transient
    /// sub-generator.
    ///
    /// Returns one probability per entry of `absorbing`, summing to 1
    /// when absorption is certain.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::mttf`]; a transient class that never
    /// reaches any absorbing state yields a singular-system error.
    pub fn absorption_probabilities(
        &self,
        initial: &[f64],
        absorbing: &[StateId],
    ) -> Result<Vec<f64>> {
        self.check_distribution(initial)?;
        let n = self.num_states();
        let mask = self.absorbing_mask(absorbing)?;
        let transient: Vec<usize> = (0..n).filter(|&i| !mask[i]).collect();
        if transient.is_empty() {
            // Initial mass sits directly on absorbing states.
            return Ok(absorbing.iter().map(|s| initial[s.index()]).collect());
        }
        let mut compact = vec![usize::MAX; n];
        for (c, &s) in transient.iter().enumerate() {
            compact[s] = c;
        }
        let m = transient.len();
        let mut t = DenseMatrix::zeros(m, m);
        // Rates from transient states into each absorbing target.
        let mut into: Vec<Vec<f64>> = vec![vec![0.0; m]; absorbing.len()];
        let target_index: std::collections::HashMap<usize, usize> = absorbing
            .iter()
            .enumerate()
            .map(|(k, s)| (s.index(), k))
            .collect();
        for &(f, to, r) in &self.transitions {
            if mask[f] {
                continue;
            }
            let fi = compact[f];
            t.add_to(fi, fi, -r);
            if mask[to] {
                if let Some(&k) = target_index.get(&to) {
                    into[k][fi] += r;
                }
            } else {
                t.add_to(fi, compact[to], r);
            }
        }
        // For each target a: solve T x = -into_a; absorption prob from
        // state i is x[i]; weight by the initial distribution.
        let mut out = Vec::with_capacity(absorbing.len());
        for (k, s) in absorbing.iter().enumerate() {
            let rhs: Vec<f64> = into[k].iter().map(|&v| -v).collect();
            let x = t.lu_solve(&rhs).map_err(|e| match e {
                reliab_numeric::NumericError::Singular(_) => Error::numerical(
                    "transient sub-generator is singular: some state never absorbs".to_owned(),
                ),
                other => num_err(other),
            })?;
            let mut p = initial[s.index()]; // mass starting on the target
            for (c, &st) in transient.iter().enumerate() {
                p += initial[st] * x[c];
            }
            out.push(p.clamp(0.0, 1.0));
        }
        Ok(out)
    }

    /// Validates the absorbing set and converts it into a mask.
    fn absorbing_mask(&self, absorbing: &[StateId]) -> Result<Vec<bool>> {
        if absorbing.is_empty() {
            return Err(Error::invalid("absorbing state set is empty"));
        }
        let n = self.num_states();
        let mut mask = vec![false; n];
        for s in absorbing {
            if s.index() >= n {
                return Err(Error::invalid(format!(
                    "absorbing state index {} out of range",
                    s.index()
                )));
            }
            mask[s.index()] = true;
        }
        Ok(mask)
    }

    /// Returns a copy of the chain with all transitions out of masked
    /// states removed.
    fn make_absorbing(&self, mask: &[bool]) -> Result<Ctmc> {
        let mut b = crate::CtmcBuilder::new();
        // Recreate all states (same order => same indices).
        let ids: Vec<StateId> = self.names.iter().map(|n| b.state(n)).collect();
        for &(f, to, r) in &self.transitions {
            if !mask[f] {
                b.transition(ids[f], ids[to], r)?;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use crate::CtmcBuilder;

    #[test]
    fn single_component_mttf() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 0.25).unwrap();
        let c = b.build().unwrap();
        let mttf = c.mttf(&c.point_mass(up), &[down]).unwrap();
        assert!((mttf - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_component_series_mttf() {
        // Both must work; either failing kills the system.
        // MTTF = 1/(l1+l2).
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 0.1).unwrap();
        b.transition(up, down, 0.3).unwrap();
        let c = b.build().unwrap();
        let mttf = c.mttf(&c.point_mass(up), &[down]).unwrap();
        assert!((mttf - 2.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_redundant_mttf_with_repair() {
        // Two identical units, one repair crew; system fails when both
        // are down. Known closed form:
        // MTTF = (3λ + μ) / (2λ²).
        let (l, m) = (0.01f64, 1.0f64);
        let mut b = CtmcBuilder::new();
        let s0 = b.state("both-up");
        let s1 = b.state("one-up");
        let s2 = b.state("none-up");
        b.transition(s0, s1, 2.0 * l).unwrap();
        b.transition(s1, s0, m).unwrap();
        b.transition(s1, s2, l).unwrap();
        let c = b.build().unwrap();
        let mttf = c.mttf(&c.point_mass(s0), &[s2]).unwrap();
        let expected = (3.0 * l + m) / (2.0 * l * l);
        assert!(
            (mttf - expected).abs() < 1e-6 * expected,
            "{mttf} vs {expected}"
        );
    }

    #[test]
    fn mttf_diverges_when_absorption_unreachable() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let bb = b.state("b");
        let dead = b.state("dead");
        // a <-> b, dead unreachable.
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, a, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.mttf(&c.point_mass(a), &[dead]).is_err());
    }

    #[test]
    fn reliability_matches_exponential_for_single_component() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 0.5).unwrap();
        // Add a repair arc: reliability analysis must cut it.
        b.transition(down, up, 10.0).unwrap();
        let c = b.build().unwrap();
        let p0 = c.point_mass(up);
        for &t in &[0.1, 1.0, 3.0] {
            let r = c.reliability_at(&p0, &[down], t).unwrap();
            assert!((r - (-0.5 * t).exp()).abs() < 1e-9, "t = {t}: r = {r}");
        }
    }

    #[test]
    fn reliability_is_monotone_decreasing() {
        let (l, m) = (0.3, 2.0);
        let mut b = CtmcBuilder::new();
        let s0 = b.state("2up");
        let s1 = b.state("1up");
        let s2 = b.state("0up");
        b.transition(s0, s1, 2.0 * l).unwrap();
        b.transition(s1, s0, m).unwrap();
        b.transition(s1, s2, l).unwrap();
        let c = b.build().unwrap();
        let p0 = c.point_mass(s0);
        let mut last = 1.0;
        for i in 1..20 {
            let r = c.reliability_at(&p0, &[s2], i as f64).unwrap();
            assert!(r <= last + 1e-12, "non-monotone at t = {i}");
            last = r;
        }
    }

    #[test]
    fn reliability_curve_matches_pointwise_calls() {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("2up");
        let s1 = b.state("1up");
        let s2 = b.state("0up");
        b.transition(s0, s1, 0.4).unwrap();
        b.transition(s1, s0, 2.0).unwrap();
        b.transition(s1, s2, 0.2).unwrap();
        let c = b.build().unwrap();
        let p0 = c.point_mass(s0);
        let times = [0.5, 1.0, 5.0, 20.0];
        let curve = c.reliability_curve(&p0, &[s2], &times).unwrap();
        for (t, r) in times.iter().zip(&curve) {
            let single = c.reliability_at(&p0, &[s2], *t).unwrap();
            assert!((r - single).abs() < 1e-12);
        }
        // Grid validation.
        assert!(c.reliability_curve(&p0, &[s2], &[2.0, 1.0]).is_err());
        assert!(c.reliability_curve(&p0, &[s2], &[-1.0]).is_err());
    }

    #[test]
    fn validation_of_absorbing_sets() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.mttf(&c.point_mass(up), &[]).is_err());
        assert!(c.mttf(&c.point_mass(up), &[up, down]).is_err());
    }

    #[test]
    fn absorption_probabilities_split_by_coverage() {
        // 2up --2λc--> 1up --λ--> covered-fail
        // 2up --2λ(1-c)--> uncovered-fail
        let (l, c) = (0.001f64, 0.9f64);
        let mut b = CtmcBuilder::new();
        let s2 = b.state("2up");
        let s1 = b.state("1up");
        let fc = b.state("covered-fail");
        let fu = b.state("uncovered-fail");
        b.transition(s2, s1, 2.0 * l * c).unwrap();
        b.transition(s2, fu, 2.0 * l * (1.0 - c)).unwrap();
        b.transition(s1, fc, l).unwrap();
        let chain = b.build().unwrap();
        let p = chain
            .absorption_probabilities(&chain.point_mass(s2), &[fc, fu])
            .unwrap();
        // P(uncovered) = (1-c), P(covered path) = c.
        assert!((p[0] - c).abs() < 1e-12, "covered: {}", p[0]);
        assert!((p[1] - (1.0 - c)).abs() < 1e-12, "uncovered: {}", p[1]);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorption_probabilities_with_repair_loops() {
        // Repair between transient states must not break the split.
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let bb = b.state("b");
        let left = b.state("left");
        let right = b.state("right");
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, a, 3.0).unwrap();
        b.transition(a, left, 2.0).unwrap();
        b.transition(bb, right, 1.0).unwrap();
        let chain = b.build().unwrap();
        let p = chain
            .absorption_probabilities(&chain.point_mass(a), &[left, right])
            .unwrap();
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
        // First-step analysis: from a, P(left) = 2/3 + 1/3·P_b(left);
        // from b, P_b(left) = 3/4·P_a(left). => P_a = 2/3 + 1/4 P_a
        // => P_a(left) = 8/9.
        assert!((p[0] - 8.0 / 9.0).abs() < 1e-12, "{}", p[0]);
    }

    #[test]
    fn absorption_from_initial_mass_on_target() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let dead = b.state("dead");
        b.transition(a, dead, 1.0).unwrap();
        let chain = b.build().unwrap();
        let p = chain
            .absorption_probabilities(&[0.25, 0.75], &[dead])
            .unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mttf_from_mixed_initial_distribution() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let mid = b.state("mid");
        let dead = b.state("dead");
        b.transition(a, mid, 1.0).unwrap();
        b.transition(mid, dead, 1.0).unwrap();
        let c = b.build().unwrap();
        // From a: 2.0; from mid: 1.0; mixture 50/50: 1.5.
        let mttf = c.mttf(&[0.5, 0.5, 0.0], &[dead]).unwrap();
        assert!((mttf - 1.5).abs() < 1e-12);
    }
}
