//! Discrete-time Markov chains (used standalone and as embedded chains
//! of semi-Markov processes).

use crate::num_err;
use reliab_core::{Error, Result};
use reliab_numeric::{gth_steady_state, power_method, CsrMatrix, DenseMatrix, IterativeOptions};

/// A finite discrete-time Markov chain with row-stochastic transition
/// matrix `P`.
#[derive(Debug, Clone)]
pub struct Dtmc {
    p: CsrMatrix,
}

impl Dtmc {
    /// Creates a DTMC from `(from, to, probability)` triplets over `n`
    /// states. Each row must sum to 1 (within `1e-9`); missing mass is
    /// rejected rather than silently padded with self-loops.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on malformed rows or
    /// probabilities outside `[0, 1]`.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid("DTMC needs at least one state"));
        }
        for &(f, t, p) in triplets {
            if f >= n || t >= n {
                return Err(Error::invalid(format!(
                    "transition ({f}, {t}) out of range for {n} states"
                )));
            }
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(Error::invalid(format!(
                    "transition probability {p} at ({f}, {t}) outside [0,1]"
                )));
            }
        }
        let p = CsrMatrix::from_triplets(n, n, triplets).map_err(num_err)?;
        for i in 0..n {
            let row_sum: f64 = p.row(i).map(|(_, v)| v).sum();
            if (row_sum - 1.0).abs() > 1e-9 {
                return Err(Error::invalid(format!(
                    "row {i} sums to {row_sum}, expected 1"
                )));
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.nrows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// One step of the chain: `π' = π P`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a length mismatch.
    pub fn step(&self, pi: &[f64]) -> Result<Vec<f64>> {
        self.p.vecmat(pi).map_err(num_err)
    }

    /// Distribution after `steps` transitions from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a malformed initial
    /// distribution.
    pub fn transient(&self, initial: &[f64], steps: usize) -> Result<Vec<f64>> {
        let n = self.num_states();
        if initial.len() != n {
            return Err(Error::invalid(format!(
                "distribution length {} != number of states {n}",
                initial.len()
            )));
        }
        let total: f64 = initial.iter().sum();
        if initial.iter().any(|&p| !p.is_finite() || p < 0.0) || (total - 1.0).abs() > 1e-9 {
            return Err(Error::invalid("initial vector is not a distribution"));
        }
        let mut pi = initial.to_vec();
        for _ in 0..steps {
            pi = self.step(&pi)?;
        }
        Ok(pi)
    }

    /// Probability of eventual absorption in each state of `targets`
    /// (all made absorbing), starting from `initial`.
    ///
    /// Solves `(I - P_TT) x = P_T,a` per target on the transient block.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for empty/invalid targets
    /// and [`Error::Numerical`] when some transient class never
    /// reaches the targets.
    pub fn absorption_probabilities(&self, initial: &[f64], targets: &[usize]) -> Result<Vec<f64>> {
        let n = self.num_states();
        if targets.is_empty() {
            return Err(Error::invalid("target set is empty"));
        }
        let mut is_target = vec![false; n];
        for &t in targets {
            if t >= n {
                return Err(Error::invalid(format!("target {t} out of range")));
            }
            is_target[t] = true;
        }
        if initial.len() != n {
            return Err(Error::invalid(format!(
                "distribution length {} != number of states {n}",
                initial.len()
            )));
        }
        let transient: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
        let mut compact = vec![usize::MAX; n];
        for (c, &s) in transient.iter().enumerate() {
            compact[s] = c;
        }
        let m = transient.len();
        let mut out = Vec::with_capacity(targets.len());
        // (I - P_TT)
        let mut a = DenseMatrix::identity(m);
        for (ci, &i) in transient.iter().enumerate() {
            for (j, v) in self.p.row(i) {
                if !is_target[j] {
                    a.add_to(ci, compact[j], -v);
                }
            }
        }
        for &t in targets {
            let mut rhs = vec![0.0f64; m];
            for (ci, &i) in transient.iter().enumerate() {
                for (j, v) in self.p.row(i) {
                    if j == t {
                        rhs[ci] += v;
                    }
                }
            }
            let x = if m > 0 {
                a.lu_solve(&rhs)
                    .map_err(|e| Error::numerical(format!("absorption system singular: {e}")))?
            } else {
                Vec::new()
            };
            let mut p = initial[t];
            for (ci, &i) in transient.iter().enumerate() {
                p += initial[i] * x[ci];
            }
            out.push(p.clamp(0.0, 1.0));
        }
        Ok(out)
    }

    /// Stationary distribution. Uses GTH on `P - I` (exact, handles
    /// periodic chains) for small chains, power iteration beyond.
    ///
    /// # Errors
    ///
    /// Returns solver errors for reducible chains or non-convergence.
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        let n = self.num_states();
        if n <= 512 {
            // P - I is a generator-like matrix suitable for GTH.
            let mut q = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for (j, v) in self.p.row(i) {
                    if i == j {
                        continue;
                    }
                    q.add_to(i, j, v);
                }
            }
            gth_steady_state(&q).map_err(num_err)
        } else {
            power_method(&self.p.transpose(), &IterativeOptions::default()).map_err(num_err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Dtmc::from_triplets(0, &[]).is_err());
        // Row sums must be 1.
        assert!(Dtmc::from_triplets(2, &[(0, 1, 0.5), (1, 0, 1.0)]).is_err());
        assert!(Dtmc::from_triplets(2, &[(0, 1, 1.5), (1, 0, 1.0)]).is_err());
        assert!(Dtmc::from_triplets(1, &[(0, 0, 1.0)]).is_ok());
    }

    #[test]
    fn two_state_stationary() {
        let d = Dtmc::from_triplets(2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 0, 0.25), (1, 1, 0.75)])
            .unwrap();
        let pi = d.steady_state().unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_chain_solved_by_gth() {
        // Two-state swap is periodic; power iteration would oscillate,
        // GTH gives the stationary measure (1/2, 1/2).
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = d.steady_state().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-13);
    }

    #[test]
    fn step_evolves_distribution() {
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = d.step(&[1.0, 0.0]).unwrap();
        assert_eq!(pi, vec![0.0, 1.0]);
        assert!(d.step(&[1.0]).is_err());
    }

    #[test]
    fn transient_n_steps() {
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(d.transient(&[1.0, 0.0], 0).unwrap(), vec![1.0, 0.0]);
        assert_eq!(d.transient(&[1.0, 0.0], 3).unwrap(), vec![0.0, 1.0]);
        assert_eq!(d.transient(&[1.0, 0.0], 4).unwrap(), vec![1.0, 0.0]);
        assert!(d.transient(&[0.5, 0.6], 1).is_err());
    }

    #[test]
    fn gamblers_ruin_absorption() {
        // States 0..=3; 0 and 3 absorbing; fair coin from 1 and 2.
        // P(reach 3 | start 1) = 1/3.
        let d = Dtmc::from_triplets(
            4,
            &[
                (0, 0, 1.0),
                (3, 3, 1.0),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
            ],
        )
        .unwrap();
        let p = d
            .absorption_probabilities(&[0.0, 1.0, 0.0, 0.0], &[0, 3])
            .unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absorption_validation() {
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(d.absorption_probabilities(&[1.0, 0.0], &[]).is_err());
        assert!(d.absorption_probabilities(&[1.0, 0.0], &[5]).is_err());
        assert!(d.absorption_probabilities(&[1.0], &[1]).is_err());
        let p = d.absorption_probabilities(&[1.0, 0.0], &[1]).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12);
    }
}
