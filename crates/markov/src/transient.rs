//! Transient solution by uniformization (Jensen's method).

use crate::builder::Ctmc;
use crate::num_err;
use reliab_core::{Error, Result};
use reliab_numeric::poisson_weights;
use reliab_obs as obs;

/// Options for the uniformization transient solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Bound on the truncated Poisson tail mass (solution error is of
    /// the same order).
    pub epsilon: f64,
    /// If set, stop the Poisson sum early once successive uniformized
    /// DTMC iterates differ by less than this threshold in `∞`-norm —
    /// the classic "steady-state detection" optimization that turns the
    /// `O(q·t)` cost of stiff problems into `O(mixing time)`.
    pub steady_state_detection: Option<f64>,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-10,
            steady_state_detection: Some(1e-12),
        }
    }
}

impl TransientOptions {
    fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(Error::invalid(format!(
                "epsilon must lie in (0,1), got {}",
                self.epsilon
            )));
        }
        if let Some(d) = self.steady_state_detection {
            if d.is_nan() || d <= 0.0 {
                return Err(Error::invalid(format!(
                    "steady-state detection threshold must be positive, got {d}"
                )));
            }
        }
        Ok(())
    }
}

/// A transient distribution plus uniformization telemetry.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TransientReport {
    /// The state-probability vector at the requested time.
    pub distribution: Vec<f64>,
    /// Sparse matrix–vector products performed (the dominant cost).
    pub matvecs: usize,
    /// Number of significant Poisson terms in the truncated sum.
    pub poisson_terms: usize,
    /// If steady-state detection fired, the term index at which the
    /// uniformized iterate stopped changing.
    pub converged_at: Option<usize>,
}

impl Ctmc {
    /// State-probability vector at time `t`, starting from `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a bad distribution,
    /// negative `t`, or bad options; numerical errors propagate from the
    /// Poisson-weight computation.
    pub fn transient(&self, initial: &[f64], t: f64) -> Result<Vec<f64>> {
        self.transient_with(initial, t, &TransientOptions::default())
    }

    /// [`Ctmc::transient`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`Ctmc::transient`].
    pub fn transient_with(
        &self,
        initial: &[f64],
        t: f64,
        opts: &TransientOptions,
    ) -> Result<Vec<f64>> {
        self.transient_report(initial, t, opts)
            .map(|r| r.distribution)
    }

    /// [`Ctmc::transient_with`] plus solver telemetry: matrix–vector
    /// product count, Poisson truncation width, and whether steady-state
    /// detection cut the sum short.
    ///
    /// # Errors
    ///
    /// See [`Ctmc::transient`].
    pub fn transient_report(
        &self,
        initial: &[f64],
        t: f64,
        opts: &TransientOptions,
    ) -> Result<TransientReport> {
        let _span = obs::span("markov.transient");
        self.check_distribution(initial)?;
        opts.validate()?;
        if t.is_nan() || t < 0.0 || !t.is_finite() {
            return Err(Error::invalid(format!(
                "time must be finite and >= 0, got {t}"
            )));
        }
        if t == 0.0 {
            return Ok(TransientReport {
                distribution: initial.to_vec(),
                matvecs: 0,
                poisson_terms: 0,
                converged_at: None,
            });
        }
        let q = self.uniformization_rate();
        if q <= 1e-299 {
            // No transitions at all: distribution never moves.
            return Ok(TransientReport {
                distribution: initial.to_vec(),
                matvecs: 0,
                poisson_terms: 0,
                converged_at: None,
            });
        }
        let p = self.uniformized_dtmc(q);
        let w = poisson_weights(q * t, opts.epsilon).map_err(num_err)?;

        let n = self.num_states();
        let mut v = initial.to_vec();
        let mut out = vec![0.0f64; n];
        let mut converged_at: Option<usize> = None;
        let mut matvecs = 0usize;

        // Advance to the left truncation point, checking for early
        // steady-state en route.
        for _k in 0..w.left {
            let next = p.vecmat(&v).map_err(num_err)?;
            matvecs += 1;
            if let Some(thresh) = opts.steady_state_detection {
                if max_abs_diff(&v, &next) < thresh {
                    v = next;
                    converged_at = Some(0);
                    break;
                }
            }
            v = next;
        }

        if converged_at.is_none() {
            for (idx, &wk) in w.weights.iter().enumerate() {
                for i in 0..n {
                    out[i] += wk * v[i];
                }
                if idx + 1 < w.weights.len() {
                    let next = p.vecmat(&v).map_err(num_err)?;
                    matvecs += 1;
                    if let Some(thresh) = opts.steady_state_detection {
                        if max_abs_diff(&v, &next) < thresh {
                            v = next;
                            converged_at = Some(idx + 1);
                            break;
                        }
                    }
                    v = next;
                }
            }
        }

        if let Some(start) = converged_at {
            // The iterate has converged: the remaining Poisson mass all
            // multiplies (approximately) the same vector.
            let consumed: f64 = w.weights[..start].iter().sum();
            let remaining = 1.0 - consumed;
            for i in 0..n {
                out[i] += remaining * v[i];
            }
        }

        // Clean round-off: clamp and renormalize.
        let mut total = 0.0;
        for o in &mut out {
            *o = o.max(0.0);
            total += *o;
        }
        if total > 0.0 {
            for o in &mut out {
                *o /= total;
            }
        }
        obs::event(
            "markov.transient.point",
            &[
                ("t", t.into()),
                ("matvecs", matvecs.into()),
                ("poisson_terms", w.weights.len().into()),
            ],
        );
        obs::counter_add("markov.transient.points", 1);
        obs::counter_add("markov.transient.matvecs", matvecs as u64);
        Ok(TransientReport {
            distribution: out,
            matvecs,
            poisson_terms: w.weights.len(),
            converged_at,
        })
    }

    /// Transient distributions at several time points, evaluated
    /// concurrently across `jobs` threads (`0` means one thread per
    /// available CPU). Each point is solved independently from `t = 0`,
    /// so results are bitwise identical to calling
    /// [`Ctmc::transient_with`] per point — the parallelism only changes
    /// wall time, never values.
    ///
    /// # Errors
    ///
    /// Per-point errors surface as the error of the earliest failing
    /// time, matching the sequential loop's behavior.
    pub fn transient_many(
        &self,
        initial: &[f64],
        times: &[f64],
        opts: &TransientOptions,
        jobs: usize,
    ) -> Result<Vec<Vec<f64>>> {
        Ok(self
            .transient_many_report(initial, times, opts, jobs)?
            .into_iter()
            .map(|r| r.distribution)
            .collect())
    }

    /// [`Ctmc::transient_many`] with per-point telemetry.
    ///
    /// # Errors
    ///
    /// See [`Ctmc::transient_many`].
    pub fn transient_many_report(
        &self,
        initial: &[f64],
        times: &[f64],
        opts: &TransientOptions,
        jobs: usize,
    ) -> Result<Vec<TransientReport>> {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            jobs
        };
        let workers = jobs.min(times.len());
        if workers <= 1 {
            return times
                .iter()
                .map(|&t| self.transient_report(initial, t, opts))
                .collect();
        }

        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let trace = obs::current_trace_id();
        let mut collected: Vec<(usize, Result<TransientReport>)> = Vec::with_capacity(times.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let _trace = obs::set_trace_id(trace);
                        let mut local = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= times.len() {
                                return local;
                            }
                            local.push((idx, self.transient_report(initial, times[idx], opts)));
                        }
                    })
                })
                .collect();
            for h in handles {
                // Worker closures don't panic except on internal bugs,
                // where propagating the panic is the right outcome.
                collected.extend(h.join().expect("transient worker panicked"));
            }
        });
        collected.sort_by_key(|(idx, _)| *idx);
        collected.into_iter().map(|(_, r)| r).collect()
    }

    /// Expected total time spent in each state over `[0, t]`
    /// (the integral `∫₀ᵗ π(u) du`), by the uniformization identity
    /// `∫₀ᵗ pois_k(qu) du = (1/q)(1 - Σ_{j≤k} pois_j(qt))`.
    ///
    /// Dividing by `t` gives interval availability when summed over up
    /// states.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::transient`].
    pub fn accumulated(&self, initial: &[f64], t: f64, epsilon: f64) -> Result<Vec<f64>> {
        self.check_distribution(initial)?;
        if t.is_nan() || t < 0.0 || !t.is_finite() {
            return Err(Error::invalid(format!(
                "time must be finite and >= 0, got {t}"
            )));
        }
        let n = self.num_states();
        if t == 0.0 {
            return Ok(vec![0.0; n]);
        }
        let q = self.uniformization_rate();
        if q <= 1e-299 {
            return Ok(initial.iter().map(|&p| p * t).collect());
        }
        let p = self.uniformized_dtmc(q);
        let w = poisson_weights(q * t, epsilon).map_err(num_err)?;

        // cum(k) = sum of weights for j <= k; weights below w.left are
        // negligible by construction.
        let mut v = initial.to_vec();
        let mut out = vec![0.0f64; n];
        // Terms k < w.left have (1 - cum_k) ≈ 1.
        for _k in 0..w.left {
            for i in 0..n {
                out[i] += v[i] / q;
            }
            v = p.vecmat(&v).map_err(num_err)?;
        }
        let mut cum = 0.0;
        for (idx, &wk) in w.weights.iter().enumerate() {
            cum += wk;
            let coeff = (1.0 - cum).max(0.0) / q;
            for i in 0..n {
                out[i] += coeff * v[i];
            }
            if idx + 1 < w.weights.len() {
                v = p.vecmat(&v).map_err(num_err)?;
            }
        }
        Ok(out)
    }
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, lambda).unwrap();
        b.transition(down, up, mu).unwrap();
        b.build().unwrap()
    }

    /// Closed-form availability of the two-state chain starting up:
    /// A(t) = mu/(l+m) + l/(l+m) e^{-(l+m)t}.
    fn two_state_avail(l: f64, m: f64, t: f64) -> f64 {
        m / (l + m) + l / (l + m) * (-(l + m) * t).exp()
    }

    #[test]
    fn matches_two_state_closed_form() {
        let (l, m) = (0.4, 1.7);
        let c = two_state(l, m);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        for &t in &[0.0, 0.1, 0.5, 1.0, 5.0, 50.0] {
            let pi = c.transient(&p0, t).unwrap();
            assert!(
                (pi[0] - two_state_avail(l, m, t)).abs() < 1e-9,
                "t = {t}: {} vs {}",
                pi[0],
                two_state_avail(l, m, t)
            );
        }
    }

    #[test]
    fn long_horizon_reaches_steady_state() {
        let c = two_state(1.0, 2.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let pi_t = c.transient(&p0, 1e4).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((pi_t[0] - pi[0]).abs() < 1e-9);
        assert!((pi_t[1] - pi[1]).abs() < 1e-9);
    }

    #[test]
    fn steady_state_detection_agrees_with_full_sum() {
        // Stiff chain: fast repair, slow failure, long horizon.
        let c = two_state(1e-4, 100.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let with = c
            .transient_with(
                &p0,
                1000.0,
                &TransientOptions {
                    epsilon: 1e-12,
                    steady_state_detection: Some(1e-14),
                },
            )
            .unwrap();
        let without = c
            .transient_with(
                &p0,
                1000.0,
                &TransientOptions {
                    epsilon: 1e-12,
                    steady_state_detection: None,
                },
            )
            .unwrap();
        assert!((with[0] - without[0]).abs() < 1e-9);
    }

    #[test]
    fn options_and_inputs_validated() {
        let c = two_state(1.0, 1.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        assert!(c.transient(&p0, -1.0).is_err());
        assert!(c.transient(&[0.5, 0.6], 1.0).is_err());
        assert!(c
            .transient_with(
                &p0,
                1.0,
                &TransientOptions {
                    epsilon: 0.0,
                    steady_state_detection: None
                }
            )
            .is_err());
        assert!(c
            .transient_with(
                &p0,
                1.0,
                &TransientOptions {
                    epsilon: 1e-10,
                    steady_state_detection: Some(-1.0)
                }
            )
            .is_err());
    }

    #[test]
    fn t_zero_is_identity() {
        let c = two_state(1.0, 1.0);
        let p0 = vec![0.25, 0.75];
        assert_eq!(c.transient(&p0, 0.0).unwrap(), p0);
    }

    #[test]
    fn accumulated_matches_derivative_relation() {
        // For the two-state chain, ∫ A(u) du has closed form:
        // t*m/(l+m) + l/(l+m)^2 (1 - e^{-(l+m)t}).
        let (l, m) = (0.5, 2.0);
        let c = two_state(l, m);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        for &t in &[0.5, 2.0, 10.0] {
            let acc = c.accumulated(&p0, t, 1e-12).unwrap();
            let s = l + m;
            let expected_up = t * m / s + l / (s * s) * (1.0 - (-s * t).exp());
            assert!(
                (acc[0] - expected_up).abs() < 1e-8,
                "t = {t}: {} vs {expected_up}",
                acc[0]
            );
            // Total time accounted for must equal t.
            assert!((acc[0] + acc[1] - t).abs() < 1e-8);
        }
    }

    #[test]
    fn transient_many_matches_sequential_bitwise() {
        let c = two_state(0.4, 1.7);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let times = [0.0, 0.1, 0.5, 1.0, 5.0, 50.0, 200.0];
        let opts = TransientOptions::default();
        let sequential: Vec<_> = times
            .iter()
            .map(|&t| c.transient_with(&p0, t, &opts).unwrap())
            .collect();
        for jobs in [1, 2, 4, 0] {
            let parallel = c.transient_many(&p0, &times, &opts, jobs).unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn transient_many_surfaces_earliest_error() {
        let c = two_state(1.0, 1.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let times = [1.0, -1.0, 2.0];
        assert!(c
            .transient_many(&p0, &times, &TransientOptions::default(), 4)
            .is_err());
    }

    #[test]
    fn report_counts_work() {
        let c = two_state(0.4, 1.7);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        let r = c
            .transient_report(&p0, 2.0, &TransientOptions::default())
            .unwrap();
        assert!(r.matvecs > 0);
        assert!(r.poisson_terms > 0);
        // Stiff long horizon: steady-state detection should fire and cap
        // the matvec count far below the Poisson width q*t.
        let stiff = two_state(1e-4, 100.0);
        let s0 = stiff.point_mass(stiff.find_state("up").unwrap());
        let r = stiff
            .transient_report(&s0, 1000.0, &TransientOptions::default())
            .unwrap();
        assert!(r.converged_at.is_some());
        assert!((r.matvecs as f64) < 0.5 * 100.0 * 1000.0);
        // t = 0 costs nothing.
        let r0 = c
            .transient_report(&p0, 0.0, &TransientOptions::default())
            .unwrap();
        assert_eq!(r0.matvecs, 0);
    }

    #[test]
    fn accumulated_zero_horizon() {
        let c = two_state(1.0, 1.0);
        let p0 = c.point_mass(c.find_state("up").unwrap());
        assert_eq!(c.accumulated(&p0, 0.0, 1e-10).unwrap(), vec![0.0, 0.0]);
    }
}
