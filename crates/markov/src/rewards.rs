//! Markov reward models: rate rewards attached to states.

use crate::builder::Ctmc;
use reliab_core::{Error, Result};

impl Ctmc {
    fn check_rewards(&self, rewards: &[f64]) -> Result<()> {
        if rewards.len() != self.num_states() {
            return Err(Error::invalid(format!(
                "reward vector length {} != number of states {}",
                rewards.len(),
                self.num_states()
            )));
        }
        if let Some(bad) = rewards.iter().find(|r| !r.is_finite()) {
            return Err(Error::invalid(format!("non-finite reward {bad}")));
        }
        Ok(())
    }

    /// Expected steady-state reward rate `Σ_i π_i r_i`.
    ///
    /// With `r_i = 1` on up states this is steady-state availability;
    /// with `r_i` = performance levels it is the performability measure
    /// of the tutorial's composite models.
    ///
    /// # Errors
    ///
    /// Propagates steady-state solver errors; rejects malformed reward
    /// vectors.
    pub fn expected_steady_state_reward(&self, rewards: &[f64]) -> Result<f64> {
        self.check_rewards(rewards)?;
        let pi = self.steady_state()?;
        Ok(pi.iter().zip(rewards).map(|(p, r)| p * r).sum())
    }

    /// Expected instantaneous reward rate at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors.
    pub fn expected_reward_at(&self, initial: &[f64], rewards: &[f64], t: f64) -> Result<f64> {
        self.check_rewards(rewards)?;
        let pi = self.transient(initial, t)?;
        Ok(pi.iter().zip(rewards).map(|(p, r)| p * r).sum())
    }

    /// Expected reward accumulated over `[0, t]`:
    /// `E[∫₀ᵗ r(X_u) du]`.
    ///
    /// # Errors
    ///
    /// Propagates accumulated-solver errors.
    pub fn expected_accumulated_reward(
        &self,
        initial: &[f64],
        rewards: &[f64],
        t: f64,
    ) -> Result<f64> {
        self.check_rewards(rewards)?;
        let acc = self.accumulated(initial, t, 1e-12)?;
        Ok(acc.iter().zip(rewards).map(|(a, r)| a * r).sum())
    }

    /// Interval (time-averaged) reward over `[0, t]`.
    ///
    /// # Errors
    ///
    /// Propagates accumulated-solver errors; rejects `t <= 0`.
    pub fn expected_interval_reward(
        &self,
        initial: &[f64],
        rewards: &[f64],
        t: f64,
    ) -> Result<f64> {
        if t.is_nan() || t <= 0.0 {
            return Err(Error::invalid(format!(
                "interval reward needs t > 0, got {t}"
            )));
        }
        Ok(self.expected_accumulated_reward(initial, rewards, t)? / t)
    }
}

#[cfg(test)]
mod tests {
    use crate::CtmcBuilder;

    #[test]
    fn availability_as_reward() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 9.0).unwrap();
        let c = b.build().unwrap();
        let a = c.expected_steady_state_reward(&[1.0, 0.0]).unwrap();
        assert!((a - 0.9).abs() < 1e-13);
    }

    #[test]
    fn performability_levels() {
        // Degradable 3-state system: full (2 units), degraded (1), down.
        let mut b = CtmcBuilder::new();
        let full = b.state("full");
        let deg = b.state("degraded");
        let down = b.state("down");
        b.transition(full, deg, 2.0).unwrap();
        b.transition(deg, down, 1.0).unwrap();
        b.transition(deg, full, 10.0).unwrap();
        b.transition(down, deg, 10.0).unwrap();
        let c = b.build().unwrap();
        let pi = c.steady_state().unwrap();
        let perf = c.expected_steady_state_reward(&[2.0, 1.0, 0.0]).unwrap();
        assert!((perf - (2.0 * pi[0] + pi[1])).abs() < 1e-14);
        assert!(perf > 0.0 && perf < 2.0);
    }

    #[test]
    fn interval_reward_approaches_steady_state() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 0.5).unwrap();
        b.transition(down, up, 4.5).unwrap();
        let c = b.build().unwrap();
        let p0 = c.point_mass(up);
        let r = [1.0, 0.0];
        let long = c.expected_interval_reward(&p0, &r, 10_000.0).unwrap();
        assert!((long - 0.9).abs() < 1e-3);
        // Short horizon from "up" is close to 1.
        let short = c.expected_interval_reward(&p0, &r, 0.01).unwrap();
        assert!(short > 0.995);
    }

    #[test]
    fn reward_validation() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.expected_steady_state_reward(&[1.0]).is_err());
        assert!(c.expected_steady_state_reward(&[1.0, f64::NAN]).is_err());
        let p0 = c.point_mass(up);
        assert!(c.expected_interval_reward(&p0, &[1.0, 0.0], 0.0).is_err());
    }

    #[test]
    fn accumulated_reward_at_time_zero_is_zero() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let c = b.build().unwrap();
        let p0 = c.point_mass(up);
        assert_eq!(
            c.expected_accumulated_reward(&p0, &[1.0, 0.0], 0.0)
                .unwrap(),
            0.0
        );
    }
}
