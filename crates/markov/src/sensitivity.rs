//! Parametric sensitivity of scalar measures.

use reliab_core::{Error, Result};

/// Result of a sensitivity computation for one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// The measure value at the nominal parameter.
    pub value: f64,
    /// Derivative of the measure with respect to the parameter.
    pub derivative: f64,
    /// Scaled (logarithmic) sensitivity `(x/f)·df/dx` — the elasticity,
    /// which practitioners use to rank parameters independent of units.
    pub elasticity: f64,
}

/// Estimates the derivative of `measure` with respect to its scalar
/// parameter at `x0` by central finite differences with relative step
/// `rel_step` (e.g. `1e-6`).
///
/// Analytic derivatives exist for special cases, but the tutorial's
/// workflow is "re-solve the model at perturbed inputs", which this
/// captures for *any* measure: steady-state availability, MTTF, a
/// transient probability, or a full hierarchical composition.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a non-positive `x0` or
/// `rel_step`, and propagates failures of `measure` itself.
///
/// ```
/// use reliab_markov::sensitivity;
/// # fn main() -> Result<(), reliab_core::Error> {
/// // d/dλ of availability μ/(λ+μ) at λ=1, μ=9 is -μ/(λ+μ)² = -0.09.
/// let s = sensitivity(|lambda| Ok(9.0 / (lambda + 9.0)), 1.0, 1e-6)?;
/// assert!((s.derivative + 0.09).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn sensitivity<F>(measure: F, x0: f64, rel_step: f64) -> Result<Sensitivity>
where
    F: Fn(f64) -> Result<f64>,
{
    if !(x0 > 0.0 && x0.is_finite()) {
        return Err(Error::invalid(format!(
            "sensitivity parameter must be positive and finite, got {x0}"
        )));
    }
    if !(rel_step > 0.0 && rel_step < 1.0) {
        return Err(Error::invalid(format!(
            "relative step must lie in (0,1), got {rel_step}"
        )));
    }
    let h = x0 * rel_step;
    let value = measure(x0)?;
    let hi = measure(x0 + h)?;
    let lo = measure(x0 - h)?;
    let derivative = (hi - lo) / (2.0 * h);
    let elasticity = if value != 0.0 {
        derivative * x0 / value
    } else {
        f64::NAN
    };
    Ok(Sensitivity {
        value,
        derivative,
        elasticity,
    })
}

impl crate::Ctmc {
    /// Analytic gradient of the stationary distribution with respect
    /// to the rate of the `from → to` transition.
    ///
    /// Differentiating `π Q = 0, Σ π = 1` in the rate `θ` gives the
    /// linear system `(∂π) Q = -π ∂Q/∂θ, Σ ∂π = 0`, which is solved
    /// directly (dense LU with the normalization row substituted).
    /// Exact up to round-off — the alternative to the finite-difference
    /// [`sensitivity`] helper when the measure *is* the stationary
    /// vector.
    ///
    /// # Errors
    ///
    /// * [`Error::Model`] — the chain has no `from → to` transition.
    /// * [`Error::Numerical`] — singular system (reducible chain).
    pub fn steady_state_rate_gradient(
        &self,
        from: crate::StateId,
        to: crate::StateId,
    ) -> Result<Vec<f64>> {
        let n = self.num_states();
        if from.index() >= n || to.index() >= n || from == to {
            return Err(Error::model("gradient requires two distinct valid states"));
        }
        if !self
            .transitions
            .iter()
            .any(|&(f, t, _)| f == from.index() && t == to.index())
        {
            return Err(Error::model(format!(
                "no transition '{}' -> '{}' to differentiate",
                self.state_name(from),
                self.state_name(to)
            )));
        }
        let pi = self.steady_state()?;
        // rhs_j = -(π ∂Q)_j: ∂Q has +1 at (from,to), -1 at (from,from).
        let mut rhs = vec![0.0f64; n];
        rhs[to.index()] = -pi[from.index()];
        rhs[from.index()] = pi[from.index()];
        // Solve x Q = rhs with Σ x = 0  ⇔  Q^T x^T = rhs^T, one row
        // of Q^T replaced by the all-ones normalization row.
        let q = self.generator_dense();
        let mut a = reliab_numeric::DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, q.get(j, i));
            }
        }
        for j in 0..n {
            a.set(n - 1, j, 1.0);
        }
        rhs[n - 1] = 0.0;
        a.lu_solve(&rhs).map_err(crate::num_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn derivative_of_known_function() {
        let s = sensitivity(|x| Ok(x * x), 3.0, 1e-7).unwrap();
        assert!((s.value - 9.0).abs() < 1e-12);
        assert!((s.derivative - 6.0).abs() < 1e-5);
        assert!((s.elasticity - 2.0).abs() < 1e-5);
    }

    #[test]
    fn availability_sensitivity_to_failure_rate() {
        let avail = |lambda: f64| {
            let mut b = CtmcBuilder::new();
            let up = b.state("up");
            let down = b.state("down");
            b.transition(up, down, lambda)?;
            b.transition(down, up, 2.0)?;
            let c = b.build()?;
            Ok(c.steady_state()?[0])
        };
        let s = sensitivity(avail, 0.5, 1e-6).unwrap();
        // A = mu/(l+mu); dA/dl = -mu/(l+mu)^2 = -2/6.25 = -0.32
        assert!((s.value - 0.8).abs() < 1e-12);
        assert!((s.derivative + 0.32).abs() < 1e-6);
        assert!(s.elasticity < 0.0);
    }

    #[test]
    fn validation() {
        assert!(sensitivity(Ok, 0.0, 1e-6).is_err());
        assert!(sensitivity(Ok, 1.0, 0.0).is_err());
        assert!(sensitivity(Ok, 1.0, 1.5).is_err());
        // Errors from the measure propagate.
        assert!(sensitivity(|_| Err(Error::model("boom")), 1.0, 1e-6).is_err());
    }

    #[test]
    fn zero_valued_measure_has_nan_elasticity() {
        let s = sensitivity(|x| Ok(x - 1.0), 1.0, 1e-6).unwrap();
        assert!(s.elasticity.is_nan());
    }

    #[test]
    fn analytic_gradient_matches_closed_form() {
        // Two-state chain: π_up = μ/(λ+μ). dπ_up/dλ = -μ/(λ+μ)².
        let (l, m) = (0.5f64, 2.0f64);
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, l).unwrap();
        b.transition(down, up, m).unwrap();
        let c = b.build().unwrap();
        let g = c.steady_state_rate_gradient(up, down).unwrap();
        let expected = -m / ((l + m) * (l + m));
        assert!((g[0] - expected).abs() < 1e-12, "{} vs {expected}", g[0]);
        // Components of the gradient sum to zero.
        assert!((g[0] + g[1]).abs() < 1e-12);
    }

    #[test]
    fn analytic_gradient_matches_finite_difference() {
        // Three-state chain with several arcs; check every entry of the
        // gradient of π w.r.t. one rate against central differences.
        let build = |theta: f64| {
            let mut b = CtmcBuilder::new();
            let a = b.state("a");
            let bb = b.state("b");
            let cc = b.state("c");
            b.transition(a, bb, theta).unwrap();
            b.transition(bb, cc, 0.7).unwrap();
            b.transition(cc, a, 1.3).unwrap();
            b.transition(bb, a, 0.4).unwrap();
            b.build().unwrap()
        };
        let theta = 0.9;
        let c = build(theta);
        let a = c.find_state("a").unwrap();
        let bb = c.find_state("b").unwrap();
        let grad = c.steady_state_rate_gradient(a, bb).unwrap();
        let h = 1e-6;
        let hi = build(theta + h).steady_state().unwrap();
        let lo = build(theta - h).steady_state().unwrap();
        for i in 0..3 {
            let fd = (hi[i] - lo[i]) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-6,
                "state {i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn gradient_validation() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.steady_state_rate_gradient(up, up).is_err());
        // Transition that does not exist:
        let mut b2 = CtmcBuilder::new();
        let x = b2.state("x");
        let y = b2.state("y");
        let z = b2.state("z");
        b2.transition(x, y, 1.0).unwrap();
        b2.transition(y, z, 1.0).unwrap();
        b2.transition(z, x, 1.0).unwrap();
        let c2 = b2.build().unwrap();
        assert!(c2.steady_state_rate_gradient(y, x).is_err());
    }
}
