//! # reliab-markov
//!
//! Continuous- and discrete-time Markov chain modeling and solution —
//! the state-space half of the tutorial's toolbox, used whenever
//! component behaviors are *dependent* (shared repair crews, imperfect
//! coverage, failure propagation) and non-state-space models no longer
//! apply.
//!
//! * [`CtmcBuilder`] / [`Ctmc`] — named-state chain construction with
//!   validation at the boundary.
//! * Steady-state: GTH elimination (dense, subtraction-free) or SOR on
//!   the sparse generator, selected automatically by size or explicitly
//!   via [`SteadyStateMethod`].
//! * Transient: uniformization with Poisson tail control and optional
//!   steady-state detection ([`TransientOptions`]).
//! * Absorbing analysis: MTTF, reliability as transient non-absorption
//!   probability.
//! * Markov reward models: steady-state, instantaneous and accumulated
//!   expected rewards.
//! * [`sensitivity`] — parametric derivatives of any scalar measure.
//!
//! ```
//! use reliab_markov::CtmcBuilder;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // Two-state repairable system, lambda = 0.001/h, mu = 0.1/h.
//! let mut b = CtmcBuilder::new();
//! let up = b.state("up");
//! let down = b.state("down");
//! b.transition(up, down, 0.001)?;
//! b.transition(down, up, 0.1)?;
//! let ctmc = b.build()?;
//! let pi = ctmc.steady_state()?;
//! let avail = pi[up.index()];
//! assert!((avail - 0.1 / 0.101).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod absorbing;
mod builder;
mod dtmc;
mod rewards;
mod sensitivity;
mod steady;
mod transient;

pub use builder::{Ctmc, CtmcBuilder, StateId};
pub use dtmc::Dtmc;
pub use reliab_numeric::{IterationStats, IterativeOptions};
pub use sensitivity::{sensitivity, Sensitivity};
pub use steady::{SteadyReport, SteadyStateMethod};
pub use transient::{TransientOptions, TransientReport};

use reliab_core::Error;

/// Converts numeric-layer failures into the workspace error type.
pub(crate) fn num_err(e: reliab_numeric::NumericError) -> Error {
    match e {
        reliab_numeric::NumericError::NoConvergence {
            what,
            iterations,
            residual,
        } => Error::Convergence {
            what,
            iterations,
            residual,
        },
        other => Error::numerical(other.to_string()),
    }
}
